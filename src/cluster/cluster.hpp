// HyperDriveCluster — the high-fidelity model of a live HyperDrive
// deployment (§4/§5), composed of the Resource Manager, Job Manager, Node
// Agents and AppStat database, driven by a discrete-event simulation.
//
// Fidelity knobs that distinguish it from the idealized trace-replay
// simulator (and hence produce the Fig. 12a validation gap):
//   * per-epoch duration jitter (live training is non-deterministic, §6.1),
//   * suspend latency + snapshot storage and resume transfer/restore costs
//     (§6.2.3 / §6.3.2), charged to machine occupancy,
//   * stat-report message latency between Node Agent and scheduler,
//   * optional decision latency at evaluation boundaries modelling the
//     learning-curve prediction cost; training continues while the decision
//     is pending (the §5.2 "overlap training and prediction" strategy), and
//     a suspend/terminate that lands mid-epoch discards the partial epoch.
//
// Fault tolerance: a ClusterOptions::fault_plan turns on the FaultInjector
// (node crashes with optional restart, message drop/duplication/delay,
// snapshot upload failure and corruption) and auto-enables the MessageBus
// reliability layer. The cluster survives the plan by:
//   * requeueing jobs that were running (or mid-suspend) on a crashed node,
//     rolled back to their last durable snapshot — epochs since then are
//     lost and re-trained (RecoveryStats::epochs_lost);
//   * shrinking/growing the Resource Manager membership so the policy's
//     slot math (S_deserved = S * p) tracks live capacity, with an
//     on_capacity_change upcall so policies can invalidate cached sets;
//   * falling back, when a snapshot fails to decode on resume, to the next
//     older snapshot and ultimately to a from-scratch restart with the curve
//     history replayed from AppStatDb records;
//   * deduplicating stat reports by (job, epoch) in the AppStatDb so
//     retransmissions, injected duplicates, and re-trained epochs never
//     double-count.
// Every fault decision is drawn from the plan's seeded RNG, so a run is a
// pure function of (trace, seed, plan) — the golden-trace determinism tests
// replay the optional event_log() byte-for-byte.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/app_stat_db.hpp"
#include "cluster/fault_injector.hpp"
#include "cluster/health_monitor.hpp"
#include "cluster/messaging.hpp"
#include "cluster/node_catalog.hpp"
#include "cluster/snapshot_codec.hpp"
#include "cluster/job_manager.hpp"
#include "cluster/node_agent.hpp"
#include "cluster/overhead_model.hpp"
#include "cluster/resource_manager.hpp"
#include "core/experiment_result.hpp"
#include "core/sap.hpp"
#include "obs/scope.hpp"
#include "sim/simulation.hpp"
#include "util/bytes.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::cluster {

struct ClusterOptions {
  std::size_t machines = 4;
  /// Typed fleet layout (DESIGN.md §15). Empty (default) means one implicit
  /// "standard" class of `machines` nodes at price 1.0 / speed 1.0 — the
  /// pre-elastic behavior, byte-identical. Non-empty overrides `machines`
  /// with the catalog's total node count.
  NodeCatalog catalog;
  util::SimTime max_experiment_time = util::SimTime::infinity();
  bool stop_on_target = true;
  std::uint64_t seed = 1;
  /// Lognormal sigma of per-epoch duration jitter around the trace average.
  double epoch_jitter_sigma = 0.04;
  OverheadModel overheads = cifar_overhead_model();
  /// Optional cost of computing a scheduling decision (e.g. MCMC curve
  /// prediction) at evaluation-boundary epochs.
  std::function<util::SimTime(core::JobId, std::size_t epoch, util::Rng&)> decision_latency;
  /// §5.2 "Overlap training and prediction": when true (default, the paper's
  /// optimization) training continues while the decision is pending and a
  /// late suspend/terminate discards the partial epoch. When false the naive
  /// implementation is modelled: the machine holds the job idle until the
  /// decision arrives.
  bool overlap_decisions = true;
  /// Model-owner-defined global termination criterion (§9); when set it
  /// replaces the perf >= target check (stop_on_target still gates it).
  core::GlobalStopCriterion stop_criterion;
  /// Faults to inject (default: none — a perfect cluster, byte-identical to
  /// the pre-fault-subsystem behavior).
  FaultPlan fault_plan;
  /// Ack/retransmit parameters for the RPC fabric. Auto-enabled whenever the
  /// fault plan injects anything; leave `enabled` false for the fault-free
  /// fire-and-forget fabric.
  ReliabilityOptions reliability;
  /// Gray-failure detection & mitigation (heartbeats, EWMA speed scores,
  /// quarantine/probation, straggler migration, speed-aware placement).
  /// Off by default: the cluster is then byte-identical to the health-less
  /// behavior (no heartbeat traffic, no extra events).
  HealthOptions health;
  /// Record a human-readable, fully deterministic event log (crashes,
  /// restarts, starts/resumes, decisions, recoveries) — the golden-trace
  /// determinism tests compare it byte-for-byte across runs.
  bool record_event_log = false;
  /// Instrumentation handle (DESIGN.md §10). A detached scope (the default)
  /// costs one null test per emit site; an attached sink observes every event
  /// the legacy log would record — as typed obs::TraceEvent records — without
  /// perturbing the simulation. An attached registry receives end-of-run
  /// counters in finalize_result().
  obs::Scope obs;
  /// Exploit/explore continuation hook (PBT; DESIGN.md §13). When set, the
  /// cluster supports SchedulerOps::clone_job: the target adopts the donor's
  /// stats prefix, receives a freshly minted snapshot at the donor's epoch,
  /// and the normal resume path restores it onto the continuation curve this
  /// hook returns. Unset = cloning unsupported (the default).
  workload::ExploreFn explore;
  // --- multi-study tenancy (DESIGN.md §9) ----------------------------------
  /// Per-class slots online at start when the cluster is a StudyManager
  /// tenant; the remaining machines start parked (leasable later). Empty =
  /// all online, the single-tenant behavior.
  CapacityView initial_lease;
  /// Study name prefixed into event-log lines ("study=<name>") so a merged
  /// multi-tenant log stays attributable. Empty (default) adds nothing —
  /// single-study logs stay byte-identical to the single-tenant path.
  std::string study_label;
};

class HyperDriveCluster final : public core::SchedulerOps {
 public:
  HyperDriveCluster(const workload::Trace& trace, ClusterOptions options);
  /// Tenant mode: run against an externally owned simulation shared with
  /// other tenant clusters under a core::StudyManager. The caller drives the
  /// clock; this cluster never stops it.
  HyperDriveCluster(const workload::Trace& trace, ClusterOptions options,
                    sim::Simulation& simulation);

  /// Run the experiment under `policy`. Single-use. Owned-simulation mode
  /// only (tenants are started with start() and harvested with collect()).
  [[nodiscard]] core::ExperimentResult run(core::SchedulingPolicy& policy);

  // --- tenant protocol (multi-study scheduling, DESIGN.md §9) --------------
  /// Begin the experiment without running the clock: fire the policy's
  /// start/allocate upcalls and schedule fault, health and study-timeout
  /// events. The shared simulation (run by the StudyManager) does the rest.
  void start(core::SchedulingPolicy& policy);
  /// Set the arbiter-assigned per-class capacity. Shrinking a class reclaims
  /// immediately: idle slots park at once, crashed/quarantined slots are
  /// absorbed, and busy slots are cleanly snapshot-migrated (never killed)
  /// and park when released — on_slot_released fires for every slot handed
  /// back. Growing only raises the target; the arbiter grants actual slots
  /// via grant_one.
  void set_lease_target(const CapacityView& capacity);
  /// Grant one parked healthy slot of `node_class` (lowest id first).
  /// Returns false when that class's lease target is met, the study is
  /// finished, or no grantable slot remains in the class block.
  bool grant_one(NodeClassId node_class);
  /// Cancel the study: drain leased slots (held jobs keep their accrued
  /// accounting, in-flight epochs are abandoned) and finish immediately.
  void cancel();
  /// Harvest the result after the shared simulation has run. Tenant
  /// equivalent of run()'s result-assembly epilogue.
  [[nodiscard]] core::ExperimentResult collect();
  /// Slots currently charged to this tenant (online or offline-unparked).
  [[nodiscard]] std::size_t held_slots() const noexcept {
    return rm_.configured() - rm_.parked();
  }
  /// held_slots() broken down by catalog class (full catalog width).
  [[nodiscard]] CapacityView held_capacity() const;
  [[nodiscard]] const CapacityView& lease_target() const noexcept {
    return lease_target_;
  }
  /// The fleet layout this cluster runs on (the implicit single "standard"
  /// class when ClusterOptions::catalog was empty).
  [[nodiscard]] const NodeCatalog& catalog() const noexcept { return catalog_; }
  /// Dollars charged to this tenant so far: the integral of held slots ×
  /// their class prices over held time (accrued alongside slot-seconds).
  [[nodiscard]] double spend_usd() const noexcept { return spend_usd_; }
  /// spend_usd() brought current to the sim clock. The lazy integral only
  /// advances at lease events, so mid-run readers (cost arbitration's budget
  /// clamp) must use this; accrual is a pure function of sim time, so
  /// advancing it early never changes the final bill.
  [[nodiscard]] double current_spend_usd() {
    if (!done_) accrue_slot_time();
    return spend_usd_;
  }
  [[nodiscard]] bool finished() const noexcept { return done_; }
  /// Fires whenever a reclaimed or drained slot parks (capacity returned to
  /// the arbiter's free pool).
  std::function<void()> on_slot_released;
  /// Fires once when the study finishes (target, quiescence, timeout,
  /// cancel).
  std::function<void()> on_finished;
  /// When set, event-log lines go to this sink (the StudyManager's merged
  /// log) instead of the local event_log().
  std::function<void(std::string)> log_sink;

  /// Post-run access to the framework components (overhead studies, tests).
  [[nodiscard]] const AppStatDb& app_stat_db() const noexcept { return db_; }
  [[nodiscard]] const std::vector<NodeAgent>& node_agents() const noexcept {
    return agents_;
  }
  /// RPC traffic accounting (§5: scheduler <-> node-agent communication).
  [[nodiscard]] const MessageBusStats& message_stats() const noexcept {
    return bus_.stats();
  }
  /// Injected-fault accounting (what went wrong; RecoveryStats in the result
  /// says what the system did about it).
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return injector_.stats();
  }
  /// Node-health verdicts and detection counters (gray-failure layer).
  [[nodiscard]] const HealthMonitor& health_monitor() const noexcept { return health_; }
  /// Deterministic event log (empty unless ClusterOptions::record_event_log).
  [[nodiscard]] const std::vector<std::string>& event_log() const noexcept {
    return event_log_;
  }

  /// Serialize everything that determines the remainder of this cluster's
  /// run — job/machine/lease state, RNG streams, AppStatDb fingerprints, bus
  /// and fault accounting — into `w`. Coordinator checkpoints (DESIGN.md §12)
  /// store these bytes as an opaque, replay-verified state fingerprint; they
  /// are compared, never decoded, so the layout can evolve freely as long as
  /// equal states produce equal bytes and diverged states almost surely do
  /// not.
  void encode_state(util::ByteWriter& w) const;

  // --- SchedulerOps -------------------------------------------------------
  [[nodiscard]] std::optional<core::JobId> get_idle_job() override;
  bool start_job(core::JobId job) override;
  void label_job(core::JobId job, double priority) override;
  [[nodiscard]] std::size_t total_machines() const override { return rm_.total(); }
  [[nodiscard]] std::size_t idle_machines() const override { return rm_.idle(); }
  [[nodiscard]] util::SimTime now() const override { return simulation_.now(); }
  [[nodiscard]] core::JobStatus job_status(core::JobId job) const override;
  [[nodiscard]] std::vector<core::JobId> active_jobs() const override;
  [[nodiscard]] const std::vector<double>& perf_history(core::JobId job) const override;
  [[nodiscard]] util::SimTime avg_epoch_duration(core::JobId job) const override;
  [[nodiscard]] std::size_t epochs_done(core::JobId job) const override;
  [[nodiscard]] double host_speed(core::JobId job) const override;
  [[nodiscard]] util::SimTime normalized_epoch_duration(core::JobId job) const override;
  // Weight migration (PBT; DESIGN.md §13): available iff an explore hook is
  // configured. The clone itself is a storage-side bookkeeping operation
  // (history adoption + snapshot mint); the transfer cost is charged when the
  // cloned job is next scheduled, through the ordinary resume-overhead path.
  [[nodiscard]] bool supports_clone() const override;
  bool clone_job(core::JobId job, core::JobId donor, std::uint64_t stream) override;
  [[nodiscard]] std::size_t max_epochs() const override { return trace_.max_epochs; }
  [[nodiscard]] double target_performance() const override {
    return trace_.target_performance;
  }
  [[nodiscard]] double kill_threshold() const override { return trace_.kill_threshold; }
  /// Best performance reported by any job so far (0 until the first stat
  /// lands). Tenant arbitration reads this as the study's progress signal.
  [[nodiscard]] double best_performance() const noexcept { return result_.best_perf; }
  [[nodiscard]] std::size_t evaluation_boundary() const override {
    return trace_.evaluation_boundary;
  }

 private:
  HyperDriveCluster(const workload::Trace& trace, ClusterOptions options,
                    std::unique_ptr<sim::Simulation> owned, sim::Simulation* external);

  /// A non-empty catalog is authoritative for the machine count; applied in
  /// the options_ member initializer so rm_/health_/agents_ (which size off
  /// options_.machines in the init list) see the corrected value.
  static ClusterOptions normalize(ClusterOptions options);

  void begin_epoch(core::JobId job);
  void complete_epoch(core::JobId job);
  void deliver_stat(const AppStat& stat);
  void decide(core::JobId job, core::JobEvent event, std::uint64_t incarnation);
  void interrupt_training(ManagedJob& job);
  void do_suspend(core::JobId job);
  void do_terminate(core::JobId job);
  void finish_suspend(core::JobId job, SuspendOverheadSample overhead);
  void release_and_allocate(core::JobId job);
  void maybe_finish();
  void finish();
  /// Result-assembly epilogue shared by run() and collect().
  void finalize_result();
  /// Publish the run's counters and the suspend-latency histogram into the
  /// attached registry (finalize_result() tail, obs.metrics != nullptr only).
  void publish_metrics();

  // --- lease protocol internals (tenant mode) ------------------------------
  /// Reclaim slots until held - pending reclaims <= lease_target_.
  void apply_lease();
  /// Park `machine` and hand it back to the arbiter (capacity upcalls +
  /// on_slot_released).
  void surrender_slot(MachineId machine, const char* reason);
  /// Account held-slot time up to now (slot-seconds + spend integrals).
  void accrue_slot_time();
  /// Sum of class prices over currently held slots ($/hour).
  [[nodiscard]] double held_price_rate() const;
  /// Tenant-mode quiescence/give-up check (the owned-mode maybe_finish reads
  /// the global event queue, which a shared simulation forbids).
  void tenant_maybe_finish();

  // --- fault handling & recovery -----------------------------------------
  void schedule_crashes();
  void crash_node(const NodeCrashEvent& crash);
  void restart_node(MachineId machine);
  /// Spot reclaim warning (DESIGN.md §15): start draining the machine —
  /// migrate its job via clean suspend, park it when released. An idle
  /// machine goes offline immediately.
  void spot_warning(const SpotPreemptionEvent& preemption);
  /// Warning deadline hit: if the machine is still busy the provider yanks
  /// it — crash-style job failure; a machine parked mid-window stays sick.
  void spot_preempt(const SpotPreemptionEvent& preemption);
  /// Take a drained (idle or parked) spot machine out of the membership for
  /// good: offline + excluded + parked-sick, with the capacity upcalls.
  void spot_offline(MachineId machine);
  /// Pull a job off its (crashed) machine: abandon in-flight work, roll back
  /// to the last durable snapshot, requeue, release the machine.
  void fail_job_on_crash(ManagedJob& job);
  /// Roll a job's progress back to its newest durable snapshot (or scratch)
  /// and requeue it; epochs since then count as lost and are re-trained.
  void rollback_to_durable(ManagedJob& job);
  /// The single instrumentation funnel: stamp the simulation time, hand the
  /// event to the attached obs sink (if any), then render the legacy
  /// event-log line when record_event_log/log_sink ask for it. Sites pass a
  /// POD TraceEvent, so a run with neither sink nor log builds no strings.
  void record(obs::TraceEvent event);

  // --- gray-failure detection & mitigation (DESIGN.md §7) ------------------
  void schedule_health();
  void heartbeat_tick(MachineId machine, sim::EventHandle self);
  void watchdog_tick(sim::EventHandle self);
  void handle_heartbeat(const Heartbeat& beat);
  /// Arm/cancel the per-epoch progress deadline (hung-epoch watchdog).
  void arm_progress_deadline(ManagedJob& job);
  void disarm_progress_deadline(ManagedJob& job);
  void on_progress_deadline(core::JobId job, std::uint64_t incarnation);
  /// Take a (now idle) machine out of the membership and start its probation
  /// clock. The HealthMonitor must already hold it Quarantined.
  void finalize_quarantine(MachineId machine);
  void begin_probation_for(MachineId machine);

  const workload::Trace& trace_;
  ClusterOptions options_;
  /// The effective fleet layout: options_.catalog, or the implicit uniform
  /// single-class catalog when that was empty. Never empty.
  NodeCatalog catalog_;
  /// Owned in single-tenant mode; null when running against a shared
  /// simulation (declared before simulation_ so the reference can bind).
  std::unique_ptr<sim::Simulation> owned_sim_;
  sim::Simulation& simulation_;
  ResourceManager rm_;
  JobManager jm_;
  AppStatDb db_;
  std::vector<NodeAgent> agents_;
  util::Rng rng_;
  FaultInjector injector_;
  HealthMonitor health_;
  MessageBus bus_;
  EndpointId scheduler_endpoint_ = 0;
  EndpointId storage_endpoint_ = 0;
  core::SchedulingPolicy* policy_ = nullptr;
  core::ExperimentResult result_;
  /// Pending injected fault events (crash / restart), handle -> is_restart.
  /// When these are the only events left and nothing can make progress they
  /// are cancelled so a scheduled far-future crash never extends a finished
  /// experiment.
  std::map<sim::EventHandle, bool> fault_events_;
  /// Pending health-infrastructure ticks (per-machine heartbeats, the
  /// watchdog sweep). Like fault_events_ they must never keep a finished
  /// experiment's clock alive, so maybe_finish treats them as cancellable.
  std::map<sim::EventHandle, bool> infra_events_;
  /// Machines whose slow-quarantine is decided but whose job is still being
  /// cleanly suspended off them; finalized when the machine is released.
  std::set<MachineId> pending_quarantine_;
  /// Continuation ground truth minted by clone_job (PBT exploit, DESIGN.md
  /// §13); owned here because the input trace is frozen and shared.
  std::vector<std::unique_ptr<workload::TraceJob>> cloned_jobs_;
  std::vector<std::string> event_log_;
  bool done_ = false;
  // --- tenant mode state (DESIGN.md §9) ------------------------------------
  /// True when constructed against an external (StudyManager-owned)
  /// simulation: finishing must not stop the shared clock, and quiescence is
  /// judged from this tenant's own state instead of the global event queue.
  bool tenant_ = false;
  CapacityView lease_target_;
  /// Busy machines picked for lease reclaim, parked once their job's clean
  /// suspend releases them.
  std::set<MachineId> pending_reclaim_;
  /// Spot machines inside their preemption-warning window: job migrating
  /// off, machine reclaimed (spot_offline) the moment it is released.
  std::set<MachineId> draining_;
  /// Parked machines absorbed while crashed/quarantined: not grantable until
  /// their restart/probation event clears them.
  std::set<MachineId> parked_sick_;
  /// Per-study Tmax (owned mode truncates via run_until; a tenant cannot).
  sim::EventHandle timeout_event_ = 0;
  bool timeout_armed_ = false;
  util::SimTime finished_at_ = util::SimTime::zero();
  /// Slot-seconds integral: held_slots() accrued over time. spend_usd_ is
  /// the companion dollar integral (held slots × class price/hour).
  util::SimTime slot_seconds_ = util::SimTime::zero();
  util::SimTime slots_accrued_until_ = util::SimTime::zero();
  double spend_usd_ = 0.0;
  std::size_t lease_grants_ = 0;
  std::size_t lease_reclaims_ = 0;
};

/// Convenience wrapper mirroring sim::replay_experiment.
[[nodiscard]] core::ExperimentResult run_cluster_experiment(const workload::Trace& trace,
                                                            core::SchedulingPolicy& policy,
                                                            const ClusterOptions& options);

/// Register, in a fixed order, every metric a cluster run publishes in its
/// finalize_result() epilogue. Call once before sharing one registry across
/// parallel sweep cells: counters commute, so with the registration order
/// pinned the exported snapshot is byte-deterministic regardless of cell
/// completion order.
void preregister_cluster_metrics(obs::MetricsRegistry& registry);

}  // namespace hyperdrive::cluster
