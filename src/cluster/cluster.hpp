// HyperDriveCluster — the high-fidelity model of a live HyperDrive
// deployment (§4/§5), composed of the Resource Manager, Job Manager, Node
// Agents and AppStat database, driven by a discrete-event simulation.
//
// Fidelity knobs that distinguish it from the idealized trace-replay
// simulator (and hence produce the Fig. 12a validation gap):
//   * per-epoch duration jitter (live training is non-deterministic, §6.1),
//   * suspend latency + snapshot storage and resume transfer/restore costs
//     (§6.2.3 / §6.3.2), charged to machine occupancy,
//   * stat-report message latency between Node Agent and scheduler,
//   * optional decision latency at evaluation boundaries modelling the
//     learning-curve prediction cost; training continues while the decision
//     is pending (the §5.2 "overlap training and prediction" strategy), and
//     a suspend/terminate that lands mid-epoch discards the partial epoch.
#pragma once

#include <functional>
#include <memory>

#include "cluster/app_stat_db.hpp"
#include "cluster/messaging.hpp"
#include "cluster/snapshot_codec.hpp"
#include "cluster/job_manager.hpp"
#include "cluster/node_agent.hpp"
#include "cluster/overhead_model.hpp"
#include "cluster/resource_manager.hpp"
#include "core/experiment_result.hpp"
#include "core/sap.hpp"
#include "sim/simulation.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::cluster {

struct ClusterOptions {
  std::size_t machines = 4;
  util::SimTime max_experiment_time = util::SimTime::infinity();
  bool stop_on_target = true;
  std::uint64_t seed = 1;
  /// Lognormal sigma of per-epoch duration jitter around the trace average.
  double epoch_jitter_sigma = 0.04;
  OverheadModel overheads = cifar_overhead_model();
  /// Optional cost of computing a scheduling decision (e.g. MCMC curve
  /// prediction) at evaluation-boundary epochs.
  std::function<util::SimTime(core::JobId, std::size_t epoch, util::Rng&)> decision_latency;
  /// §5.2 "Overlap training and prediction": when true (default, the paper's
  /// optimization) training continues while the decision is pending and a
  /// late suspend/terminate discards the partial epoch. When false the naive
  /// implementation is modelled: the machine holds the job idle until the
  /// decision arrives.
  bool overlap_decisions = true;
  /// Model-owner-defined global termination criterion (§9); when set it
  /// replaces the perf >= target check (stop_on_target still gates it).
  core::GlobalStopCriterion stop_criterion;
};

class HyperDriveCluster final : public core::SchedulerOps {
 public:
  HyperDriveCluster(const workload::Trace& trace, ClusterOptions options);

  /// Run the experiment under `policy`. Single-use.
  [[nodiscard]] core::ExperimentResult run(core::SchedulingPolicy& policy);

  /// Post-run access to the framework components (overhead studies, tests).
  [[nodiscard]] const AppStatDb& app_stat_db() const noexcept { return db_; }
  [[nodiscard]] const std::vector<NodeAgent>& node_agents() const noexcept {
    return agents_;
  }
  /// RPC traffic accounting (§5: scheduler <-> node-agent communication).
  [[nodiscard]] const MessageBusStats& message_stats() const noexcept {
    return bus_.stats();
  }

  // --- SchedulerOps -------------------------------------------------------
  [[nodiscard]] std::optional<core::JobId> get_idle_job() override;
  bool start_job(core::JobId job) override;
  void label_job(core::JobId job, double priority) override;
  [[nodiscard]] std::size_t total_machines() const override { return rm_.total(); }
  [[nodiscard]] std::size_t idle_machines() const override { return rm_.idle(); }
  [[nodiscard]] util::SimTime now() const override { return simulation_.now(); }
  [[nodiscard]] core::JobStatus job_status(core::JobId job) const override;
  [[nodiscard]] std::vector<core::JobId> active_jobs() const override;
  [[nodiscard]] const std::vector<double>& perf_history(core::JobId job) const override;
  [[nodiscard]] util::SimTime avg_epoch_duration(core::JobId job) const override;
  [[nodiscard]] std::size_t epochs_done(core::JobId job) const override;
  [[nodiscard]] std::size_t max_epochs() const override { return trace_.max_epochs; }
  [[nodiscard]] double target_performance() const override {
    return trace_.target_performance;
  }
  [[nodiscard]] double kill_threshold() const override { return trace_.kill_threshold; }
  [[nodiscard]] std::size_t evaluation_boundary() const override {
    return trace_.evaluation_boundary;
  }

 private:
  void begin_epoch(core::JobId job);
  void complete_epoch(core::JobId job);
  void deliver_stat(const AppStat& stat);
  void decide(core::JobId job, core::JobEvent event);
  void interrupt_training(ManagedJob& job);
  void do_suspend(core::JobId job);
  void do_terminate(core::JobId job);
  void release_and_allocate(core::JobId job);
  void maybe_finish();
  void finish();

  const workload::Trace& trace_;
  ClusterOptions options_;
  sim::Simulation simulation_;
  ResourceManager rm_;
  JobManager jm_;
  AppStatDb db_;
  std::vector<NodeAgent> agents_;
  util::Rng rng_;
  MessageBus bus_;
  EndpointId scheduler_endpoint_ = 0;
  EndpointId storage_endpoint_ = 0;
  core::SchedulingPolicy* policy_ = nullptr;
  core::ExperimentResult result_;
  bool done_ = false;
};

/// Convenience wrapper mirroring sim::replay_experiment.
[[nodiscard]] core::ExperimentResult run_cluster_experiment(const workload::Trace& trace,
                                                            core::SchedulingPolicy& policy,
                                                            const ClusterOptions& options);

}  // namespace hyperdrive::cluster
