// NodeCatalog — typed node classes for elastic, cost-aware capacity.
//
// A catalog partitions the machine-id space into contiguous blocks, one per
// node class. Class c owns ids [block_begin(c), block_end(c)); machine ids
// stay dense so every existing per-machine structure (ResourceManager,
// HealthMonitor, NodeAgent vectors) works unchanged. A CapacityView is the
// typed replacement for the raw slot-count capacity API: a per-class slot
// vector that collapses to a single integer for the homogeneous catalogs
// every pre-elastic caller uses (golden-trace gated — see DESIGN.md §15).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace hyperdrive::cluster {

using NodeClassId = std::uint32_t;

/// One priced node type: `count` machines billed at `price_per_hour`, each
/// running workloads `speed_factor`× real-time (2.0 = twice as fast). Spot
/// classes are reclaimable via SpotPreemptionEvent.
struct NodeClass {
  std::string name;
  std::size_t count = 0;
  double price_per_hour = 1.0;
  double speed_factor = 1.0;
  bool spot = false;

  [[nodiscard]] bool operator==(const NodeClass&) const = default;
};

/// Per-class slot counts — the typed capacity currency of the lease
/// protocol. Out-of-range classes read as 0, so views built against
/// different catalog widths still compare meaningfully only when both
/// sides are full-width (StudyManager always builds full-width views).
class CapacityView {
 public:
  CapacityView() = default;
  explicit CapacityView(std::vector<std::size_t> slots) : slots_(std::move(slots)) {}

  /// The single-class view `{n}` — what every homogeneous caller means.
  [[nodiscard]] static CapacityView single(std::size_t n) { return CapacityView({n}); }

  [[nodiscard]] std::size_t of(NodeClassId c) const noexcept {
    return c < slots_.size() ? slots_[c] : 0;
  }
  void set(NodeClassId c, std::size_t n) {
    if (c >= slots_.size()) slots_.resize(c + 1, 0);
    slots_[c] = n;
  }
  [[nodiscard]] std::size_t total() const noexcept {
    std::size_t sum = 0;
    for (const std::size_t s : slots_) sum += s;
    return sum;
  }
  [[nodiscard]] std::size_t classes() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  [[nodiscard]] bool operator==(const CapacityView&) const = default;

 private:
  std::vector<std::size_t> slots_;
};

/// The fleet's class layout. Immutable once built; machine ids are assigned
/// to classes in declaration order as contiguous blocks.
class NodeCatalog {
 public:
  NodeCatalog() = default;

  /// The implicit catalog of every pre-elastic run: one "standard" class of
  /// `n` on-demand nodes at $1/hr and speed 1.0 (both exact no-ops in the
  /// arithmetic, keeping homogeneous traces byte-identical).
  [[nodiscard]] static NodeCatalog uniform(std::size_t n);

  void add(NodeClass node_class);

  [[nodiscard]] bool empty() const noexcept { return classes_.empty(); }
  [[nodiscard]] std::size_t classes() const noexcept { return classes_.size(); }
  [[nodiscard]] const NodeClass& at(NodeClassId c) const { return classes_.at(c); }
  [[nodiscard]] std::size_t total_nodes() const noexcept {
    return block_begin_.empty() ? 0 : block_begin_.back();
  }

  /// Class owning machine id `m` (m must be < total_nodes()).
  [[nodiscard]] NodeClassId class_of(std::size_t m) const;
  [[nodiscard]] std::size_t block_begin(NodeClassId c) const {
    return c == 0 ? 0 : block_begin_.at(c - 1);
  }
  [[nodiscard]] std::size_t block_end(NodeClassId c) const { return block_begin_.at(c); }

  /// Speed factor of machine `m`; 1.0 on an empty catalog so call sites need
  /// no emptiness guard.
  [[nodiscard]] double speed(std::size_t m) const noexcept;
  /// True when any class runs at speed != 1.0 — gates the normalization
  /// paths that must stay byte-identical for homogeneous fleets.
  [[nodiscard]] bool heterogeneous() const noexcept;

  /// Full-width view with every class at its configured count.
  [[nodiscard]] CapacityView full() const;

  [[nodiscard]] std::optional<NodeClassId> find(const std::string& name) const noexcept;

  [[nodiscard]] bool operator==(const NodeCatalog&) const = default;

 private:
  std::vector<NodeClass> classes_;
  std::vector<std::size_t> block_begin_;  // cumulative counts; back() == total
};

/// Text format, one `node-class <name> <count> <price/hr> <speed> [spot]`
/// directive per line ('#' comments, shared util::SpecParser error style).
/// Throws std::invalid_argument with "node catalog line N: ..." on bad input.
NodeCatalog load_node_catalog(std::istream& in);
void save_node_catalog(const NodeCatalog& catalog, std::ostream& out);

}  // namespace hyperdrive::cluster
