#include "cluster/snapshot_codec.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace hyperdrive::cluster {

namespace {

constexpr std::uint32_t kMagic = 0x48445353;  // 'HDSS'
constexpr std::uint32_t kVersion = 1;

// Tags for the ParamValue variant.
constexpr std::uint8_t kTagDouble = 0;
constexpr std::uint8_t kTagInt = 1;
constexpr std::uint8_t kTagString = 2;

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* to_string(SnapshotDecodeError error) noexcept {
  switch (error) {
    case SnapshotDecodeError::Truncated: return "truncated";
    case SnapshotDecodeError::BadMagic: return "bad-magic";
    case SnapshotDecodeError::UnknownVersion: return "unknown-version";
    case SnapshotDecodeError::Malformed: return "malformed";
    case SnapshotDecodeError::TrailingGarbage: return "trailing-garbage";
    case SnapshotDecodeError::BadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::vector<std::uint8_t> SnapshotCodec::encode(const JobSnapshotState& state,
                                                std::size_t min_bytes) {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(state.job_id);
  w.u64(state.epoch);

  w.u32(static_cast<std::uint32_t>(state.config.values().size()));
  for (const auto& [name, value] : state.config.values()) {
    w.str(name);
    if (const auto* d = std::get_if<double>(&value)) {
      w.u8(kTagDouble);
      w.f64(*d);
    } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
      w.u8(kTagInt);
      w.u64(static_cast<std::uint64_t>(*i));
    } else {
      w.u8(kTagString);
      w.str(std::get<std::string>(value));
    }
  }

  w.u32(static_cast<std::uint32_t>(state.history.size()));
  for (const double y : state.history) w.f64(y);
  w.u32(static_cast<std::uint32_t>(state.secondary.size()));
  for (const double s : state.secondary) w.f64(s);

  // Padding to the requested image size (framework / process state).
  const std::size_t body = w.size() + 4 /*pad len*/ + 4 /*crc*/;
  const std::size_t padding = min_bytes > body ? min_bytes - body : 0;
  w.u32(static_cast<std::uint32_t>(padding));
  w.bytes().insert(w.bytes().end(), padding, 0);

  w.u32(crc32(w.bytes().data(), w.size()));
  return std::move(w.bytes());
}

SnapshotDecodeResult SnapshotCodec::decode_ex(const std::vector<std::uint8_t>& image) {
  const auto fail = [](SnapshotDecodeError e) { return SnapshotDecodeResult{std::nullopt, e}; };
  if (image.size() < 4) return fail(SnapshotDecodeError::Truncated);
  const std::size_t body = image.size() - 4;

  // Parse the structure first (bounded to the body), so truncation and
  // unknown versions get their own verdicts instead of drowning in the CRC.
  util::ByteReader r(image.data(), body);
  std::uint32_t magic, version;
  if (!r.u32(magic)) return fail(SnapshotDecodeError::Truncated);
  if (magic != kMagic) return fail(SnapshotDecodeError::BadMagic);
  if (!r.u32(version)) return fail(SnapshotDecodeError::Truncated);
  if (version != kVersion) return fail(SnapshotDecodeError::UnknownVersion);

  JobSnapshotState state;
  std::uint64_t job_id, epoch;
  if (!r.u64(job_id) || !r.u64(epoch)) return fail(SnapshotDecodeError::Truncated);
  state.job_id = job_id;
  state.epoch = epoch;

  std::uint32_t n_params;
  if (!r.u32(n_params)) return fail(SnapshotDecodeError::Truncated);
  for (std::uint32_t i = 0; i < n_params; ++i) {
    std::string name;
    std::uint8_t tag;
    if (!r.str(name) || !r.u8(tag)) return fail(SnapshotDecodeError::Truncated);
    switch (tag) {
      case kTagDouble: {
        double v;
        if (!r.f64(v)) return fail(SnapshotDecodeError::Truncated);
        state.config.set(name, v);
        break;
      }
      case kTagInt: {
        std::uint64_t v;
        if (!r.u64(v)) return fail(SnapshotDecodeError::Truncated);
        state.config.set(name, static_cast<std::int64_t>(v));
        break;
      }
      case kTagString: {
        std::string v;
        if (!r.str(v)) return fail(SnapshotDecodeError::Truncated);
        state.config.set(name, v);
        break;
      }
      default:
        return fail(SnapshotDecodeError::Malformed);
    }
  }

  // A count claiming more 8-byte elements than the reader holds is provably
  // truncated; reject it before resize() hands a hostile image gigabytes.
  std::uint32_t n_history;
  if (!r.u32(n_history)) return fail(SnapshotDecodeError::Truncated);
  if (n_history > r.remaining() / 8) return fail(SnapshotDecodeError::Truncated);
  state.history.resize(n_history);
  for (auto& y : state.history) {
    if (!r.f64(y)) return fail(SnapshotDecodeError::Truncated);
  }
  std::uint32_t n_secondary;
  if (!r.u32(n_secondary)) return fail(SnapshotDecodeError::Truncated);
  if (n_secondary > r.remaining() / 8) return fail(SnapshotDecodeError::Truncated);
  state.secondary.resize(n_secondary);
  for (auto& s : state.secondary) {
    if (!r.f64(s)) return fail(SnapshotDecodeError::Truncated);
  }

  std::uint32_t padding;
  if (!r.u32(padding)) return fail(SnapshotDecodeError::Truncated);
  if (!r.skip(padding)) return fail(SnapshotDecodeError::Truncated);
  if (r.pos() != body) return fail(SnapshotDecodeError::TrailingGarbage);

  // Structure is sound; the trailing checksum has the last word.
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) stored |= static_cast<std::uint32_t>(image[body + i]) << (8 * i);
  if (crc32(image.data(), body) != stored) return fail(SnapshotDecodeError::BadChecksum);
  return SnapshotDecodeResult{std::move(state), std::nullopt};
}

std::optional<JobSnapshotState> SnapshotCodec::decode(
    const std::vector<std::uint8_t>& image) {
  return decode_ex(image).state;
}

}  // namespace hyperdrive::cluster
