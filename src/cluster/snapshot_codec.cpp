#include "cluster/snapshot_codec.hpp"

#include <cstring>

namespace hyperdrive::cluster {

namespace {

constexpr std::uint32_t kMagic = 0x48445353;  // 'HDSS'
constexpr std::uint32_t kVersion = 1;

// Tags for the ParamValue variant.
constexpr std::uint8_t kTagDouble = 0;
constexpr std::uint8_t kTagInt = 1;
constexpr std::uint8_t kTagString = 2;

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t>& bytes() { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = bytes_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len;
    if (!u32(len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
             bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }
  bool skip(std::size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> SnapshotCodec::encode(const JobSnapshotState& state,
                                                std::size_t min_bytes) {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(state.job_id);
  w.u64(state.epoch);

  w.u32(static_cast<std::uint32_t>(state.config.values().size()));
  for (const auto& [name, value] : state.config.values()) {
    w.str(name);
    if (const auto* d = std::get_if<double>(&value)) {
      w.u8(kTagDouble);
      w.f64(*d);
    } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
      w.u8(kTagInt);
      w.u64(static_cast<std::uint64_t>(*i));
    } else {
      w.u8(kTagString);
      w.str(std::get<std::string>(value));
    }
  }

  w.u32(static_cast<std::uint32_t>(state.history.size()));
  for (const double y : state.history) w.f64(y);
  w.u32(static_cast<std::uint32_t>(state.secondary.size()));
  for (const double s : state.secondary) w.f64(s);

  // Padding to the requested image size (framework / process state).
  const std::size_t body = w.bytes().size() + 4 /*pad len*/ + 4 /*crc*/;
  const std::size_t padding = min_bytes > body ? min_bytes - body : 0;
  w.u32(static_cast<std::uint32_t>(padding));
  w.bytes().insert(w.bytes().end(), padding, 0);

  w.u32(crc32(w.bytes().data(), w.bytes().size()));
  return std::move(w.bytes());
}

std::optional<JobSnapshotState> SnapshotCodec::decode(
    const std::vector<std::uint8_t>& image) {
  if (image.size() < 4) return std::nullopt;
  // Verify the trailing checksum first.
  const std::size_t body = image.size() - 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) stored |= static_cast<std::uint32_t>(image[body + i]) << (8 * i);
  if (crc32(image.data(), body) != stored) return std::nullopt;

  Reader r(image);
  std::uint32_t magic, version;
  if (!r.u32(magic) || magic != kMagic) return std::nullopt;
  if (!r.u32(version) || version != kVersion) return std::nullopt;

  JobSnapshotState state;
  std::uint64_t job_id, epoch;
  if (!r.u64(job_id) || !r.u64(epoch)) return std::nullopt;
  state.job_id = job_id;
  state.epoch = epoch;

  std::uint32_t n_params;
  if (!r.u32(n_params)) return std::nullopt;
  for (std::uint32_t i = 0; i < n_params; ++i) {
    std::string name;
    std::uint8_t tag;
    if (!r.str(name) || !r.u8(tag)) return std::nullopt;
    switch (tag) {
      case kTagDouble: {
        double v;
        if (!r.f64(v)) return std::nullopt;
        state.config.set(name, v);
        break;
      }
      case kTagInt: {
        std::uint64_t v;
        if (!r.u64(v)) return std::nullopt;
        state.config.set(name, static_cast<std::int64_t>(v));
        break;
      }
      case kTagString: {
        std::string v;
        if (!r.str(v)) return std::nullopt;
        state.config.set(name, v);
        break;
      }
      default:
        return std::nullopt;
    }
  }

  std::uint32_t n_history;
  if (!r.u32(n_history)) return std::nullopt;
  state.history.resize(n_history);
  for (auto& y : state.history) {
    if (!r.f64(y)) return std::nullopt;
  }
  std::uint32_t n_secondary;
  if (!r.u32(n_secondary)) return std::nullopt;
  state.secondary.resize(n_secondary);
  for (auto& s : state.secondary) {
    if (!r.f64(s)) return std::nullopt;
  }

  std::uint32_t padding;
  if (!r.u32(padding)) return std::nullopt;
  if (!r.skip(padding)) return std::nullopt;
  if (r.pos() != body) return std::nullopt;  // trailing garbage
  return state;
}

}  // namespace hyperdrive::cluster
