#include "cluster/node_catalog.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/spec_parser.hpp"

namespace hyperdrive::cluster {

NodeCatalog NodeCatalog::uniform(std::size_t n) {
  NodeCatalog catalog;
  catalog.add(NodeClass{.name = "standard", .count = n});
  return catalog;
}

void NodeCatalog::add(NodeClass node_class) {
  if (node_class.name.empty()) {
    throw std::invalid_argument("node class needs a name");
  }
  if (find(node_class.name)) {
    throw std::invalid_argument("duplicate node class '" + node_class.name + "'");
  }
  if (node_class.speed_factor <= 0.0) {
    throw std::invalid_argument("node class '" + node_class.name +
                                "' needs a positive speed factor");
  }
  if (node_class.price_per_hour < 0.0) {
    throw std::invalid_argument("node class '" + node_class.name +
                                "' needs a non-negative price");
  }
  const std::size_t total = total_nodes() + node_class.count;
  classes_.push_back(std::move(node_class));
  block_begin_.push_back(total);
}

NodeClassId NodeCatalog::class_of(std::size_t m) const {
  for (NodeClassId c = 0; c < block_begin_.size(); ++c) {
    if (m < block_begin_[c]) return c;
  }
  throw std::out_of_range("machine id beyond catalog");
}

double NodeCatalog::speed(std::size_t m) const noexcept {
  if (empty() || m >= total_nodes()) return 1.0;
  for (NodeClassId c = 0; c < block_begin_.size(); ++c) {
    if (m < block_begin_[c]) return classes_[c].speed_factor;
  }
  return 1.0;
}

bool NodeCatalog::heterogeneous() const noexcept {
  for (const NodeClass& nc : classes_) {
    if (nc.speed_factor != 1.0) return true;
  }
  return false;
}

CapacityView NodeCatalog::full() const {
  std::vector<std::size_t> slots;
  slots.reserve(classes_.size());
  for (const NodeClass& nc : classes_) slots.push_back(nc.count);
  return CapacityView(std::move(slots));
}

std::optional<NodeClassId> NodeCatalog::find(const std::string& name) const noexcept {
  for (NodeClassId c = 0; c < classes_.size(); ++c) {
    if (classes_[c].name == name) return c;
  }
  return std::nullopt;
}

// --- node-catalog file format ------------------------------------------------
//
// One `node-class <name> <count> <price/hr> <speed> [spot]` per line, '#'
// starts a comment. See README.md "Node catalogs".

NodeCatalog load_node_catalog(std::istream& in) {
  NodeCatalog catalog;
  util::SpecParser parser(in, "node catalog");
  while (parser.next_line()) {
    if (parser.directive() != "node-class") {
      parser.fail("unknown directive '" + parser.directive() + "'");
    }
    NodeClass nc;
    nc.name = parser.word("class name");
    nc.count = static_cast<std::size_t>(parser.number("node count"));
    nc.price_per_hour = parser.number("price per hour");
    nc.speed_factor = parser.number("speed factor");
    if (const auto flag = parser.optional_word()) {
      if (*flag != "spot") parser.fail("unknown flag '" + *flag + "' (want spot)");
      nc.spot = true;
    }
    parser.finish_line();
    try {
      catalog.add(std::move(nc));
    } catch (const std::invalid_argument& e) {
      parser.fail(e.what());
    }
  }
  return catalog;
}

void save_node_catalog(const NodeCatalog& catalog, std::ostream& out) {
  const auto precision = out.precision(17);
  out << "# HyperDrive node catalog\n";
  for (NodeClassId c = 0; c < catalog.classes(); ++c) {
    const NodeClass& nc = catalog.at(c);
    out << "node-class " << nc.name << ' ' << nc.count << ' ' << nc.price_per_hour
        << ' ' << nc.speed_factor;
    if (nc.spot) out << " spot";
    out << '\n';
  }
  out.precision(precision);
}

}  // namespace hyperdrive::cluster
