// Snapshot codec — the byte-level side of suspend/resume (§5.1).
//
// The paper snapshots training state either through the learning framework
// (Caffe model state, ~360 KB) or through whole-process CRIU images
// (~20-40 MB). In this reproduction the *schedulable* state of a job is its
// configuration, its observed performance history, and its epoch counter;
// this codec serializes that state into a framed, checksummed byte image so
// suspend/resume actually round-trips through bytes (and the AppStatDB
// stores something real, not just a size).
//
// Wire format (little-endian):
//   magic  u32  'HDSS'
//   version u32
//   job_id u64
//   epoch  u64
//   n_params u32, then per param: name (u32 len + bytes), tag u8,
//       value (f64 | i64 | u32 len + bytes)
//   n_history u32, then f64 each
//   n_secondary u32, then f64 each
//   padding_len u32, then padding bytes (zeros) — models framework/process
//       state that dwarfs the schedulable state (e.g. CRIU images)
//   crc32  u32 over everything before it
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/sap.hpp"
#include "workload/hyperparameters.hpp"

namespace hyperdrive::cluster {

/// The schedulable state of a suspended job.
struct JobSnapshotState {
  core::JobId job_id = 0;
  std::size_t epoch = 0;
  workload::Configuration config;
  std::vector<double> history;
  std::vector<double> secondary;
};

/// CRC-32 (IEEE 802.3, reflected) over a byte span.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

/// Why a snapshot image failed to decode. Best-effort classification: a bit
/// flip inside a length field can masquerade as truncation, so the taxonomy
/// is for diagnostics and recovery-ladder decisions, never for trusting a
/// frame — every error means "do not resume from this image".
enum class SnapshotDecodeError {
  Truncated,        ///< image ends before the structure does
  BadMagic,         ///< not a snapshot frame at all
  UnknownVersion,   ///< framed by a newer (or corrupt) codec revision
  Malformed,        ///< structure intact but a field value is invalid
  TrailingGarbage,  ///< structure ends before the image does
  BadChecksum,      ///< structure parses but the trailing CRC disagrees
};

[[nodiscard]] const char* to_string(SnapshotDecodeError error) noexcept;

/// decode_ex result: exactly one of {state, error} is set.
struct SnapshotDecodeResult {
  std::optional<JobSnapshotState> state;
  std::optional<SnapshotDecodeError> error;
};

class SnapshotCodec {
 public:
  /// Serialize `state`, padding the image up to at least `min_bytes` (0 =
  /// no padding) to model framework/process state.
  [[nodiscard]] static std::vector<std::uint8_t> encode(const JobSnapshotState& state,
                                                        std::size_t min_bytes = 0);

  /// Decode an image. Returns nullopt on any structural or checksum error —
  /// a corrupt snapshot must never resume as a silently-wrong job.
  [[nodiscard]] static std::optional<JobSnapshotState> decode(
      const std::vector<std::uint8_t>& image);

  /// Decode with an explicit error taxonomy (same acceptance set as decode:
  /// an image decodes via decode() iff decode_ex() yields a state).
  [[nodiscard]] static SnapshotDecodeResult decode_ex(const std::vector<std::uint8_t>& image);
};

}  // namespace hyperdrive::cluster
