// Overhead models for the high-fidelity cluster: suspend/resume latency and
// snapshot size, stat-report message latency, and job-start cost.
//
// The distributions are calibrated to the paper's measurements:
//   CIFAR-10 (§6.2.3, framework-level snapshots through Caffe):
//     suspend latency avg 157.69 ms, sigma 72 ms, p95 219 ms, max 1.12 s;
//     snapshot size avg 357.67 KB, sigma 122.46 KB, p95 685.26 KB,
//     max 686.06 KB.
//   LunarLander (§6.3.2, whole-process CRIU snapshots):
//     latency up to 22.36 s, snapshot size up to 43.75 MB (Fig. 10).
#pragma once

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

/// A clamped lognormal: exp(N(mu, sigma)) truncated into [lo, hi].
struct ClampedLognormal {
  double mu = 0.0;
  double sigma = 1.0;
  double lo = 0.0;
  double hi = 1.0;

  [[nodiscard]] double sample(util::Rng& rng) const noexcept;
};

struct SuspendOverheadSample {
  util::SimTime latency = util::SimTime::zero();
  double snapshot_bytes = 0.0;
};

/// Suspend/resume cost model for one workload type.
struct OverheadModel {
  ClampedLognormal suspend_latency_s;    ///< seconds
  ClampedLognormal snapshot_bytes;       ///< bytes
  /// Network bandwidth used to ship snapshots on resume (bytes/second).
  double resume_bandwidth_bps = 1.25e9;  ///< 10 Gbps
  /// Fixed restore cost multiplier relative to the suspend latency.
  double restore_factor = 1.0;
  /// Cost of launching a brand new training job on a machine.
  util::SimTime job_start_cost = util::SimTime::seconds(3.0);
  /// One-way application-stat message latency (node agent -> scheduler).
  ClampedLognormal stat_latency_s;

  [[nodiscard]] SuspendOverheadSample sample_suspend(util::Rng& rng) const;
  [[nodiscard]] util::SimTime resume_cost(const SuspendOverheadSample& snapshot,
                                          util::Rng& rng) const;
  [[nodiscard]] util::SimTime sample_stat_latency(util::Rng& rng) const;
};

/// Framework-level snapshots as measured for the CIFAR-10 workload (§6.2.3).
[[nodiscard]] OverheadModel cifar_overhead_model();

/// CRIU whole-process snapshots as measured for LunarLander (§6.3.2/Fig. 10).
[[nodiscard]] OverheadModel lunar_criu_overhead_model();

/// All-zero overheads (the idealization the trace-replay simulator uses);
/// handy for tests isolating scheduling logic from overhead noise.
[[nodiscard]] OverheadModel zero_overhead_model();

}  // namespace hyperdrive::cluster
