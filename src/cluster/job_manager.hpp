// Job Manager (§4.2 ➄): tracks every job's lifecycle state and provides the
// start/resume/suspend/terminate/label API the SAP drives. The priority
// label orders the idle queue; unlabeled jobs (and ties) are FIFO.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cluster/resource_manager.hpp"
#include "core/sap.hpp"
#include "sim/simulation.hpp"
#include "util/sim_time.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::cluster {

struct ManagedJob {
  core::JobId id = 0;
  const workload::TraceJob* spec = nullptr;
  core::JobStatus status = core::JobStatus::Pending;
  std::size_t epochs_done = 0;

  // Idle-queue bookkeeping.
  double priority = 0.0;
  std::uint64_t idle_seq = 0;
  bool idle = true;

  // Placement & execution accounting.
  std::optional<MachineId> machine;
  util::SimTime execution_time = util::SimTime::zero();  ///< incl. overheads & partial epochs
  util::SimTime training_time = util::SimTime::zero();   ///< completed-epoch time only
  std::size_t times_suspended = 0;

  // In-flight epoch (cancelled when a suspend/terminate decision lands
  // mid-epoch — the paper's overlapped prediction, §5.2).
  sim::EventHandle pending_epoch = 0;
  util::SimTime epoch_started_at = util::SimTime::zero();
  bool epoch_in_flight = false;

  // Blocking-decision mode (§5.2 ablation): the job idles on its machine
  // while the prediction-based decision is computed.
  bool waiting_decision = false;
  util::SimTime wait_started_at = util::SimTime::zero();

  // Suspend in progress: the snapshot-capture event that will ship the image
  // to storage (cancelled if the node crashes during the capture window).
  sim::EventHandle pending_suspend = 0;
  bool suspend_in_flight = false;

  // Gray-failure mitigation (DESIGN.md §7).
  /// Expected (pre-degradation) duration of the epoch in flight; baseline for
  /// the speed score and the progress deadline.
  util::SimTime epoch_expected = util::SimTime::zero();
  /// Straggler watchdog: fires when an epoch runs hang_deadline_factor x its
  /// expected duration without completing; cancelled on completion/interrupt.
  sim::EventHandle progress_deadline = 0;
  bool deadline_armed = false;
  /// training_time with each epoch scaled by the host's speed score — the
  /// cost the epochs would have had on healthy nodes (feeds
  /// SchedulerOps::normalized_epoch_duration).
  util::SimTime normalized_training_time = util::SimTime::zero();

  // Bumped every time the job is forcibly rolled back/requeued (crash, lost
  // snapshot). Events scheduled against an older incarnation — a startup
  // completion, a pending policy decision — are stale and must not act.
  std::uint64_t incarnation = 0;
};

class JobManager {
 public:
  explicit JobManager(const workload::Trace& trace);

  [[nodiscard]] ManagedJob& job(core::JobId id);
  [[nodiscard]] const ManagedJob& job(core::JobId id) const;

  /// getIdleJob(): highest priority first, FIFO within ties (§4.2).
  [[nodiscard]] std::optional<core::JobId> get_idle_job() const;
  /// labelJob(jobID, priority) (§4.2).
  void label_job(core::JobId id, double priority);
  /// Move a job (back) into the idle queue, at the FIFO tail of its
  /// priority class.
  void enqueue_idle(core::JobId id);
  /// Remove from the idle queue (when placed on a machine).
  void dequeue_idle(core::JobId id);

  [[nodiscard]] std::vector<core::JobId> active_jobs() const;
  [[nodiscard]] const std::map<core::JobId, ManagedJob>& all() const noexcept {
    return jobs_;
  }
  [[nodiscard]] std::map<core::JobId, ManagedJob>& all() noexcept { return jobs_; }

  /// FIFO tiebreak counter behind idle_seq — part of the scheduling state a
  /// coordinator checkpoint must fingerprint (cluster::encode_state).
  [[nodiscard]] std::uint64_t idle_counter() const noexcept { return idle_counter_; }

 private:
  std::map<core::JobId, ManagedJob> jobs_;  // ordered for determinism
  std::uint64_t idle_counter_ = 0;
};

}  // namespace hyperdrive::cluster
