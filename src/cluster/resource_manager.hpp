// Resource Management component (§4.2 ➄): tracks allocated and idle
// machines. In a cloud deployment this is where instance reservation would
// live; here machines are slots in the simulated cluster.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace hyperdrive::cluster {

using MachineId = std::uint32_t;

class ResourceManager {
 public:
  explicit ResourceManager(std::size_t machines);

  /// reserveIdleMachine() -> machineId (§4.2). Lowest-numbered idle machine
  /// first, for determinism.
  [[nodiscard]] std::optional<MachineId> reserve_idle_machine();
  /// releaseMachine(machineId). Throws std::logic_error on double release.
  void release_machine(MachineId machine);

  [[nodiscard]] std::size_t total() const noexcept { return busy_.size(); }
  [[nodiscard]] std::size_t idle() const noexcept { return idle_count_; }
  [[nodiscard]] bool is_busy(MachineId machine) const;

 private:
  std::vector<bool> busy_;
  std::size_t idle_count_ = 0;
};

}  // namespace hyperdrive::cluster
