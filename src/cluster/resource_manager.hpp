// Resource Management component (§4.2 ➄): tracks allocated and idle
// machines. In a cloud deployment this is where instance reservation would
// live; here machines are slots in the simulated cluster.
//
// Machines can also go offline (node crash) and come back (restart): offline
// machines are excluded from reservation and from total()/idle(), so POP's
// deserved-slot computation — S_deserved(p) = S * p — automatically shrinks
// and grows with cluster membership.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace hyperdrive::cluster {

using MachineId = std::uint32_t;

class ResourceManager {
 public:
  explicit ResourceManager(std::size_t machines);

  /// reserveIdleMachine() -> machineId (§4.2). Lowest-numbered idle online
  /// machine first, for determinism.
  [[nodiscard]] std::optional<MachineId> reserve_idle_machine();
  /// Health-aware variant: among idle online machines pick the one `score`
  /// rates highest, ties to the lowest id — so with uniform scores the
  /// placement is identical to the unscored overload. Used to keep jobs off
  /// degraded (but not yet quarantined) nodes.
  [[nodiscard]] std::optional<MachineId> reserve_idle_machine(
      const std::function<double(MachineId)>& score);
  /// releaseMachine(machineId). Throws std::logic_error on double release.
  void release_machine(MachineId machine);

  /// Take a machine out of the membership (node crash). The machine must be
  /// idle — the cluster requeues its job first; throws std::logic_error if
  /// it is still busy, std::out_of_range for an unknown id.
  void set_offline(MachineId machine);
  /// Bring a crashed machine back (restart-after-delay).
  void set_online(MachineId machine);
  [[nodiscard]] bool is_online(MachineId machine) const;

  // --- lease layer (multi-study arbitration, DESIGN.md §9) -----------------
  // A parked machine is capacity surrendered to the study arbiter: out of
  // this tenant's membership (like offline) *and* flagged so a node restart
  // does not silently re-admit it. Slots charged to the tenant are
  // configured() - parked(); offline-but-unparked machines (crashed,
  // quarantined) still count against its lease.

  /// Park a machine: an online machine must be idle (throws std::logic_error
  /// if busy); an offline machine (crashed/quarantined) is absorbed as-is.
  void park_machine(MachineId machine);
  /// Re-admit a parked machine as online + idle (lease grant). Throws
  /// std::logic_error if the machine is not parked.
  void unpark_machine(MachineId machine);
  [[nodiscard]] bool is_parked(MachineId machine) const;
  /// Number of parked machines.
  [[nodiscard]] std::size_t parked() const noexcept { return parked_count_; }

  /// Machines currently in the membership (online), the capacity the
  /// scheduler sees.
  [[nodiscard]] std::size_t total() const noexcept { return online_count_; }
  /// Online machines not running a job.
  [[nodiscard]] std::size_t idle() const noexcept { return idle_count_; }
  /// Machines the cluster was configured with, dead or alive.
  [[nodiscard]] std::size_t configured() const noexcept { return busy_.size(); }
  [[nodiscard]] bool is_busy(MachineId machine) const;

 private:
  std::vector<bool> busy_;
  std::vector<bool> online_;
  std::vector<bool> parked_;
  std::size_t idle_count_ = 0;
  std::size_t online_count_ = 0;
  std::size_t parked_count_ = 0;
};

}  // namespace hyperdrive::cluster
