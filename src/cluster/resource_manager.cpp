#include "cluster/resource_manager.hpp"

#include <stdexcept>

namespace hyperdrive::cluster {

ResourceManager::ResourceManager(std::size_t machines)
    : busy_(machines, false), idle_count_(machines) {
  if (machines == 0) throw std::invalid_argument("ResourceManager needs >= 1 machine");
}

std::optional<MachineId> ResourceManager::reserve_idle_machine() {
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (!busy_[i]) {
      busy_[i] = true;
      --idle_count_;
      return static_cast<MachineId>(i);
    }
  }
  return std::nullopt;
}

void ResourceManager::release_machine(MachineId machine) {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  if (!busy_[machine]) throw std::logic_error("double release of machine");
  busy_[machine] = false;
  ++idle_count_;
}

bool ResourceManager::is_busy(MachineId machine) const {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  return busy_[machine];
}

}  // namespace hyperdrive::cluster
