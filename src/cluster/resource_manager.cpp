#include "cluster/resource_manager.hpp"

#include <stdexcept>

namespace hyperdrive::cluster {

ResourceManager::ResourceManager(std::size_t machines)
    : busy_(machines, false),
      online_(machines, true),
      parked_(machines, false),
      idle_count_(machines),
      online_count_(machines) {
  if (machines == 0) throw std::invalid_argument("ResourceManager needs >= 1 machine");
}

std::optional<MachineId> ResourceManager::reserve_idle_machine() {
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (!busy_[i] && online_[i]) {
      busy_[i] = true;
      --idle_count_;
      return static_cast<MachineId>(i);
    }
  }
  return std::nullopt;
}

std::optional<MachineId> ResourceManager::reserve_idle_machine(
    const std::function<double(MachineId)>& score) {
  std::optional<MachineId> best;
  double best_score = 0.0;
  for (std::size_t i = 0; i < busy_.size(); ++i) {
    if (busy_[i] || !online_[i]) continue;
    const auto m = static_cast<MachineId>(i);
    const double s = score(m);
    if (!best || s > best_score) {  // strict '>' keeps ties on the lowest id
      best = m;
      best_score = s;
    }
  }
  if (best) {
    busy_[*best] = true;
    --idle_count_;
  }
  return best;
}

void ResourceManager::release_machine(MachineId machine) {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  if (!busy_[machine]) throw std::logic_error("double release of machine");
  busy_[machine] = false;
  if (online_[machine]) ++idle_count_;
}

void ResourceManager::set_offline(MachineId machine) {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  if (!online_[machine]) return;
  if (busy_[machine]) throw std::logic_error("cannot take a busy machine offline");
  online_[machine] = false;
  --online_count_;
  --idle_count_;
}

void ResourceManager::set_online(MachineId machine) {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  if (online_[machine]) return;
  online_[machine] = true;
  ++online_count_;
  if (!busy_[machine]) ++idle_count_;
}

void ResourceManager::park_machine(MachineId machine) {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  if (parked_[machine]) return;
  if (busy_[machine]) throw std::logic_error("cannot park a busy machine");
  if (online_[machine]) {
    online_[machine] = false;
    --online_count_;
    --idle_count_;
  }
  parked_[machine] = true;
  ++parked_count_;
}

void ResourceManager::unpark_machine(MachineId machine) {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  if (!parked_[machine]) throw std::logic_error("machine is not parked");
  parked_[machine] = false;
  --parked_count_;
  online_[machine] = true;
  ++online_count_;
  ++idle_count_;
}

bool ResourceManager::is_parked(MachineId machine) const {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  return parked_[machine];
}

bool ResourceManager::is_online(MachineId machine) const {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  return online_[machine];
}

bool ResourceManager::is_busy(MachineId machine) const {
  if (machine >= busy_.size()) throw std::out_of_range("unknown machine id");
  return busy_[machine];
}

}  // namespace hyperdrive::cluster
