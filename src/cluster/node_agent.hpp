// Node Agent (§4.2 ➅): the per-machine daemon that executes training jobs,
// forwards application statistics to the scheduler, and — per the §5.2
// "Distributed Curve Prediction" optimization — keeps the learning-curve
// history of the jobs it hosts locally so curve predictions run on the
// worker rather than the central scheduler.
//
// In this simulated deployment the agent's job-execution mechanics live in
// HyperDriveCluster (which owns the event queue); the NodeAgent itself
// carries the per-machine accounting and the local curve-history cache,
// including the history handoff that happens when a suspended job resumes on
// a different machine.
#pragma once

#include <map>
#include <vector>

#include "cluster/resource_manager.hpp"
#include "core/sap.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

class NodeAgent {
 public:
  explicit NodeAgent(MachineId id) : id_(id) {}

  [[nodiscard]] MachineId id() const noexcept { return id_; }

  // --- execution accounting ----------------------------------------------
  void note_busy(util::SimTime span) noexcept { busy_time_ += span; }
  void note_epoch() noexcept { ++epochs_run_; }
  void note_prediction() noexcept { ++predictions_run_; }
  [[nodiscard]] util::SimTime busy_time() const noexcept { return busy_time_; }
  [[nodiscard]] std::size_t epochs_run() const noexcept { return epochs_run_; }
  [[nodiscard]] std::size_t predictions_run() const noexcept { return predictions_run_; }

  // --- liveness probes (gray-failure detection, DESIGN.md §7) --------------
  /// Sequence number for the next Heartbeat this agent emits (1-based).
  [[nodiscard]] std::uint64_t next_heartbeat_seq() noexcept { return ++heartbeats_sent_; }
  [[nodiscard]] std::uint64_t heartbeats_sent() const noexcept { return heartbeats_sent_; }

  // --- local curve-history cache (§5.2) ------------------------------------
  /// Record one observed performance value for a hosted job.
  void append_history(core::JobId job, double perf);
  /// Install a full history (sent over when a job resumes on this machine).
  void install_history(core::JobId job, std::vector<double> history);
  /// Drop and return the history (handed to the next host on migration).
  /// Throws std::out_of_range if this agent does not host the job — a silent
  /// empty return here would hand an empty curve history to the new host and
  /// quietly wreck its predictions; callers must check hosts_history() first.
  [[nodiscard]] std::vector<double> take_history(core::JobId job);
  /// Throws std::out_of_range for a job this agent does not host.
  [[nodiscard]] const std::vector<double>& history(core::JobId job) const;
  [[nodiscard]] bool hosts_history(core::JobId job) const noexcept;
  /// Drop every cached history (the node crashed; its local §5.2 state is
  /// gone and must be re-installed from a snapshot or AppStatDb replay).
  void clear_histories() noexcept { histories_.clear(); }

 private:
  MachineId id_;
  util::SimTime busy_time_ = util::SimTime::zero();
  std::size_t epochs_run_ = 0;
  std::size_t predictions_run_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::map<core::JobId, std::vector<double>> histories_;
};

}  // namespace hyperdrive::cluster
