#include "cluster/messaging.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyperdrive::cluster {

std::string_view to_string(MessageType type) noexcept {
  switch (type) {
    case MessageType::StartJob: return "StartJob";
    case MessageType::SuspendJob: return "SuspendJob";
    case MessageType::TerminateJob: return "TerminateJob";
    case MessageType::ReportStat: return "ReportStat";
    case MessageType::SnapshotUpload: return "SnapshotUpload";
    case MessageType::SnapshotDownload: return "SnapshotDownload";
    case MessageType::Ack: return "Ack";
  }
  return "?";
}

MessageBus::MessageBus(sim::Simulation& simulation, MessageBusOptions options,
                       std::uint64_t seed)
    : simulation_(simulation),
      options_(options),
      rng_(util::derive_seed(seed, 0xb05)) {}

EndpointId MessageBus::register_endpoint(std::string name, Handler handler) {
  const EndpointId id = next_id_++;
  endpoints_.emplace(id, Endpoint{std::move(name), std::move(handler)});
  return id;
}

const std::string& MessageBus::endpoint_name(EndpointId id) const {
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) throw std::out_of_range("unknown endpoint");
  return it->second.name;
}

std::uint64_t MessageBus::send(Message message) {
  const auto it = endpoints_.find(message.to);
  if (it == endpoints_.end()) throw std::out_of_range("unknown message destination");

  message.sent_at = simulation_.now();
  message.seq = next_seq_++;

  ++stats_.messages;
  stats_.bytes += message.payload_bytes;
  ++stats_.per_type[message.type];

  const double latency_s = std::clamp(
      rng_.lognormal(options_.latency_mu, options_.latency_sigma), options_.latency_min_s,
      options_.latency_max_s);
  const double transfer_s = options_.bandwidth_bps > 0.0
                                ? message.payload_bytes / options_.bandwidth_bps
                                : 0.0;
  const Handler& handler = it->second.handler;
  const std::uint64_t seq = message.seq;
  simulation_.schedule_after(util::SimTime::seconds(latency_s + transfer_s),
                             [&handler, message] { handler(message); });
  return seq;
}

}  // namespace hyperdrive::cluster
