#include "cluster/messaging.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyperdrive::cluster {

namespace {
/// Modelled wire size of one ack control message.
constexpr double kAckBytes = 64.0;
}  // namespace

std::string_view to_string(MessageType type) noexcept {
  switch (type) {
    case MessageType::StartJob: return "StartJob";
    case MessageType::SuspendJob: return "SuspendJob";
    case MessageType::TerminateJob: return "TerminateJob";
    case MessageType::ReportStat: return "ReportStat";
    case MessageType::SnapshotUpload: return "SnapshotUpload";
    case MessageType::SnapshotDownload: return "SnapshotDownload";
    case MessageType::Heartbeat: return "Heartbeat";
    case MessageType::Ack: return "Ack";
  }
  return "?";
}

MessageBus::MessageBus(sim::Simulation& simulation, MessageBusOptions options,
                       std::uint64_t seed)
    : simulation_(simulation),
      options_(options),
      rng_(util::derive_seed(seed, 0xb05)) {}

EndpointId MessageBus::register_endpoint(std::string name, Handler handler) {
  const EndpointId id = next_id_++;
  Endpoint endpoint;
  endpoint.name = std::move(name);
  endpoint.handler = std::move(handler);
  endpoints_.emplace(id, std::move(endpoint));
  return id;
}

void MessageBus::set_endpoint_up(EndpointId id, bool up) {
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) throw std::out_of_range("unknown endpoint");
  it->second.up = up;
}

const std::string& MessageBus::endpoint_name(EndpointId id) const {
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) throw std::out_of_range("unknown endpoint");
  return it->second.name;
}

std::size_t MessageBus::dedup_entries(EndpointId id) const {
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) throw std::out_of_range("unknown endpoint");
  return it->second.seen.size();
}

util::SimTime MessageBus::transit_time(const Message& message) {
  const double latency_s = std::clamp(
      rng_.lognormal(options_.latency_mu, options_.latency_sigma), options_.latency_min_s,
      options_.latency_max_s);
  const double transfer_s = options_.bandwidth_bps > 0.0
                                ? message.payload_bytes / options_.bandwidth_bps
                                : 0.0;
  util::SimTime transit = util::SimTime::seconds(latency_s + transfer_s);
  if (injector_ != nullptr) {
    const util::SimTime extra = injector_->extra_delay(message.type);
    if (extra > util::SimTime::zero()) {
      ++stats_.delayed;
      transit += extra;
    }
  }
  return transit;
}

std::uint64_t MessageBus::send(Message message, FailureHandler on_failure) {
  if (endpoints_.find(message.to) == endpoints_.end()) {
    throw std::out_of_range("unknown message destination");
  }

  message.sent_at = simulation_.now();
  message.seq = next_seq_++;
  const std::uint64_t seq = message.seq;

  ++stats_.messages;
  stats_.bytes += message.payload_bytes;
  ++stats_.per_type[message.type];

  // Heartbeats ride the fire-and-forget path even in reliability mode: a
  // liveness probe that the bus retransmitted on the node's behalf would mask
  // exactly the silence the watchdog exists to detect.
  if (options_.reliability.enabled && message.type != MessageType::Ack &&
      message.type != MessageType::Heartbeat) {
    Transmission tx;
    tx.message = std::move(message);
    tx.on_failure = std::move(on_failure);
    tx.timeout_s = options_.reliability.ack_timeout_s;
    transmissions_.emplace(seq, std::move(tx));
    attempt(seq);
    return seq;
  }

  // Fire-and-forget path — identical to the original fabric when no fault
  // injector is attached (no extra RNG draws, same latency stream).
  if (injector_ != nullptr && injector_->should_drop(message.type)) {
    ++stats_.dropped;
    return seq;
  }
  const util::SimTime transit = transit_time(message);
  const bool duplicate = injector_ != nullptr && injector_->should_duplicate(message.type);
  ++unreliable_pending_;
  simulation_.schedule_after(transit, [this, message] {
    --unreliable_pending_;
    deliver(message, false);
  });
  if (duplicate) {
    ++stats_.duplicates_delivered;
    const util::SimTime again = transit_time(message);
    ++unreliable_pending_;
    simulation_.schedule_after(again, [this, message] {
      --unreliable_pending_;
      deliver(message, false);
    });
  }
  return seq;
}

void MessageBus::attempt(std::uint64_t seq) {
  const auto it = transmissions_.find(seq);
  if (it == transmissions_.end()) return;
  Transmission& tx = it->second;
  ++tx.attempts;
  if (tx.attempts > 1) {
    ++stats_.retransmissions;
    stats_.retransmitted_bytes += tx.message.payload_bytes;
  }

  if (injector_ != nullptr && injector_->should_drop(tx.message.type)) {
    ++stats_.dropped;
  } else {
    const util::SimTime transit = transit_time(tx.message);
    const Message copy = tx.message;
    simulation_.schedule_after(transit, [this, copy] { deliver(copy, true); });
    if (injector_ != nullptr && injector_->should_duplicate(tx.message.type)) {
      const util::SimTime again = transit_time(tx.message);
      simulation_.schedule_after(again, [this, copy] { deliver(copy, true); });
    }
  }

  tx.timeout_event = simulation_.schedule_after(
      util::SimTime::seconds(tx.timeout_s), [this, seq] { on_ack_timeout(seq); });
  tx.timeout_s *= options_.reliability.backoff;
}

void MessageBus::deliver(const Message& message, bool reliable) {
  const auto it = endpoints_.find(message.to);
  if (it == endpoints_.end()) return;
  Endpoint& endpoint = it->second;
  if (!endpoint.up) {
    // The destination's node is down; no handler, no ack — the sender's
    // retransmission loop keeps trying until the node restarts or it gives up.
    ++stats_.dropped_endpoint_down;
    return;
  }

  if (!reliable) {
    endpoint.handler(message);
    return;
  }

  if (endpoint.seen.insert(message.seq).second) {
    endpoint.handler(message);
  } else {
    ++stats_.duplicates_suppressed;
  }

  // Ack even suppressed duplicates: the retransmission that produced the
  // duplicate means the original ack was lost (or late) — re-acking is what
  // stops the sender. Acks are control traffic, never retried themselves.
  ++stats_.acks_sent;
  stats_.ack_bytes += kAckBytes;
  if (injector_ != nullptr && injector_->should_drop(MessageType::Ack)) {
    ++stats_.dropped;
    return;
  }
  Message ack;
  ack.type = MessageType::Ack;
  ack.payload_bytes = kAckBytes;
  const util::SimTime transit = transit_time(ack);
  const std::uint64_t seq = message.seq;
  simulation_.schedule_after(transit, [this, seq] { handle_ack(seq); });
}

void MessageBus::handle_ack(std::uint64_t seq) {
  const auto it = transmissions_.find(seq);
  if (it == transmissions_.end()) return;  // already acked or given up
  simulation_.cancel(it->second.timeout_event);
  transmissions_.erase(it);
  if (transmissions_.empty() && on_drain_) on_drain_();
}

void MessageBus::on_ack_timeout(std::uint64_t seq) {
  const auto it = transmissions_.find(seq);
  if (it == transmissions_.end()) return;
  Transmission& tx = it->second;
  if (tx.attempts >= options_.reliability.max_attempts) {
    ++stats_.undeliverable;
    const FailureHandler on_failure = std::move(tx.on_failure);
    const Message message = std::move(tx.message);
    transmissions_.erase(it);
    if (on_failure) on_failure(message);
    // on_failure may have sent a recovery message; only report drained if
    // the bus is still quiescent afterwards.
    if (transmissions_.empty() && on_drain_) on_drain_();
    return;
  }
  attempt(seq);
}

}  // namespace hyperdrive::cluster
