#include "cluster/autoscaler.hpp"

#include <algorithm>

namespace hyperdrive::cluster {

Autoscaler::Autoscaler(Options options, CapacityView initial)
    : options_(std::move(options)), acquired_(std::move(initial)) {
  if (options_.catalog.empty()) {
    acquired_ = CapacityView();
    return;
  }
  // Full-width, clamped to the configured counts.
  CapacityView clamped;
  for (NodeClassId c = 0; c < options_.catalog.classes(); ++c) {
    clamped.set(c, std::min(acquired_.of(c), options_.catalog.at(c).count));
  }
  acquired_ = std::move(clamped);
}

void Autoscaler::advance(util::SimTime now) {
  if (now <= billed_until_) return;
  const util::SimTime dt = now - billed_until_;
  billed_until_ = now;
  const double rate = hourly_rate();
  if (rate > 0.0) spend_usd_ += rate * dt.to_hours();
}

double Autoscaler::hourly_rate() const noexcept {
  double rate = 0.0;
  for (NodeClassId c = 0; c < options_.catalog.classes(); ++c) {
    const std::size_t held = acquired_.of(c);
    if (held > 0) rate += static_cast<double>(held) * options_.catalog.at(c).price_per_hour;
  }
  return rate;
}

std::vector<ScaleAction> Autoscaler::reconcile(const CapacityView& demand,
                                               util::SimTime now) {
  advance(now);
  std::vector<ScaleAction> actions;
  if (options_.catalog.empty()) return actions;

  // Class ids sorted most-expensive-first for releases and cheapest effective
  // slot (price / speed) first for acquisitions; ties break on class id so
  // the order is total and the trace deterministic.
  std::vector<NodeClassId> by_price;
  for (NodeClassId c = 0; c < options_.catalog.classes(); ++c) by_price.push_back(c);
  std::vector<NodeClassId> release_order = by_price;
  std::sort(release_order.begin(), release_order.end(),
            [&](NodeClassId a, NodeClassId b) {
              const double pa = options_.catalog.at(a).price_per_hour;
              const double pb = options_.catalog.at(b).price_per_hour;
              if (pa != pb) return pa > pb;
              return a < b;
            });
  std::vector<NodeClassId> acquire_order = by_price;
  std::sort(acquire_order.begin(), acquire_order.end(),
            [&](NodeClassId a, NodeClassId b) {
              const double ea =
                  options_.catalog.at(a).price_per_hour / options_.catalog.at(a).speed_factor;
              const double eb =
                  options_.catalog.at(b).price_per_hour / options_.catalog.at(b).speed_factor;
              if (ea != eb) return ea < eb;
              return a < b;
            });

  for (const NodeClassId c : release_order) {
    const std::size_t want = std::min(demand.of(c), options_.catalog.at(c).count);
    const std::size_t have = acquired_.of(c);
    if (have > want) {
      acquired_.set(c, want);
      actions.push_back({ScaleAction::Kind::Release, c, have - want});
    }
  }
  if (!over_budget()) {
    for (const NodeClassId c : acquire_order) {
      const std::size_t want = std::min(demand.of(c), options_.catalog.at(c).count);
      const std::size_t have = acquired_.of(c);
      if (have < want) {
        acquired_.set(c, want);
        actions.push_back({ScaleAction::Kind::Acquire, c, want - have});
      }
    }
  }
  return actions;
}

}  // namespace hyperdrive::cluster
