#include "cluster/overhead_model.hpp"

#include <algorithm>
#include <cmath>

namespace hyperdrive::cluster {

double ClampedLognormal::sample(util::Rng& rng) const noexcept {
  if (hi <= lo) return lo;
  return std::clamp(rng.lognormal(mu, sigma), lo, hi);
}

SuspendOverheadSample OverheadModel::sample_suspend(util::Rng& rng) const {
  SuspendOverheadSample s;
  s.latency = util::SimTime::seconds(suspend_latency_s.sample(rng));
  s.snapshot_bytes = snapshot_bytes.sample(rng);
  return s;
}

util::SimTime OverheadModel::resume_cost(const SuspendOverheadSample& snapshot,
                                         util::Rng& rng) const {
  const double transfer_s =
      resume_bandwidth_bps > 0.0 ? snapshot.snapshot_bytes / resume_bandwidth_bps : 0.0;
  const double restore_s = restore_factor * suspend_latency_s.sample(rng);
  return util::SimTime::seconds(transfer_s + restore_s);
}

util::SimTime OverheadModel::sample_stat_latency(util::Rng& rng) const {
  return util::SimTime::seconds(stat_latency_s.sample(rng));
}

OverheadModel cifar_overhead_model() {
  OverheadModel m;
  // Lognormal moment-matched to mean 157.69 ms / sigma 72 ms, clamped at the
  // observed max of 1.12 s (§6.2.3).
  m.suspend_latency_s = {/*mu=*/-1.942, /*sigma=*/0.435, /*lo=*/0.04, /*hi=*/1.12};
  // Mean 357.67 KB / sigma 122.46 KB, max 686.06 KB.
  m.snapshot_bytes = {12.732, 0.333, 80.0e3, 686.06e3};
  m.resume_bandwidth_bps = 1.25e9;  // 10 Gbps private cluster
  m.restore_factor = 1.0;
  m.job_start_cost = util::SimTime::seconds(3.0);
  m.stat_latency_s = {-6.9, 0.3, 2e-4, 0.01};  // ~1 ms GRPC hop
  return m;
}

OverheadModel lunar_criu_overhead_model() {
  OverheadModel m;
  // Whole-process CRIU snapshots are far heavier (Fig. 10): seconds of
  // latency (max 22.36 s) and tens of MB of state (max 43.75 MB).
  m.suspend_latency_s = {1.386, 0.8, 0.5, 22.36};
  m.snapshot_bytes = {17.03, 0.35, 8.0e6, 43.75e6};
  m.resume_bandwidth_bps = 0.6e9;  // AWS instance-to-instance
  m.restore_factor = 1.0;
  m.job_start_cost = util::SimTime::seconds(5.0);
  m.stat_latency_s = {-6.5, 0.4, 3e-4, 0.02};
  return m;
}

OverheadModel zero_overhead_model() {
  OverheadModel m;
  m.suspend_latency_s = {0.0, 0.0, 0.0, 0.0};
  m.snapshot_bytes = {0.0, 0.0, 0.0, 0.0};
  m.resume_bandwidth_bps = 0.0;
  m.restore_factor = 0.0;
  m.job_start_cost = util::SimTime::zero();
  m.stat_latency_s = {0.0, 0.0, 0.0, 0.0};
  return m;
}

}  // namespace hyperdrive::cluster
