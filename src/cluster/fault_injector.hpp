// Deterministic fault injection for the simulated cluster.
//
// The ROADMAP's production target treats failure as the common case: agents
// crash mid-epoch, RPCs are dropped/duplicated/delayed, snapshot uploads fail
// or arrive corrupted. A FaultPlan describes *which* faults a run should
// experience; the FaultInjector turns that plan plus a seed into a stream of
// per-event fault decisions. Every decision is drawn from an Rng derived from
// the plan's seed, so a fault scenario is a pure function of
// (trace, cluster seed, fault plan) and any run is exactly replayable —
// the property the golden-trace determinism test enforces.
//
// The injector itself is policy-free: it only answers "does this message get
// dropped / duplicated / delayed?" and "does this snapshot survive?". The
// recovery machinery that makes the system survive those answers lives in
// MessageBus (ack/retry/dedup) and HyperDriveCluster (crash requeue, history
// re-install, capacity tracking).
//
// Beyond fail-stop faults the plan also describes *gray* (fail-slow)
// failures: per-node slowdown windows (optionally flapping), and hung-job
// events where an in-flight epoch stalls or never completes. These are pure
// functions of the plan and the queried time — no RNG state is consumed — so
// they compose with the seeded fault classes without perturbing their
// decision streams. Detection and mitigation (heartbeats, EWMA speed scores,
// quarantine, straggler migration) live in HealthMonitor + HyperDriveCluster.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "cluster/resource_manager.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

enum class MessageType;  // messaging.hpp

/// Per-message-type fault probabilities. All default to "no fault".
struct MessageFaultProfile {
  double drop_prob = 0.0;       ///< message vanishes in flight
  double duplicate_prob = 0.0;  ///< message is delivered twice
  double delay_prob = 0.0;      ///< message suffers extra latency
  double delay_mean_s = 0.2;    ///< mean of the exponential extra delay
};

/// One scheduled node failure. `restart_after` = infinity means the node
/// never comes back (permanent capacity loss).
struct NodeCrashEvent {
  MachineId machine = 0;
  util::SimTime at = util::SimTime::zero();
  util::SimTime restart_after = util::SimTime::infinity();
};

/// A fail-slow window: epochs begun on `machine` inside [from, until) take
/// `factor`x their nominal duration. With `period` > 0 the degradation
/// *flaps*: within each period the node is slow for the first `duty`
/// fraction and nominal for the rest — the intermittent gray failure that
/// defeats naive one-shot health probes. Overlapping windows multiply.
struct NodeSlowdownEvent {
  MachineId machine = 0;
  util::SimTime from = util::SimTime::zero();
  util::SimTime until = util::SimTime::infinity();
  double factor = 1.0;
  util::SimTime period = util::SimTime::zero();
  double duty = 0.5;
};

/// A hung-job event: training on `machine` makes no progress during
/// [at, at + clear_after). An epoch in flight across that window stalls for
/// the overlap; with `clear_after` = infinity the epoch never completes and
/// only straggler mitigation (progress deadline -> migration) can save the
/// job. Heartbeats from the machine go silent while it is hung, so the
/// missed-heartbeat watchdog fires too.
struct HungJobEvent {
  MachineId machine = 0;
  util::SimTime at = util::SimTime::zero();
  util::SimTime clear_after = util::SimTime::infinity();
};

/// A spot-instance reclaim (DESIGN.md §15): at `at` the provider issues its
/// preemption warning for `machine`; the cluster drains the node through a
/// clean snapshot migration on the lease/capacity path. `warning` later (the
/// classic 2-minute grace) the node is taken, busy or not — anything still on
/// it then fails crash-style. The reclaimed node never comes back.
struct SpotPreemptionEvent {
  MachineId machine = 0;
  util::SimTime at = util::SimTime::zero();
  util::SimTime warning = util::SimTime::seconds(120.0);
};

/// A scheduled *coordinator* death: at time `at` the whole scheduling process
/// (StudyManager + every tenant cluster) is killed and restarted from its
/// newest durable checkpoint (DESIGN.md §12). Unlike the node-level fault
/// classes this is not consumed by the FaultInjector — the coordinator
/// runtime in core::run_recoverable_multi_study schedules and handles it —
/// but it lives in the FaultPlan so crash scenarios share the text format,
/// seed plumbing, and round-trip guarantees of every other fault class.
struct CoordinatorCrashEvent {
  util::SimTime at = util::SimTime::zero();
};

/// Everything that can go wrong in one run, as data. Defaults are a perfect
/// world, so a default-constructed plan reproduces the fault-free cluster.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Fallback profile for message types without an explicit entry.
  MessageFaultProfile default_message_faults;
  std::map<MessageType, MessageFaultProfile> message_faults;
  std::vector<NodeCrashEvent> crashes;
  /// Gray (fail-slow) faults: deterministic, time-indexed, RNG-free.
  std::vector<NodeSlowdownEvent> slowdowns;
  std::vector<HungJobEvent> hangs;
  /// Spot-instance reclaims: warning, drain, then permanent capacity loss.
  std::vector<SpotPreemptionEvent> spot_preemptions;
  /// Coordinator kills handled by the recovery runtime, not the injector.
  /// Deliberately excluded from any(): scheduling a coordinator crash must
  /// not flip on MessageBus reliability or any node-level fault machinery,
  /// or the pre-crash trace would diverge from the fault-free golden trace.
  std::vector<CoordinatorCrashEvent> coordinator_crashes;
  /// A suspend's snapshot capture/upload aborts before transmission (the
  /// agent-side failure mode; the in-flight loss mode is drop_prob on
  /// SnapshotUpload messages).
  double snapshot_upload_fail_prob = 0.0;
  /// A stored snapshot image has a random bit flipped (exercises the codec's
  /// corruption rejection and the AppStatDb-replay recovery path).
  double snapshot_corrupt_prob = 0.0;

  /// Does this plan inject anything at all?
  [[nodiscard]] bool any() const noexcept;
  /// Does this plan contain gray (fail-slow / hang) faults?
  [[nodiscard]] bool any_gray() const noexcept;
  /// Does this plan kill the coordinator? (Not part of any(): see above.)
  [[nodiscard]] bool any_coordinator() const noexcept;

  /// Uniform message-fault shorthand: apply `profile` to every data message
  /// type (acks keep the default profile unless set explicitly).
  void set_uniform_message_faults(const MessageFaultProfile& profile) {
    default_message_faults = profile;
  }
};

/// Parse a FaultPlan from the small key-value text format documented in
/// README.md ("Fault-plan files"): one directive per line, `#` comments.
/// Throws std::invalid_argument with a line number on malformed input.
[[nodiscard]] FaultPlan load_fault_plan(std::istream& in);
/// Serialize a plan in the same format; load_fault_plan(save_fault_plan(p))
/// reproduces `p` exactly (round-trip tested).
void save_fault_plan(const FaultPlan& plan, std::ostream& out);

/// Counters of injected faults (what went wrong, as opposed to the recovery
/// counters in core::RecoveryStats which say what the system did about it).
struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t snapshot_uploads_failed = 0;
  std::uint64_t snapshots_corrupted = 0;
  std::uint64_t node_crashes = 0;
  // --- gray failures -------------------------------------------------------
  std::uint64_t epochs_slowed = 0;  ///< epochs begun inside a slowdown window
  std::uint64_t epochs_stalled = 0; ///< epochs stretched by a finite hang
  std::uint64_t epochs_hung = 0;    ///< epochs that will never complete
  // --- spot preemptions ----------------------------------------------------
  std::uint64_t spot_warnings = 0;    ///< preemption warnings issued
  std::uint64_t spot_preemptions = 0; ///< nodes actually taken back
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t run_seed);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool active() const noexcept { return plan_.any(); }

  // Each query consumes RNG state only when the corresponding probability is
  // non-zero, so enabling one fault class does not perturb the decision
  // stream of another.
  [[nodiscard]] bool should_drop(MessageType type);
  [[nodiscard]] bool should_duplicate(MessageType type);
  /// Zero when no extra delay is injected for this message.
  [[nodiscard]] util::SimTime extra_delay(MessageType type);
  [[nodiscard]] bool should_fail_upload();
  [[nodiscard]] bool should_corrupt_snapshot();
  /// Flip one random bit of a stored snapshot image (no-op on empty images).
  void corrupt(std::vector<std::uint8_t>& image);

  // Gray-failure queries: pure functions of (plan, machine, time) — they
  // consume no RNG state, so adding slowdowns/hangs to a plan leaves every
  // seeded decision stream untouched.
  /// Combined epoch-duration multiplier for an epoch begun at `now` (>= 1;
  /// 1 = healthy). Flapping windows contribute their factor only during the
  /// duty fraction of each period.
  [[nodiscard]] double slowdown_factor(MachineId machine, util::SimTime now) const;
  /// Is the machine inside a hang window at `now`? (Its heartbeats and
  /// training are both stalled.)
  [[nodiscard]] bool is_hung(MachineId machine, util::SimTime now) const;
  /// Total stall injected into an epoch spanning [start, start + duration)
  /// by hang windows, pushing its completion back; infinity = the epoch
  /// never completes.
  [[nodiscard]] util::SimTime hang_stall(MachineId machine, util::SimTime start,
                                         util::SimTime duration) const;

  /// Generator state for coordinator checkpoints: the injector's decision
  /// stream is part of the resumable state captured in encode_state().
  [[nodiscard]] util::RngState rng_state() const noexcept { return rng_.state(); }

  void note_crash() noexcept { ++stats_.node_crashes; }
  void note_spot_warning() noexcept { ++stats_.spot_warnings; }
  void note_spot_preemption() noexcept { ++stats_.spot_preemptions; }
  void note_slow_epoch() noexcept { ++stats_.epochs_slowed; }
  void note_stalled_epoch() noexcept { ++stats_.epochs_stalled; }
  void note_hung_epoch() noexcept { ++stats_.epochs_hung; }

 private:
  [[nodiscard]] const MessageFaultProfile& profile(MessageType type) const;

  FaultPlan plan_;
  util::Rng rng_;
  FaultStats stats_;
};

}  // namespace hyperdrive::cluster
