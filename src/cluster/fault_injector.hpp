// Deterministic fault injection for the simulated cluster.
//
// The ROADMAP's production target treats failure as the common case: agents
// crash mid-epoch, RPCs are dropped/duplicated/delayed, snapshot uploads fail
// or arrive corrupted. A FaultPlan describes *which* faults a run should
// experience; the FaultInjector turns that plan plus a seed into a stream of
// per-event fault decisions. Every decision is drawn from an Rng derived from
// the plan's seed, so a fault scenario is a pure function of
// (trace, cluster seed, fault plan) and any run is exactly replayable —
// the property the golden-trace determinism test enforces.
//
// The injector itself is policy-free: it only answers "does this message get
// dropped / duplicated / delayed?" and "does this snapshot survive?". The
// recovery machinery that makes the system survive those answers lives in
// MessageBus (ack/retry/dedup) and HyperDriveCluster (crash requeue, history
// re-install, capacity tracking).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/resource_manager.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

enum class MessageType;  // messaging.hpp

/// Per-message-type fault probabilities. All default to "no fault".
struct MessageFaultProfile {
  double drop_prob = 0.0;       ///< message vanishes in flight
  double duplicate_prob = 0.0;  ///< message is delivered twice
  double delay_prob = 0.0;      ///< message suffers extra latency
  double delay_mean_s = 0.2;    ///< mean of the exponential extra delay
};

/// One scheduled node failure. `restart_after` = infinity means the node
/// never comes back (permanent capacity loss).
struct NodeCrashEvent {
  MachineId machine = 0;
  util::SimTime at = util::SimTime::zero();
  util::SimTime restart_after = util::SimTime::infinity();
};

/// Everything that can go wrong in one run, as data. Defaults are a perfect
/// world, so a default-constructed plan reproduces the fault-free cluster.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Fallback profile for message types without an explicit entry.
  MessageFaultProfile default_message_faults;
  std::map<MessageType, MessageFaultProfile> message_faults;
  std::vector<NodeCrashEvent> crashes;
  /// A suspend's snapshot capture/upload aborts before transmission (the
  /// agent-side failure mode; the in-flight loss mode is drop_prob on
  /// SnapshotUpload messages).
  double snapshot_upload_fail_prob = 0.0;
  /// A stored snapshot image has a random bit flipped (exercises the codec's
  /// corruption rejection and the AppStatDb-replay recovery path).
  double snapshot_corrupt_prob = 0.0;

  /// Does this plan inject anything at all?
  [[nodiscard]] bool any() const noexcept;

  /// Uniform message-fault shorthand: apply `profile` to every data message
  /// type (acks keep the default profile unless set explicitly).
  void set_uniform_message_faults(const MessageFaultProfile& profile) {
    default_message_faults = profile;
  }
};

/// Counters of injected faults (what went wrong, as opposed to the recovery
/// counters in core::RecoveryStats which say what the system did about it).
struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t snapshot_uploads_failed = 0;
  std::uint64_t snapshots_corrupted = 0;
  std::uint64_t node_crashes = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t run_seed);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool active() const noexcept { return plan_.any(); }

  // Each query consumes RNG state only when the corresponding probability is
  // non-zero, so enabling one fault class does not perturb the decision
  // stream of another.
  [[nodiscard]] bool should_drop(MessageType type);
  [[nodiscard]] bool should_duplicate(MessageType type);
  /// Zero when no extra delay is injected for this message.
  [[nodiscard]] util::SimTime extra_delay(MessageType type);
  [[nodiscard]] bool should_fail_upload();
  [[nodiscard]] bool should_corrupt_snapshot();
  /// Flip one random bit of a stored snapshot image (no-op on empty images).
  void corrupt(std::vector<std::uint8_t>& image);

  void note_crash() noexcept { ++stats_.node_crashes; }

 private:
  [[nodiscard]] const MessageFaultProfile& profile(MessageType type) const;

  FaultPlan plan_;
  util::Rng rng_;
  FaultStats stats_;
};

}  // namespace hyperdrive::cluster
