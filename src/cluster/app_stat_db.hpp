// AppStat Database (§4.2 ➂): stores model-generated application statistics
// (accuracy / reward, epoch durations) and the model-state snapshots that
// make suspend/resume across machines possible. Shared between the SAP, the
// Hyperparameter Generator and the training jobs.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "cluster/resource_manager.hpp"
#include "core/experiment_result.hpp"
#include "core/sap.hpp"
#include "util/sim_time.hpp"

namespace hyperdrive::cluster {

struct AppStat {
  core::JobId job_id = 0;
  std::size_t epoch = 0;
  double perf = 0.0;
  /// Optional secondary application metric (NaN when absent), §9.
  double secondary = std::numeric_limits<double>::quiet_NaN();
  util::SimTime epoch_duration = util::SimTime::zero();
  MachineId node = 0;
  util::SimTime reported_at = util::SimTime::zero();
};

struct ModelSnapshot {
  core::JobId job_id = 0;
  std::size_t epoch = 0;
  /// Modeled on-the-wire size (framework/CRIU image, §6.2.3/§6.3.2). The
  /// stored image below contains only the schedulable state and is usually
  /// much smaller.
  double size_bytes = 0.0;
  /// Serialized schedulable state (SnapshotCodec format) used to actually
  /// restore the job on resume.
  std::vector<std::uint8_t> image;
  util::SimTime stored_at = util::SimTime::zero();
};

class AppStatDb {
 public:
  /// Record one application stat. Stats are keyed by (job, epoch): a stat for
  /// an already-recorded epoch — a retransmitted/duplicated RPC, or an epoch
  /// re-trained after a crash rollback — is ignored and `false` is returned.
  /// Out-of-order arrivals are buffered; perf_history() only ever exposes the
  /// contiguous epoch prefix so the curve predictor never sees holes.
  bool record_stat(const AppStat& stat);
  [[nodiscard]] const std::vector<AppStat>& stats(core::JobId job) const;
  /// Performance values only, in contiguous epoch order (entry i = epoch
  /// i+1) — what the SAP consumes.
  [[nodiscard]] const std::vector<double>& perf_history(core::JobId job) const;

  /// Weight migration (PBT exploit, DESIGN.md §13): the target job's record
  /// is reset and replaced by the donor's stats up to and including `epochs`
  /// (job_id rewritten; re-recorded through record_stat so dedup/contiguity
  /// invariants hold). The target's stored snapshots are dropped — the clone
  /// gets exactly one fresh snapshot minted by the caller.
  void adopt_history(core::JobId target, core::JobId donor, std::size_t epochs);

  void store_snapshot(ModelSnapshot snapshot);
  [[nodiscard]] std::optional<ModelSnapshot> latest_snapshot(core::JobId job) const;
  /// Every stored snapshot of a job, oldest first. Recovery walks this list
  /// newest-to-oldest when the latest image fails to decode.
  [[nodiscard]] const std::vector<ModelSnapshot>& snapshots(core::JobId job) const;

  /// Suspend overhead accounting (§6.2.3 study).
  void record_suspend_sample(core::SuspendSample sample);
  [[nodiscard]] const std::vector<core::SuspendSample>& suspend_samples() const noexcept {
    return suspend_samples_;
  }

 private:
  std::map<core::JobId, std::vector<AppStat>> stats_;
  std::map<core::JobId, std::vector<double>> perf_;
  /// Per-job epoch -> perf, the dedup/reorder buffer behind perf_.
  std::map<core::JobId, std::map<std::size_t, double>> by_epoch_;
  std::map<core::JobId, std::vector<ModelSnapshot>> snapshots_;
  std::vector<core::SuspendSample> suspend_samples_;
  static const std::vector<AppStat> kEmptyStats;
  static const std::vector<double> kEmptyPerf;
  static const std::vector<ModelSnapshot> kEmptySnapshots;
};

}  // namespace hyperdrive::cluster
