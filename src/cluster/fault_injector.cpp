#include "cluster/fault_injector.hpp"

#include "cluster/messaging.hpp"

namespace hyperdrive::cluster {

namespace {
bool profile_any(const MessageFaultProfile& p) {
  return p.drop_prob > 0.0 || p.duplicate_prob > 0.0 || p.delay_prob > 0.0;
}
}  // namespace

bool FaultPlan::any() const noexcept {
  if (profile_any(default_message_faults)) return true;
  for (const auto& [type, profile] : message_faults) {
    if (profile_any(profile)) return true;
  }
  return !crashes.empty() || snapshot_upload_fail_prob > 0.0 ||
         snapshot_corrupt_prob > 0.0;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t run_seed)
    : plan_(std::move(plan)),
      rng_(util::derive_seed(plan_.seed ^ run_seed, 0xFA17)) {}

const MessageFaultProfile& FaultInjector::profile(MessageType type) const {
  const auto it = plan_.message_faults.find(type);
  return it == plan_.message_faults.end() ? plan_.default_message_faults : it->second;
}

bool FaultInjector::should_drop(MessageType type) {
  const auto& p = profile(type);
  if (p.drop_prob <= 0.0) return false;
  const bool drop = rng_.bernoulli(p.drop_prob);
  if (drop) ++stats_.messages_dropped;
  return drop;
}

bool FaultInjector::should_duplicate(MessageType type) {
  const auto& p = profile(type);
  if (p.duplicate_prob <= 0.0) return false;
  const bool dup = rng_.bernoulli(p.duplicate_prob);
  if (dup) ++stats_.messages_duplicated;
  return dup;
}

util::SimTime FaultInjector::extra_delay(MessageType type) {
  const auto& p = profile(type);
  if (p.delay_prob <= 0.0 || !rng_.bernoulli(p.delay_prob)) return util::SimTime::zero();
  ++stats_.messages_delayed;
  return util::SimTime::seconds(rng_.exponential(1.0 / p.delay_mean_s));
}

bool FaultInjector::should_fail_upload() {
  if (plan_.snapshot_upload_fail_prob <= 0.0) return false;
  const bool fail = rng_.bernoulli(plan_.snapshot_upload_fail_prob);
  if (fail) ++stats_.snapshot_uploads_failed;
  return fail;
}

bool FaultInjector::should_corrupt_snapshot() {
  if (plan_.snapshot_corrupt_prob <= 0.0) return false;
  const bool corrupt = rng_.bernoulli(plan_.snapshot_corrupt_prob);
  if (corrupt) ++stats_.snapshots_corrupted;
  return corrupt;
}

void FaultInjector::corrupt(std::vector<std::uint8_t>& image) {
  if (image.empty()) return;
  const auto byte = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(image.size()) - 1));
  const auto bit = static_cast<int>(rng_.uniform_int(0, 7));
  image[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

}  // namespace hyperdrive::cluster
