#include "cluster/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "cluster/messaging.hpp"
#include "util/spec_parser.hpp"

namespace hyperdrive::cluster {

namespace {
bool profile_any(const MessageFaultProfile& p) {
  return p.drop_prob > 0.0 || p.duplicate_prob > 0.0 || p.delay_prob > 0.0;
}
}  // namespace

bool FaultPlan::any() const noexcept {
  if (profile_any(default_message_faults)) return true;
  for (const auto& [type, profile] : message_faults) {
    if (profile_any(profile)) return true;
  }
  return !crashes.empty() || !spot_preemptions.empty() || any_gray() ||
         snapshot_upload_fail_prob > 0.0 || snapshot_corrupt_prob > 0.0;
}

bool FaultPlan::any_gray() const noexcept {
  return !slowdowns.empty() || !hangs.empty();
}

bool FaultPlan::any_coordinator() const noexcept { return !coordinator_crashes.empty(); }

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t run_seed)
    : plan_(std::move(plan)),
      rng_(util::derive_seed(plan_.seed ^ run_seed, 0xFA17)) {}

const MessageFaultProfile& FaultInjector::profile(MessageType type) const {
  const auto it = plan_.message_faults.find(type);
  return it == plan_.message_faults.end() ? plan_.default_message_faults : it->second;
}

bool FaultInjector::should_drop(MessageType type) {
  const auto& p = profile(type);
  if (p.drop_prob <= 0.0) return false;
  const bool drop = rng_.bernoulli(p.drop_prob);
  if (drop) ++stats_.messages_dropped;
  return drop;
}

bool FaultInjector::should_duplicate(MessageType type) {
  const auto& p = profile(type);
  if (p.duplicate_prob <= 0.0) return false;
  const bool dup = rng_.bernoulli(p.duplicate_prob);
  if (dup) ++stats_.messages_duplicated;
  return dup;
}

util::SimTime FaultInjector::extra_delay(MessageType type) {
  const auto& p = profile(type);
  if (p.delay_prob <= 0.0 || !rng_.bernoulli(p.delay_prob)) return util::SimTime::zero();
  ++stats_.messages_delayed;
  return util::SimTime::seconds(rng_.exponential(1.0 / p.delay_mean_s));
}

bool FaultInjector::should_fail_upload() {
  if (plan_.snapshot_upload_fail_prob <= 0.0) return false;
  const bool fail = rng_.bernoulli(plan_.snapshot_upload_fail_prob);
  if (fail) ++stats_.snapshot_uploads_failed;
  return fail;
}

bool FaultInjector::should_corrupt_snapshot() {
  if (plan_.snapshot_corrupt_prob <= 0.0) return false;
  const bool corrupt = rng_.bernoulli(plan_.snapshot_corrupt_prob);
  if (corrupt) ++stats_.snapshots_corrupted;
  return corrupt;
}

void FaultInjector::corrupt(std::vector<std::uint8_t>& image) {
  if (image.empty()) return;
  const auto byte = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(image.size()) - 1));
  const auto bit = static_cast<int>(rng_.uniform_int(0, 7));
  image[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

double FaultInjector::slowdown_factor(MachineId machine, util::SimTime now) const {
  double factor = 1.0;
  for (const NodeSlowdownEvent& w : plan_.slowdowns) {
    if (w.machine != machine || w.factor == 1.0) continue;
    if (now < w.from || now >= w.until) continue;
    if (w.period > util::SimTime::zero()) {
      const double phase = std::fmod((now - w.from).to_seconds(), w.period.to_seconds());
      if (phase >= w.duty * w.period.to_seconds()) continue;
    }
    factor *= w.factor;
  }
  return factor;
}

bool FaultInjector::is_hung(MachineId machine, util::SimTime now) const {
  for (const HungJobEvent& h : plan_.hangs) {
    if (h.machine != machine) continue;
    if (now >= h.at && now < h.at + h.clear_after) return true;
  }
  return false;
}

util::SimTime FaultInjector::hang_stall(MachineId machine, util::SimTime start,
                                        util::SimTime duration) const {
  // Progress runs at rate 1 outside hang windows and 0 inside, so the epoch
  // completes at the earliest t with `duration` of un-hung time in [start, t).
  std::vector<const HungJobEvent*> windows;
  for (const HungJobEvent& h : plan_.hangs) {
    if (h.machine == machine) windows.push_back(&h);
  }
  if (windows.empty()) return util::SimTime::zero();
  std::sort(windows.begin(), windows.end(),
            [](const HungJobEvent* a, const HungJobEvent* b) { return a->at < b->at; });

  util::SimTime cursor = start;
  util::SimTime remaining = duration;
  for (const HungJobEvent* h : windows) {
    const util::SimTime end = h->at + h->clear_after;
    if (end <= cursor) continue;                 // window already past
    if (h->at >= cursor + remaining) break;      // epoch done before it opens
    if (h->at > cursor) remaining -= h->at - cursor;
    if (end == util::SimTime::infinity()) return util::SimTime::infinity();
    cursor = end;
  }
  const util::SimTime completion = cursor + remaining;
  return completion - (start + duration);
}

// --- fault-plan file format --------------------------------------------------
//
// One directive per line, '#' starts a comment, times in seconds with "inf"
// accepted where a duration may be unbounded. `*` as a message type names the
// default profile. See README.md "Fault-plan files".

namespace {

constexpr MessageType kDataTypes[] = {
    MessageType::StartJob,       MessageType::SuspendJob,
    MessageType::TerminateJob,   MessageType::ReportStat,
    MessageType::SnapshotUpload, MessageType::SnapshotDownload,
    MessageType::Ack,
};

MessageType parse_message_type(const std::string& token, const util::SpecParser& parser) {
  for (MessageType type : kDataTypes) {
    if (token == to_string(type)) return type;
  }
  parser.fail("unknown message type '" + token + "'");
}

void write_profile(std::ostream& out, const std::string& type,
                   const MessageFaultProfile& p) {
  if (p.drop_prob > 0.0) out << "drop " << type << ' ' << p.drop_prob << '\n';
  if (p.duplicate_prob > 0.0) out << "dup " << type << ' ' << p.duplicate_prob << '\n';
  if (p.delay_prob > 0.0) {
    out << "delay " << type << ' ' << p.delay_prob << ' ' << p.delay_mean_s << '\n';
  }
}

}  // namespace

FaultPlan load_fault_plan(std::istream& in) {
  FaultPlan plan;
  util::SpecParser parser(in, "fault plan");
  while (parser.next_line()) {
    const std::string& directive = parser.directive();
    if (directive == "seed") {
      plan.seed = static_cast<std::uint64_t>(parser.number("seed"));
    } else if (directive == "drop" || directive == "dup" || directive == "delay") {
      const std::string type_token = parser.word("message type");
      MessageFaultProfile* profile =
          type_token == "*"
              ? &plan.default_message_faults
              : &plan.message_faults[parse_message_type(type_token, parser)];
      if (directive == "drop") {
        profile->drop_prob = parser.number("probability");
      } else if (directive == "dup") {
        profile->duplicate_prob = parser.number("probability");
      } else {
        profile->delay_prob = parser.number("probability");
        profile->delay_mean_s = parser.number("mean delay");
      }
    } else if (directive == "crash") {
      NodeCrashEvent crash;
      crash.machine = static_cast<MachineId>(parser.number("machine"));
      crash.at = util::SimTime::seconds(parser.number("crash time"));
      if (const auto restart = parser.optional_number("restart delay")) {
        crash.restart_after = util::SimTime::seconds(*restart);
      }
      plan.crashes.push_back(crash);
    } else if (directive == "slowdown") {
      NodeSlowdownEvent slow;
      slow.machine = static_cast<MachineId>(parser.number("machine"));
      slow.from = util::SimTime::seconds(parser.number("window start"));
      slow.until = util::SimTime::seconds(parser.number("window end"));
      slow.factor = parser.number("factor");
      if (const auto period = parser.optional_number("flap period")) {
        slow.period = util::SimTime::seconds(*period);
        slow.duty = parser.number("duty");
      }
      plan.slowdowns.push_back(slow);
    } else if (directive == "hang") {
      HungJobEvent hang;
      hang.machine = static_cast<MachineId>(parser.number("machine"));
      hang.at = util::SimTime::seconds(parser.number("hang time"));
      if (const auto clear = parser.optional_number("clear delay")) {
        hang.clear_after = util::SimTime::seconds(*clear);
      }
      plan.hangs.push_back(hang);
    } else if (directive == "spot-preemption") {
      SpotPreemptionEvent preemption;
      preemption.machine = static_cast<MachineId>(parser.number("machine"));
      preemption.at = util::SimTime::seconds(parser.number("warning time"));
      if (const auto warning = parser.optional_number("warning window")) {
        preemption.warning = util::SimTime::seconds(*warning);
      }
      plan.spot_preemptions.push_back(preemption);
    } else if (directive == "coordinator-crash") {
      CoordinatorCrashEvent crash;
      crash.at = util::SimTime::seconds(parser.number("crash time"));
      plan.coordinator_crashes.push_back(crash);
    } else if (directive == "snapshot-fail") {
      plan.snapshot_upload_fail_prob = parser.number("probability");
    } else if (directive == "snapshot-corrupt") {
      plan.snapshot_corrupt_prob = parser.number("probability");
    } else {
      parser.fail("unknown directive '" + directive + "'");
    }
    parser.finish_line();
  }
  return plan;
}

void save_fault_plan(const FaultPlan& plan, std::ostream& out) {
  const auto precision = out.precision(17);
  out << "# HyperDrive fault plan\n";
  if (plan.seed != 0) out << "seed " << plan.seed << '\n';
  write_profile(out, "*", plan.default_message_faults);
  for (const auto& [type, profile] : plan.message_faults) {
    write_profile(out, std::string(to_string(type)), profile);
  }
  for (const NodeCrashEvent& crash : plan.crashes) {
    out << "crash " << crash.machine << ' ' << crash.at.to_seconds();
    if (crash.restart_after != util::SimTime::infinity()) {
      out << ' ' << crash.restart_after.to_seconds();
    }
    out << '\n';
  }
  for (const NodeSlowdownEvent& slow : plan.slowdowns) {
    out << "slowdown " << slow.machine << ' ' << slow.from.to_seconds() << ' ';
    util::write_spec_time(out, slow.until);
    out << ' ' << slow.factor;
    if (slow.period > util::SimTime::zero()) {
      out << ' ' << slow.period.to_seconds() << ' ' << slow.duty;
    }
    out << '\n';
  }
  for (const HungJobEvent& hang : plan.hangs) {
    out << "hang " << hang.machine << ' ' << hang.at.to_seconds();
    if (hang.clear_after != util::SimTime::infinity()) {
      out << ' ' << hang.clear_after.to_seconds();
    }
    out << '\n';
  }
  for (const SpotPreemptionEvent& preemption : plan.spot_preemptions) {
    out << "spot-preemption " << preemption.machine << ' ' << preemption.at.to_seconds()
        << ' ' << preemption.warning.to_seconds() << '\n';
  }
  for (const CoordinatorCrashEvent& crash : plan.coordinator_crashes) {
    out << "coordinator-crash " << crash.at.to_seconds() << '\n';
  }
  if (plan.snapshot_upload_fail_prob > 0.0) {
    out << "snapshot-fail " << plan.snapshot_upload_fail_prob << '\n';
  }
  if (plan.snapshot_corrupt_prob > 0.0) {
    out << "snapshot-corrupt " << plan.snapshot_corrupt_prob << '\n';
  }
  out.precision(precision);
}

}  // namespace hyperdrive::cluster
