// Development tool: run one CIFAR experiment per policy on both substrates
// and print time-to-target, to sanity-check the whole pipeline.
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"

using namespace hyperdrive;

static void run_workload(const workload::WorkloadModel& model, std::size_t machines,
                         std::uint64_t seed) {
  auto trace = workload::generate_trace(model, 100, seed);
  while (!trace.target_reachable()) {
    trace = workload::generate_trace(model, 100, ++seed);
  }
  std::printf("== %s (seed %llu, reachable=%d) ==\n", trace.workload_name.c_str(),
              static_cast<unsigned long long>(seed), trace.target_reachable());

  for (const auto kind : {core::PolicyKind::Default, core::PolicyKind::Bandit,
                          core::PolicyKind::EarlyTerm, core::PolicyKind::Pop}) {
    core::PolicySpec spec;
    spec.kind = kind;
    const auto predictor = core::make_default_predictor(seed);
    spec.earlyterm.predictor = predictor;
    spec.pop.predictor = predictor;
    spec.pop.tmax = util::SimTime::hours(48);

    core::RunnerOptions options;
    options.machines = machines;
    options.max_experiment_time = util::SimTime::hours(48);

    for (const auto substrate : {core::Substrate::TraceReplay, core::Substrate::Cluster}) {
      options.substrate = substrate;
      options.overheads = trace.workload_name == "cifar10"
                              ? cluster::cifar_overhead_model()
                              : cluster::lunar_criu_overhead_model();
      const auto result = core::run_experiment(trace, spec, options);
      std::printf("  %-10s %-7s reached=%d t=%8.2f min  susp=%zu term=%zu started=%zu best=%.3f\n",
                  std::string(core::to_string(kind)).c_str(),
                  substrate == core::Substrate::TraceReplay ? "replay" : "cluster",
                  result.reached_target, result.time_to_target.to_minutes(),
                  result.suspends, result.terminations, result.jobs_started,
                  result.best_perf);
    }
  }
}

int main() {
  run_workload(workload::CifarWorkloadModel{}, 4, 7);
  run_workload(workload::LunarWorkloadModel{}, 15, 11);
  return 0;
}
