#!/usr/bin/env bash
# Configure, build and run the full test suite under sanitizers.
#
#   tools/run_sanitized_tests.sh [sanitizers] [build-dir]
#
#   sanitizers  comma-separated -fsanitize= list (default: address,undefined)
#   build-dir   out-of-source build directory (default: build-san)
#
# The suite must pass clean: any sanitizer report is turned into a hard
# failure via halt_on_error / exitcode options.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
BUILD_DIR="${2:-build-san}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1:abort_on_error=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

echo ">>> configuring ${BUILD_DIR} with HD_SANITIZE=${SANITIZERS}"
cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHD_SANITIZE="${SANITIZERS}"

echo ">>> building"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo ">>> running ctest under ${SANITIZERS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo ">>> sanitized test run passed (${SANITIZERS})"
