#!/usr/bin/env bash
# Configure, build and run the full test suite under sanitizers.
#
#   tools/run_sanitized_tests.sh [sanitizers] [build-dir] [ctest-regex]
#
#   sanitizers  comma-separated -fsanitize= list (default: address,undefined)
#               "thread" selects ThreadSanitizer; it is incompatible with
#               address/leak sanitizers, so run it as a separate mode.
#   build-dir   out-of-source build directory (default: build-san, or
#               build-san-thread for the thread mode — the object files are
#               ABI-incompatible across modes, so each gets its own tree)
#   ctest-regex optional ctest -R filter, e.g. the concurrency-focused subset
#               'ThreadPool|CachingPredictor|Sweep' for the CI thread mode
#
# The three supported modes (see README "Sanitized test runs"):
#   tools/run_sanitized_tests.sh                      # address,undefined
#   tools/run_sanitized_tests.sh thread               # data races / TSan
#   tools/run_sanitized_tests.sh undefined            # UBSan alone (fastest)
#
# The suite must pass clean: any sanitizer report is turned into a hard
# failure via halt_on_error / exitcode options.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
if [[ "${SANITIZERS}" == *thread* && "${SANITIZERS}" == *address* ]]; then
  echo "error: thread and address sanitizers cannot be combined" >&2
  exit 2
fi
DEFAULT_BUILD_DIR="build-san"
if [[ "${SANITIZERS}" == *thread* ]]; then
  DEFAULT_BUILD_DIR="build-san-thread"
fi
BUILD_DIR="${2:-${DEFAULT_BUILD_DIR}}"
TEST_REGEX="${3:-}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1:abort_on_error=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
# second_deadlock_stack costs little and makes lock-order reports readable.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

echo ">>> configuring ${BUILD_DIR} with HD_SANITIZE=${SANITIZERS}"
cmake -B "${BUILD_DIR}" -S "${SOURCE_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHD_SANITIZE="${SANITIZERS}"

echo ">>> building"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo ">>> running ctest under ${SANITIZERS}"
CTEST_ARGS=(--test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)")
if [[ -n "${TEST_REGEX}" ]]; then
  CTEST_ARGS+=(-R "${TEST_REGEX}")
fi
ctest "${CTEST_ARGS[@]}"

echo ">>> sanitized test run passed (${SANITIZERS})"
