// Development tool: per-trace policy comparison to understand variance of
// the fixed-configuration experiments across base-trace draws. Shares the
// cli::Options flag table with hyperdrive_cli, so --help is generated and
// the defaults are visible in one place.
#include <cstdio>
#include <vector>

#include "core/policy_registry.hpp"
#include "core/sweep_engine.hpp"
#include "util/cli_options.hpp"
#include "util/log.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/trace_tools.hpp"

using namespace hyperdrive;

namespace {

struct ToolConfig {
  std::size_t traces = 8;
  std::size_t configs = 100;
  /// Machine counts to sweep (repeatable flag; defaults to 5 and 25).
  std::vector<std::size_t> machines;
  /// Registry policy names to compare (repeatable flag; defaults to the
  /// paper's four).
  std::vector<std::string> policies;
};

void sweep(const workload::WorkloadModel& model, const ToolConfig& config,
           std::size_t machines) {
  std::printf("== %s (%zu machines) ==\n", std::string(model.name()).c_str(), machines);
  std::printf("trace |");
  for (const auto& name : config.policies) std::printf(" %9s", name.c_str());
  std::printf(" | winner_idx\n");

  std::vector<workload::Trace> traces;
  std::vector<std::string> trace_labels;
  for (std::uint64_t t = 0; t < config.traces; ++t) {
    traces.push_back(
        workload::suitable_trace(model, config.configs, 1200 + t * 37, machines));
    trace_labels.push_back(std::to_string(t));
  }

  core::SweepSpec spec;
  spec.name = "trace_sweep";
  const auto trace_ax = spec.add_axis("trace", trace_labels);
  const auto policy_ax = spec.add_policy_axis(config.policies);
  spec.trace = [&](const core::SweepCell& cell) { return traces[cell.at(trace_ax)]; };
  spec.policy = [&](const core::SweepCell& cell) {
    return core::make_standard_policy(config.policies[cell.at(policy_ax)],
                                      cell.at(trace_ax));
  };
  spec.options = [&](const core::SweepCell&) {
    core::RunnerOptions options;
    options.machines = machines;
    options.max_experiment_time = util::SimTime::hours(96);
    return options;
  };

  const auto table = core::run_sweep(spec);

  for (std::size_t t = 0; t < traces.size(); ++t) {
    std::printf("%5llu |", static_cast<unsigned long long>(t));
    for (const auto* row : table.where("trace", trace_labels[t])) {
      std::printf(" %9.0f", row->result.reached_target
                                ? row->result.time_to_target.to_minutes()
                                : -1.0);
    }
    std::printf(" | %zu\n", workload::first_winner_index(traces[t]));
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::init_log_level_from_env();  // HD_LOG; --log-level overrides
  ToolConfig config;
  cli::Options options("trace_sweep",
                       "per-trace policy comparison across base-trace draws");
  options.section("sweep (defaults in brackets)");
  options.bind("--traces", "N", "base-trace draws per table  [8]", config.traces);
  options.bind("--configs", "N", "configurations per trace  [100]", config.configs);
  options.add("--machines", "N",
              "machine count to sweep (repeatable)  [5 and 25]",
              [&config](const std::string& text) {
                std::uint64_t n = 0;
                if (!cli::Options::parse_uint(text, n) || n == 0) return false;
                config.machines.push_back(static_cast<std::size_t>(n));
                return true;
              });
  options.add("--policy", "NAME",
              "registry policy to compare (repeatable): " +
                  core::PolicyRegistry::instance().name_list('|') +
                  "  [pop bandit earlyterm default]",
              [&config](const std::string& name) {
                if (!core::PolicyRegistry::instance().has(name)) return false;
                config.policies.push_back(name);
                return true;
              });
  options.add("--log-level", "LEVEL",
              "debug|info|warn|error|off (overrides HD_LOG)  [warn]",
              [](const std::string& level) {
                util::set_log_level(util::log_level_from_string(level));
                return true;
              });
  if (!options.parse(argc, argv)) return 2;
  if (config.machines.empty()) config.machines = {5, 25};
  if (config.policies.empty()) config.policies = {"pop", "bandit", "earlyterm", "default"};

  for (const std::size_t machines : config.machines) {
    sweep(workload::CifarWorkloadModel{}, config, machines);
  }
  return 0;
}
