// Development tool: per-trace policy comparison to understand variance of
// the fixed-configuration experiments across base-trace draws.
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"

using namespace hyperdrive;

static workload::Trace suitable(const workload::WorkloadModel& model, std::uint64_t seed,
                                std::size_t machines) {
  for (;; ++seed) {
    auto trace = workload::generate_trace(model, 100, seed);
    if (!trace.target_reachable()) continue;
    std::size_t first = trace.jobs.size();
    for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
      if (trace.jobs[i].curve.first_epoch_reaching(trace.target_performance) != 0) {
        first = i;
        break;
      }
    }
    if (first < machines) continue;
    return trace;
  }
}

static void sweep(const workload::WorkloadModel& model, std::size_t machines) {
  std::printf("== %s (%zu machines) ==\n", std::string(model.name()).c_str(), machines);
  std::printf("trace |   pop  bandit earlyterm default | winner_idx\n");
  for (std::uint64_t t = 0; t < 8; ++t) {
    const auto trace = suitable(model, 1200 + t * 37, machines);
    std::size_t first = 0;
    for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
      if (trace.jobs[i].curve.first_epoch_reaching(trace.target_performance) != 0) {
        first = i;
        break;
      }
    }
    std::printf("%5llu |", static_cast<unsigned long long>(t));
    for (const auto kind :
         {core::PolicyKind::Pop, core::PolicyKind::Bandit, core::PolicyKind::EarlyTerm,
          core::PolicyKind::Default}) {
      core::PolicySpec spec;
      spec.kind = kind;
      const auto pred = core::make_default_predictor(t);
      spec.pop.predictor = pred;
      spec.pop.tmax = util::SimTime::hours(48);
      spec.earlyterm.predictor = pred;
      core::RunnerOptions options;
      options.machines = machines;
      options.max_experiment_time = util::SimTime::hours(96);
      const auto r = core::run_experiment(trace, spec, options);
      std::printf(" %6.0f", r.reached_target ? r.time_to_target.to_minutes() : -1.0);
    }
    std::printf(" | %zu\n", first);
  }
}

int main() {
  sweep(workload::CifarWorkloadModel{}, 5);
  sweep(workload::CifarWorkloadModel{}, 25);
  
  return 0;
}
