// Development tool: per-trace policy comparison to understand variance of
// the fixed-configuration experiments across base-trace draws.
#include <cstdio>

#include "core/sweep_engine.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/trace_tools.hpp"

using namespace hyperdrive;

static void sweep(const workload::WorkloadModel& model, std::size_t machines) {
  std::printf("== %s (%zu machines) ==\n", std::string(model.name()).c_str(), machines);
  std::printf("trace |   pop  bandit earlyterm default | winner_idx\n");

  std::vector<workload::Trace> traces;
  std::vector<std::string> trace_labels;
  for (std::uint64_t t = 0; t < 8; ++t) {
    traces.push_back(workload::suitable_trace(model, 100, 1200 + t * 37, machines));
    trace_labels.push_back(std::to_string(t));
  }

  core::SweepSpec spec;
  spec.name = "trace_sweep";
  const auto trace_ax = spec.add_axis("trace", trace_labels);
  const auto policy_ax = spec.add_policy_axis(
      {core::PolicyKind::Pop, core::PolicyKind::Bandit, core::PolicyKind::EarlyTerm,
       core::PolicyKind::Default});
  spec.trace = [&](const core::SweepCell& cell) { return traces[cell.at(trace_ax)]; };
  spec.policy = [&](const core::SweepCell& cell) {
    const auto kinds = std::vector<core::PolicyKind>{
        core::PolicyKind::Pop, core::PolicyKind::Bandit, core::PolicyKind::EarlyTerm,
        core::PolicyKind::Default};
    return core::make_policy(
        core::standard_policy_spec(kinds[cell.at(policy_ax)], cell.at(trace_ax)));
  };
  spec.options = [&](const core::SweepCell&) {
    core::RunnerOptions options;
    options.machines = machines;
    options.max_experiment_time = util::SimTime::hours(96);
    return options;
  };

  const auto table = core::run_sweep(spec);

  for (std::size_t t = 0; t < traces.size(); ++t) {
    std::printf("%5llu |", static_cast<unsigned long long>(t));
    for (const auto* row : table.where("trace", trace_labels[t])) {
      std::printf(" %6.0f", row->result.reached_target
                                ? row->result.time_to_target.to_minutes()
                                : -1.0);
    }
    std::printf(" | %zu\n", workload::first_winner_index(traces[t]));
  }
}

int main() {
  sweep(workload::CifarWorkloadModel{}, 5);
  sweep(workload::CifarWorkloadModel{}, 25);

  return 0;
}
