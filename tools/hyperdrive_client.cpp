// hyperdrive_client — command-line client of hyperdrive_serve (DESIGN.md
// §14). Thin wrapper over svc::Client: one command per invocation, results on
// stdout, diagnostics on stderr.
//
//   hyperdrive_client --port-file p submit --tenant alice --spec prod.study
//   hyperdrive_client --port 7777 status 3
//   hyperdrive_client --port 7777 watch 1 2 3
//   hyperdrive_client --port 7777 result 3 --out result.csv
//   hyperdrive_client --port 7777 shutdown
//
// Exit codes: 0 success, 2 usage/connection error, 3 the server said no
// (rejected submission, unknown id, cancel refused).
#include <time.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "svc/client.hpp"

using namespace hyperdrive;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: hyperdrive_client [connection flags] <command> [args]\n"
               "\n"
               "connection flags:\n"
               "  --host ADDR        server address  [127.0.0.1]\n"
               "  --port N           server port\n"
               "  --port-file FILE   read the port from FILE (written by\n"
               "                     hyperdrive_serve --port-file)\n"
               "  --timeout MS       per-call I/O timeout  [30000]\n"
               "  --retries N        connect attempts  [10]\n"
               "\n"
               "commands:\n"
               "  submit --tenant T --spec FILE   submit the study spec in FILE\n"
               "  cancel ID                       cancel a submission\n"
               "  status ID                       one submission's status row\n"
               "  list [--tenant T]               all (or one tenant's) submissions\n"
               "  watch ID...                     poll until every ID is terminal\n"
               "  result ID [--out FILE]          fetch the result CSV\n"
               "  timeline ID [--out FILE]        fetch the timeline CSV\n"
               "  metrics [--out FILE]            fetch the server metrics CSV\n"
               "  shutdown                        ask the server to exit\n");
}

void print_info(const svc::StudyInfo& info) {
  std::printf("id=%llu tenant=%s study=%s state=%s best=%.6f reached=%d ttt=%.6f "
              "total=%.6f%s%s\n",
              static_cast<unsigned long long>(info.id), info.tenant.c_str(),
              info.study_name.c_str(), svc::to_string(info.state), info.best_perf,
              info.reached_target ? 1 : 0, info.time_to_target_s, info.total_time_s,
              info.detail.empty() ? "" : " detail=", info.detail.c_str());
}

bool write_output(const std::string& out_file, const std::string& bytes) {
  if (out_file.empty()) {
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    return true;
  }
  std::ofstream out(out_file, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_file.c_str());
    return false;
  }
  out << bytes;
  return true;
}

bool parse_id(const char* text, std::uint64_t& id) {
  char* end = nullptr;
  id = std::strtoull(text, &end, 10);
  return end != nullptr && *end == '\0' && end != text;
}

bool terminal(svc::StudyState s) {
  return s == svc::StudyState::Finished || s == svc::StudyState::Cancelled ||
         s == svc::StudyState::Failed;
}

void sleep_ms(int ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  (void)::nanosleep(&ts, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  svc::ClientOptions copts;
  std::string port_file;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--host") {
      copts.host = need("--host");
    } else if (arg == "--port") {
      copts.port = static_cast<std::uint16_t>(std::strtoul(need("--port"), nullptr, 10));
    } else if (arg == "--port-file") {
      port_file = need("--port-file");
    } else if (arg == "--timeout") {
      copts.io_timeout_ms = std::atoi(need("--timeout"));
    } else if (arg == "--retries") {
      copts.retries = std::atoi(need("--retries"));
    } else {
      break;  // first non-flag token is the command
    }
  }
  if (i >= argc) {
    usage(stderr);
    return 2;
  }
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    unsigned port = 0;
    if (!(in >> port) || port == 0 || port > 65535) {
      std::fprintf(stderr, "cannot read a port from '%s'\n", port_file.c_str());
      return 2;
    }
    copts.port = static_cast<std::uint16_t>(port);
  }
  if (copts.port == 0) {
    std::fprintf(stderr, "--port or --port-file is required\n");
    return 2;
  }
  const std::string command = argv[i++];
  std::vector<std::string> rest(argv + i, argv + argc);

  try {
    svc::Client client(copts);

    if (command == "submit") {
      std::string tenant;
      std::string spec_file;
      for (std::size_t k = 0; k < rest.size(); ++k) {
        if (rest[k] == "--tenant" && k + 1 < rest.size()) tenant = rest[++k];
        else if (rest[k] == "--spec" && k + 1 < rest.size()) spec_file = rest[++k];
        else {
          std::fprintf(stderr, "submit: unexpected argument '%s'\n", rest[k].c_str());
          return 2;
        }
      }
      if (tenant.empty() || spec_file.empty()) {
        std::fprintf(stderr, "submit needs --tenant and --spec\n");
        return 2;
      }
      std::ifstream in(spec_file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", spec_file.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      const svc::Message reply = client.submit(tenant, text.str());
      if (reply.type == svc::MsgType::Rejected) {
        std::printf("rejected: %s\n", reply.text.c_str());
        return 3;
      }
      if (reply.type != svc::MsgType::Submitted) {
        std::fprintf(stderr, "unexpected reply: %s\n", reply.text.c_str());
        return 2;
      }
      std::printf("submitted id=%llu state=%s",
                  static_cast<unsigned long long>(reply.id), svc::to_string(reply.state));
      if (reply.state == svc::StudyState::Queued) {
        std::printf(" position=%u", reply.position);
      }
      std::printf("\n");
      return 0;
    }

    if (command == "cancel" || command == "status" || command == "result" ||
        command == "timeline") {
      if (rest.empty()) {
        std::fprintf(stderr, "%s needs an ID\n", command.c_str());
        return 2;
      }
      std::uint64_t id = 0;
      if (!parse_id(rest[0].c_str(), id)) {
        std::fprintf(stderr, "bad id '%s'\n", rest[0].c_str());
        return 2;
      }
      std::string out_file;
      for (std::size_t k = 1; k < rest.size(); ++k) {
        if (rest[k] == "--out" && k + 1 < rest.size()) out_file = rest[++k];
        else {
          std::fprintf(stderr, "%s: unexpected argument '%s'\n", command.c_str(),
                       rest[k].c_str());
          return 2;
        }
      }
      if (command == "cancel") {
        const svc::Message reply = client.cancel(id);
        if (reply.type != svc::MsgType::Ok) {
          std::fprintf(stderr, "cancel refused: %s\n", reply.text.c_str());
          return 3;
        }
        std::printf("cancelled id=%llu\n", static_cast<unsigned long long>(id));
        return 0;
      }
      if (command == "status") {
        const svc::Message reply = client.status(id);
        if (reply.type != svc::MsgType::StatusInfo) {
          std::fprintf(stderr, "%s\n", reply.text.c_str());
          return 3;
        }
        print_info(reply.info);
        return 0;
      }
      const svc::ArtifactKind kind = command == "result" ? svc::ArtifactKind::ResultCsv
                                                         : svc::ArtifactKind::TimelineCsv;
      const svc::Message reply = client.fetch(id, kind);
      if (reply.type != svc::MsgType::Artifact) {
        std::fprintf(stderr, "%s\n", reply.text.c_str());
        return 3;
      }
      return write_output(out_file, reply.text) ? 0 : 2;
    }

    if (command == "list") {
      std::string tenant;
      for (std::size_t k = 0; k < rest.size(); ++k) {
        if (rest[k] == "--tenant" && k + 1 < rest.size()) tenant = rest[++k];
        else {
          std::fprintf(stderr, "list: unexpected argument '%s'\n", rest[k].c_str());
          return 2;
        }
      }
      const svc::Message reply = client.list(tenant);
      if (reply.type != svc::MsgType::ListResult) {
        std::fprintf(stderr, "%s\n", reply.text.c_str());
        return 2;
      }
      for (const svc::StudyInfo& info : reply.studies) print_info(info);
      return 0;
    }

    if (command == "watch") {
      std::vector<std::uint64_t> ids;
      int watch_timeout_s = 300;
      for (std::size_t k = 0; k < rest.size(); ++k) {
        if (rest[k] == "--watch-timeout" && k + 1 < rest.size()) {
          watch_timeout_s = std::atoi(rest[++k].c_str());
          continue;
        }
        std::uint64_t id = 0;
        if (!parse_id(rest[k].c_str(), id)) {
          std::fprintf(stderr, "bad id '%s'\n", rest[k].c_str());
          return 2;
        }
        ids.push_back(id);
      }
      if (ids.empty()) {
        std::fprintf(stderr, "watch needs at least one ID\n");
        return 2;
      }
      bool all_ok = true;
      for (int waited_ms = 0;;) {
        std::vector<svc::StudyInfo> rows;
        bool all_terminal = true;
        for (const std::uint64_t id : ids) {
          const svc::Message reply = client.status(id);
          if (reply.type != svc::MsgType::StatusInfo) {
            std::fprintf(stderr, "%s\n", reply.text.c_str());
            return 3;
          }
          rows.push_back(reply.info);
          if (!terminal(reply.info.state)) all_terminal = false;
        }
        if (all_terminal) {
          for (const svc::StudyInfo& info : rows) {
            print_info(info);
            if (info.state == svc::StudyState::Failed) all_ok = false;
          }
          break;
        }
        if (waited_ms >= watch_timeout_s * 1000) {
          std::fprintf(stderr, "watch: timed out after %d s\n", watch_timeout_s);
          return 2;
        }
        sleep_ms(200);
        waited_ms += 200;
      }
      return all_ok ? 0 : 3;
    }

    if (command == "metrics") {
      std::string out_file;
      for (std::size_t k = 0; k < rest.size(); ++k) {
        if (rest[k] == "--out" && k + 1 < rest.size()) out_file = rest[++k];
        else {
          std::fprintf(stderr, "metrics: unexpected argument '%s'\n", rest[k].c_str());
          return 2;
        }
      }
      const svc::Message reply = client.metrics();
      if (reply.type != svc::MsgType::MetricsText) {
        std::fprintf(stderr, "%s\n", reply.text.c_str());
        return 2;
      }
      return write_output(out_file, reply.text) ? 0 : 2;
    }

    if (command == "shutdown") {
      const svc::Message reply = client.shutdown();
      if (reply.type != svc::MsgType::Ok) {
        std::fprintf(stderr, "%s\n", reply.text.c_str());
        return 2;
      }
      std::printf("server shutting down\n");
      return 0;
    }

    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    usage(stderr);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hyperdrive_client: %s\n", e.what());
    return 2;
  }
}
