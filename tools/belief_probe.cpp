// Development tool: confidence ranking sanity — for one trace, compute the
// POP confidence (P(reach target within budget)) from each job's first-
// boundary prefix and compare with the job's true final performance.
#include <algorithm>
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"

using namespace hyperdrive;

int main() {
  workload::CifarWorkloadModel model;
  auto trace = workload::generate_trace(model, 100, 1348);
  while (!trace.target_reachable()) {
    trace = workload::generate_trace(model, 100, 1349);
  }
  const auto predictor = core::make_default_predictor(0);

  struct Row {
    std::uint64_t id;
    double p10;     // prob reached by 120 given 10 epochs
    double final_perf;
    double at10;
  };
  std::vector<Row> rows;
  for (const auto& job : trace.jobs) {
    const std::vector<double> prefix(job.curve.perf.begin(), job.curve.perf.begin() + 10);
    if (prefix.back() <= 0.15) continue;  // killed anyway
    std::vector<double> future;
    for (double e = 11; e <= 120; ++e) future.push_back(e);
    const auto pred = predictor->predict(prefix, future, 120.0);
    rows.push_back({job.job_id, pred.prob_reached_by(future.size() - 1, 0.77),
                    job.curve.final_perf(), prefix.back()});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.p10 > b.p10; });
  std::printf("  id   p(reach)  acc@10  final\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(15, rows.size()); ++i) {
    std::printf("%4llu   %.3f     %.3f   %.3f\n",
                static_cast<unsigned long long>(rows[i].id), rows[i].p10, rows[i].at10,
                rows[i].final_perf);
  }

  // Rotation-churn hypothesis: POP with and without opportunistic rotation.
  for (const bool rotate : {true, false}) {
    core::PolicySpec spec;
    spec.kind = core::PolicyKind::Pop;
    spec.pop.predictor = predictor;
    spec.pop.tmax = util::SimTime::hours(48);
    spec.pop.rotate_opportunistic = rotate;
    core::RunnerOptions options;
    options.machines = 5;
    options.max_experiment_time = util::SimTime::hours(96);
    const auto r = core::run_experiment(trace, spec, options);
    std::printf("pop rotate=%d: t=%.0f min suspends=%zu terminations=%zu winner=%llu\n",
                rotate, r.time_to_target.to_minutes(), r.suspends, r.terminations,
                static_cast<unsigned long long>(r.winning_job));
  }
  {
    core::PolicySpec spec;
    spec.kind = core::PolicyKind::Bandit;
    core::RunnerOptions options;
    options.machines = 5;
    options.max_experiment_time = util::SimTime::hours(96);
    const auto r = core::run_experiment(trace, spec, options);
    std::printf("bandit: t=%.0f min winner=%llu\n", r.time_to_target.to_minutes(),
                static_cast<unsigned long long>(r.winning_job));
  }
  return 0;
}
