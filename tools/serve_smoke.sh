#!/usr/bin/env bash
# End-to-end service smoke (DESIGN.md §14, CI "serve-smoke" job): run
# hyperdrive_serve through its whole durability story — submit studies from
# several tenants, SIGKILL the server mid-flight, restart it, and
# byte-compare every resumed study's result and timeline CSVs against batch
# mode (hyperdrive_cli) at the same checkpoint cadence.
#
#   tools/serve_smoke.sh [build-dir] [work-dir]
#
#   build-dir   directory holding cli/hyperdrive_serve, cli/hyperdrive_cli
#               and tools/hyperdrive_client (default: build)
#   work-dir    scratch directory (default: a fresh mktemp -d, removed on exit)
#
# Three phases make the crash deterministic:
#   1. a gate incarnation (--max-running 0) journals every submission without
#      running any, then shuts down cleanly — the durable queue is now fixed
#      regardless of submission timing;
#   2. a doomed incarnation (--max-running 1 --kill-after-checkpoints 3)
#      resumes the queue one study at a time and dies by SIGKILL after the
#      3rd durable checkpoint write;
#   3. a final incarnation resumes everything, finishes all studies, and
#      serves the artifacts for the byte-comparison.
#
# Exit 0 only if: the doomed server actually died by SIGKILL (137), left
# checkpoint frames behind, the final server resumed every submission, and
# all artifacts are byte-identical to the batch references.
set -euo pipefail

BUILD="${1:-build}"
SERVE="${BUILD}/cli/hyperdrive_serve"
CLI="${BUILD}/cli/hyperdrive_cli"
CLIENT="${BUILD}/tools/hyperdrive_client"
for bin in "${SERVE}" "${CLI}" "${CLIENT}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found or not executable (build first)" >&2
    exit 2
  fi
done
SERVE="$(cd "$(dirname "${SERVE}")" && pwd)/$(basename "${SERVE}")"
CLI="$(cd "$(dirname "${CLI}")" && pwd)/$(basename "${CLI}")"
CLIENT="$(cd "$(dirname "${CLIENT}")" && pwd)/$(basename "${CLIENT}")"

CLEANUP=0
if [[ $# -ge 2 ]]; then
  WORK="$2"
  mkdir -p "${WORK}"
else
  WORK="$(mktemp -d)"
  CLEANUP=1
fi
SERVER_PID=""
trap '[[ -n "${SERVER_PID}" ]] && kill -9 "${SERVER_PID}" 2>/dev/null;
      [[ ${CLEANUP} -eq 1 ]] && rm -rf "${WORK}"' EXIT
cd "${WORK}"

# The service fixes machines/seed server-side; batch references must match.
MACHINES=6
SEED=5
EVERY=300

cat > alpha.study <<'EOF'
study alpha
workload cifar10
policy pop
configs 12
seed 7
EOF
cat > beta.study <<'EOF'
study beta
workload ptb_lstm
policy bandit
configs 10
seed 9
EOF
cat > gamma.study <<'EOF'
study gamma
workload cifar10
policy hyperband
configs 8
seed 11
EOF

echo ">>> batch references (hyperdrive_cli, same machines/seed/cadence)"
for s in alpha beta gamma; do
  "${CLI}" --study "${s}.study" --machines ${MACHINES} --seed ${SEED} \
    --checkpoint-out "ref-ckpt-${s}" --checkpoint-every ${EVERY} \
    --csv "ref-${s}.csv" --trace-out "ref-${s}-trace.csv" > "ref-${s}.log"
done

spawn_server() {  # spawn_server <label> <extra flags...>; sets SERVER_PID
  local label="$1"
  shift
  rm -f port
  "${SERVE}" --state-dir state --port 0 --port-file port \
    --machines ${MACHINES} --seed ${SEED} --checkpoint-every ${EVERY} \
    --arbitration fair "$@" > "server-${label}.log" 2>&1 &
  SERVER_PID=$!
}

start_server() {  # spawn_server + wait for the port file; sets PORT
  spawn_server "$@"
  for _ in $(seq 1 100); do
    [[ -s port ]] && break
    sleep 0.1
  done
  [[ -s port ]] || { echo "error: server never wrote its port file" >&2; exit 1; }
  PORT="$(cat port)"
}

echo ">>> phase 1: gate server (--max-running 0) journals 3 submissions, 2 tenants"
start_server gate --max-running 0
"${CLIENT}" --port "${PORT}" submit --tenant alice --spec alpha.study
"${CLIENT}" --port "${PORT}" submit --tenant alice --spec beta.study
"${CLIENT}" --port "${PORT}" submit --tenant bob --spec gamma.study
"${CLIENT}" --port "${PORT}" list
"${CLIENT}" --port "${PORT}" shutdown
wait "${SERVER_PID}"
SERVER_PID=""
for id in 1 2 3; do
  [[ -f "state/sub-${id}/spec.study" ]] || {
    echo "error: submission ${id} was not journaled" >&2; exit 1; }
done
echo "    3 submissions journaled durably"

echo ">>> phase 2: doomed server (--max-running 1, SIGKILL after 3 checkpoints)"
# No port wait here: resume starts running submission 1 inside the service
# constructor, so the SIGKILL can land before the listener even comes up.
spawn_server doomed --max-running 1 --kill-after-checkpoints 3
set +e
wait "${SERVER_PID}"
CRASH_EXIT=$?
set -e
SERVER_PID=""
if [[ ${CRASH_EXIT} -ne 137 ]]; then
  echo "error: expected the server to die by SIGKILL (137), got ${CRASH_EXIT}" >&2
  exit 1
fi
FRAMES=$(ls state/sub-1/ckpt/ckpt-*.hdck 2>/dev/null | wc -l)
if [[ ${FRAMES} -lt 3 ]]; then
  echo "error: expected >= 3 durable frames after the kill, found ${FRAMES}" >&2
  exit 1
fi
echo "    died by SIGKILL with ${FRAMES} frames on disk for submission 1"

echo ">>> phase 3: resume server finishes everything"
start_server final --max-running 2
"${CLIENT}" --port "${PORT}" watch 1 2 3 --watch-timeout 300
for id in 1 2 3; do
  "${CLIENT}" --port "${PORT}" result   ${id} --out "got-${id}.csv"
  "${CLIENT}" --port "${PORT}" timeline ${id} --out "got-${id}-trace.csv"
done
"${CLIENT}" --port "${PORT}" metrics --out metrics.csv
"${CLIENT}" --port "${PORT}" shutdown
wait "${SERVER_PID}"
SERVER_PID=""

echo ">>> comparing artifacts byte-for-byte against batch mode"
cmp ref-alpha.csv got-1.csv
cmp ref-alpha-trace.csv got-1-trace.csv
cmp ref-beta.csv got-2.csv
cmp ref-beta-trace.csv got-2-trace.csv
cmp ref-gamma.csv got-3.csv
cmp ref-gamma-trace.csv got-3-trace.csv
grep -q "^svc.submissions,counter," metrics.csv || {
  echo "error: metrics snapshot is missing the svc.* block" >&2; exit 1; }

echo ">>> serve smoke passed (all 3 studies byte-identical to batch mode)"
