#!/usr/bin/env bash
# End-to-end coordinator crash-resume smoke (DESIGN.md §12, CI "crash-resume"
# job): SIGKILL hyperdrive_cli mid-run via --kill-after-checkpoints, resume
# the dead run out-of-process with --resume-from, and byte-compare the
# resumed run's multi-study CSV and event timeline against an uninterrupted
# reference at the same checkpoint cadence.
#
#   tools/crash_resume_smoke.sh [cli-binary] [work-dir]
#
#   cli-binary  path to hyperdrive_cli (default: build/cli/hyperdrive_cli)
#   work-dir    scratch directory (default: a fresh mktemp -d, removed on exit)
#
# Exit 0 only if: the killed run actually died by SIGKILL (exit 137), left
# valid checkpoint frames behind, the resume verified its replay, and both
# artifacts are byte-identical to the reference.
set -euo pipefail

CLI="${1:-build/cli/hyperdrive_cli}"
if [[ ! -x "${CLI}" ]]; then
  echo "error: ${CLI} not found or not executable (build first)" >&2
  exit 2
fi
CLI="$(cd "$(dirname "${CLI}")" && pwd)/$(basename "${CLI}")"

CLEANUP=0
if [[ $# -ge 2 ]]; then
  WORK="$2"
  mkdir -p "${WORK}"
else
  WORK="$(mktemp -d)"
  CLEANUP=1
fi
trap '[[ ${CLEANUP} -eq 1 ]] && rm -rf "${WORK}"' EXIT
cd "${WORK}"

cat > alpha.study <<'EOF'
study alpha
workload cifar10
policy pop
configs 12
seed 7
EOF
cat > beta.study <<'EOF'
study beta
workload ptb_lstm
policy bandit
configs 10
weight 2
seed 9
EOF

COMMON=(--study alpha.study --study beta.study --machines 6 --seed 5
        --checkpoint-every 300)

echo ">>> reference run (uninterrupted, same checkpoint cadence)"
"${CLI}" "${COMMON[@]}" --checkpoint-out ref-ckpt \
  --csv ref.csv --trace-out ref-trace.csv > ref.log

echo ">>> crash run (SIGKILL after the 3rd durable checkpoint)"
set +e
"${CLI}" "${COMMON[@]}" --checkpoint-out ckpt \
  --kill-after-checkpoints 3 > crash.log 2>&1
CRASH_EXIT=$?
set -e
if [[ ${CRASH_EXIT} -ne 137 ]]; then
  echo "error: expected the crash run to die by SIGKILL (137), got ${CRASH_EXIT}" >&2
  exit 1
fi
FRAMES=$(ls ckpt/ckpt-*.hdck 2>/dev/null | wc -l)
if [[ ${FRAMES} -lt 3 ]]; then
  echo "error: expected >= 3 durable frames after the kill, found ${FRAMES}" >&2
  exit 1
fi
echo "    died by SIGKILL with ${FRAMES} frames on disk"

echo ">>> resume run (fresh process, specs come from the frames)"
"${CLI}" --resume-from ckpt --csv res.csv --trace-out res-trace.csv > res.log
grep -q "verified-replays=1" res.log || {
  echo "error: resume did not report a verified replay:" >&2
  cat res.log >&2
  exit 1
}

echo ">>> comparing artifacts byte-for-byte"
cmp ref.csv res.csv
cmp ref-trace.csv res-trace.csv

echo ">>> crash-resume smoke passed (CSV and timeline byte-identical)"
