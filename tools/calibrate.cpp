// Development tool: prints population statistics of the synthetic workload
// models so their calibration constants can be checked against the paper's
// reported distributions (Fig. 1 / 2a / 8). Not part of the test suite, but
// kept in-tree so future re-calibration is reproducible.
#include <cstdio>

#include "util/stats.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/trace.hpp"

using namespace hyperdrive;

int main() {
  constexpr std::size_t kConfigs = 2000;

  {
    workload::CifarWorkloadModel model;
    auto trace = workload::generate_trace(model, kConfigs, 42);
    std::vector<double> finals, bests, durations, scores;
    for (const auto& job : trace.jobs) {
      const auto q = model.quality(job.config);
      if (q.learns) scores.push_back(q.score);
    }
    std::printf("CIFAR learner score pcts: p50=%.3f p75=%.3f p90=%.3f p95=%.3f p97=%.3f p99=%.3f max=%.3f\n",
                util::percentile(scores, 50), util::percentile(scores, 75),
                util::percentile(scores, 90), util::percentile(scores, 95),
                util::percentile(scores, 97), util::percentile(scores, 99),
                util::max_of(scores));
    std::size_t non_learners = 0, over75 = 0, over77 = 0, under20 = 0, under40 = 0;
    for (const auto& job : trace.jobs) {
      finals.push_back(job.curve.final_perf());
      bests.push_back(job.curve.best_perf());
      durations.push_back(job.curve.epoch_duration.to_seconds());
      if (job.curve.final_perf() <= 0.105) ++non_learners;
      if (job.curve.best_perf() > 0.75) ++over75;
      if (job.curve.best_perf() >= 0.77) ++over77;
      if (job.curve.final_perf() < 0.20) ++under20;
      if (job.curve.final_perf() < 0.40) ++under40;
    }
    auto b = util::box_stats(finals);
    std::printf("CIFAR (n=%zu)\n", kConfigs);
    std::printf("  final acc: %s\n", util::to_string(b).c_str());
    std::printf("  non-learners (<=0.105): %.1f%% (paper ~32%%)\n",
                100.0 * static_cast<double>(non_learners) / kConfigs);
    std::printf("  under 0.20: %.1f%%  under 0.40: %.1f%%\n",
                100.0 * static_cast<double>(under20) / kConfigs,
                100.0 * static_cast<double>(under40) / kConfigs);
    std::printf("  best>0.75: %.1f%% (paper ~6%% of 50)  best>=0.77: %.1f%%\n",
                100.0 * static_cast<double>(over75) / kConfigs,
                100.0 * static_cast<double>(over77) / kConfigs);
    std::printf("  epoch duration: %s s\n", util::to_string(util::box_stats(durations)).c_str());
  }

  {
    workload::LunarWorkloadModel model;
    auto trace = workload::generate_trace(model, kConfigs, 43);
    {
      std::vector<double> scores;
      for (const auto& job : trace.jobs) {
        const auto q = model.quality(job.config);
        if (q.learns) scores.push_back(q.score);
      }
      std::printf("\nLunar learner score pcts: p50=%.3f p75=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f\n",
                  util::percentile(scores, 50), util::percentile(scores, 75),
                  util::percentile(scores, 90), util::percentile(scores, 95),
                  util::percentile(scores, 99), util::max_of(scores));
    }
    std::vector<double> final_rewards;
    std::size_t non_learning = 0, solved = 0, crashed = 0;
    for (const auto& job : trace.jobs) {
      const double final_raw = job.curve.denormalize(job.curve.final_perf());
      final_rewards.push_back(final_raw);
      if (job.curve.final_perf() <= model.kill_threshold() + 0.01) ++non_learning;
      if (job.curve.first_epoch_reaching(model.target_performance()) != 0) ++solved;
      const double best_raw = job.curve.denormalize(job.curve.best_perf());
      if (best_raw > -50.0 && final_raw <= -100.0) ++crashed;
    }
    std::printf("\nLunarLander (n=%zu)\n", kConfigs);
    std::printf("  final reward: %s\n", util::to_string(util::box_stats(final_rewards)).c_str());
    std::printf("  non-learning at end (<= -100 region): %.1f%% (paper >50%%)\n",
                100.0 * static_cast<double>(non_learning) / kConfigs);
    std::printf("  crashed after learning: %.1f%%\n",
                100.0 * static_cast<double>(crashed) / kConfigs);
    std::printf("  ever solved (reward>=200 sustained): %.1f%%\n",
                100.0 * static_cast<double>(solved) / kConfigs);
  }
  return 0;
}
