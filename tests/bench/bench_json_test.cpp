// Schema lock for the BENCH_*.json perf-tracking records (EXPERIMENTS.md):
// required keys present, insertion order stable, doubles always %.6f. The
// cross-PR perf trajectory is only diffable if two runs that measure the
// same numbers produce the same bytes.
#include "bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hyperdrive::bench {
namespace {

TEST(BenchJsonTest, RequiredKeysLeadInInsertionOrder) {
  BenchJson json("perf_predictor", /*git=*/"v1.2.3-4-gabc");
  json.set("wall_ms", 1234.5);
  json.set("cells_per_s", 7.25);
  json.set_count("threads", 8);

  const auto parsed = parse_bench_json(json.to_string());
  ASSERT_EQ(parsed.entries.size(), 5u);
  EXPECT_EQ(parsed.entries[0].first, "name");
  EXPECT_EQ(parsed.entries[0].second, "perf_predictor");
  EXPECT_EQ(parsed.entries[1].first, "git");
  EXPECT_EQ(parsed.entries[1].second, "v1.2.3-4-gabc");
  EXPECT_EQ(parsed.entries[2].first, "wall_ms");
  EXPECT_EQ(parsed.entries[3].first, "cells_per_s");
  EXPECT_EQ(parsed.entries[4].first, "threads");
}

TEST(BenchJsonTest, DoublesAlwaysRenderAsFixedSixDigits) {
  BenchJson json("n", "g");
  json.set("a", 1234.5);
  json.set("b", 0.125);
  json.set("c", 10.0);
  const auto parsed = parse_bench_json(json.to_string());
  EXPECT_EQ(*parsed.find("a"), "1234.500000");
  EXPECT_EQ(*parsed.find("b"), "0.125000");
  EXPECT_EQ(*parsed.find("c"), "10.000000");
  // Counts stay integral — no decimal point.
  json.set_count("n_cells", 24);
  EXPECT_EQ(*parse_bench_json(json.to_string()).find("n_cells"), "24");
}

TEST(BenchJsonTest, OverwriteKeepsOriginalPosition) {
  BenchJson json("n", "g");
  json.set("first", 1.0);
  json.set("second", 2.0);
  json.set("first", 3.0);  // overwrite must not reorder
  const auto parsed = parse_bench_json(json.to_string());
  ASSERT_EQ(parsed.entries.size(), 4u);
  EXPECT_EQ(parsed.entries[2].first, "first");
  EXPECT_EQ(parsed.entries[2].second, "3.000000");
  EXPECT_EQ(parsed.entries[3].first, "second");
}

TEST(BenchJsonTest, RoundTripsThroughDisk) {
  BenchJson json("perf_sweep_cell", "deadbeef-dirty");
  json.set("wall_ms", 98.7654321);  // rounds to %.6f
  json.set("cells_per_s", 3.5);
  json.set("note", R"(quo"te\slash)");
  const std::string path = ::testing::TempDir() + "bench_json_roundtrip.json";
  json.write_file(path);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json.to_string());

  const auto parsed = parse_bench_json(buf.str());
  EXPECT_EQ(*parsed.find("name"), "perf_sweep_cell");
  EXPECT_EQ(*parsed.find("git"), "deadbeef-dirty");
  EXPECT_EQ(*parsed.find("wall_ms"), "98.765432");
  EXPECT_EQ(*parsed.find("note"), R"(quo"te\slash)");
  EXPECT_EQ(parsed.find("missing"), nullptr);
  std::remove(path.c_str());
}

TEST(BenchJsonTest, IdenticalMetricsProduceIdenticalBytes) {
  auto make = [] {
    BenchJson json("perf_predictor", "abc123");
    json.set("wall_ms", 41.0 / 7.0);
    json.set("speedup_batched", 5.5);
    return json.to_string();
  };
  EXPECT_EQ(make(), make());
}

TEST(BenchJsonTest, GitDescribeNeverReturnsEmpty) {
  // Inside a repo: some describe/hash string; outside: the "unknown"
  // fallback. Either way the required key is always populated.
  EXPECT_FALSE(git_describe().empty());
}

TEST(BenchJsonTest, ParserRejectsMalformedRecords) {
  EXPECT_THROW(parse_bench_json(""), std::runtime_error);
  EXPECT_THROW(parse_bench_json("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW(parse_bench_json("\"a\": 1}"), std::runtime_error);
  EXPECT_THROW(parse_bench_json("{\"a\" 1}"), std::runtime_error);
}

}  // namespace
}  // namespace hyperdrive::bench
