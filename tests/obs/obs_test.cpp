// The observability battery (DESIGN.md §10). Covers, in order:
//   * MetricsRegistry: registration-order CSV export, name/type conflicts,
//     histogram bucket accounting;
//   * TraceEvent rendering: legacy_text / render_line reproduce the golden
//     event-log vocabulary, timeline CSV/JSONL field mapping;
//   * golden-trace byte-identity: attaching a RecordingSink + registry to a
//     faulty cluster run changes nothing — the event log is byte-identical,
//     and every captured event renders 1:1 onto the legacy log lines;
//   * metrics faithfulness: published counters mirror the result counters;
//   * sweep timeline determinism: the cell-prefixed timeline CSV is
//     byte-identical under --jobs 1 and --jobs 8;
//   * the log bridge: captured util::log lines become LogMessage events.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/experiment_runner.hpp"
#include "core/policies/default_policy.hpp"
#include "core/sweep_engine.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"
#include "obs/log_bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/sink.hpp"
#include "util/log.hpp"

namespace hyperdrive {
namespace {

using util::SimTime;

// ----------------------------------------------------------------- metrics --

TEST(ObsMetricsTest, CsvFollowsRegistrationOrder) {
  obs::MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.gauge("a.value").set(1.5);
  registry.counter("b.count").add(3);  // find-or-register: no new entry

  std::ostringstream os;
  registry.write_csv(os);
  EXPECT_EQ(os.str(),
            "metric,type,value\n"
            "b.count,counter,5\n"
            "a.value,gauge,1.500000\n");
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsMetricsTest, NameTypeConflictThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x").add();
  EXPECT_THROW((void)registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("x", {1.0}), std::invalid_argument);
}

TEST(ObsMetricsTest, HistogramBucketsAreCumulative) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("lat", {1.0, 5.0});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(10.0);

  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_EQ(h.cumulative(0), 1u);  // <= 1.0
  EXPECT_EQ(h.cumulative(1), 2u);  // <= 5.0

  std::ostringstream os;
  registry.write_csv(os);
  EXPECT_EQ(os.str(),
            "metric,type,value\n"
            "lat.count,histogram,3\n"
            "lat.sum,histogram,12.500000\n"
            "lat.min,histogram,0.500000\n"
            "lat.max,histogram,10.000000\n"
            "lat.le_1.000000,histogram,1\n"
            "lat.le_5.000000,histogram,2\n");
}

TEST(ObsMetricsTest, UnsortedHistogramBoundsThrow) {
  obs::MetricsRegistry registry;
  EXPECT_THROW((void)registry.histogram("bad", {5.0, 1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- rendering --

TEST(ObsEventTest, LegacyTextReproducesEventLogVocabulary) {
  EXPECT_EQ(obs::legacy_text(obs::TraceEvent(obs::EventKind::JobStart)
                                 .with_job(3)
                                 .with_machine(1)),
            "start job=3 machine=1");
  EXPECT_EQ(obs::legacy_text(obs::TraceEvent(obs::EventKind::EpochComplete)
                                 .with_job(7)
                                 .with_epoch(4)),
            "epoch job=7 epoch=4");
  EXPECT_EQ(obs::legacy_text(obs::TraceEvent(obs::EventKind::JobMigrate)
                                 .with_job(2)
                                 .with_machine(5)
                                 .with_detail("slow")),
            "migrate job=2 machine=5 reason=slow");
  EXPECT_EQ(obs::legacy_text(obs::TraceEvent(obs::EventKind::WrongKill)
                                 .with_job(9)
                                 .with_machine(0)),
            "wrong-kill job=9 machine=0");
  EXPECT_EQ(obs::legacy_text(obs::TraceEvent(obs::EventKind::StudyTimeout)),
            "study-timeout");
}

TEST(ObsEventTest, RenderLineStampsTimeAndStudy) {
  obs::TraceEvent event(obs::EventKind::NodeCrash);
  event.machine = 2;
  event.time = SimTime::seconds(1.5);
  EXPECT_EQ(obs::render_line(event), "t=1.500000000 crash machine=2");
  event.study = "alpha";
  EXPECT_EQ(obs::render_line(event), "t=1.500000000 study=alpha crash machine=2");
}

TEST(ObsEventTest, TimelineFieldsMapAbsentIdsToEmpty) {
  obs::TraceEvent event(obs::EventKind::JobSuspend);
  event.time = SimTime::seconds(2.0);
  event.job = 4;
  event.epoch = 6;

  const auto columns = obs::timeline_columns();
  const auto fields = obs::timeline_fields(event);
  ASSERT_EQ(columns.size(), fields.size());
  EXPECT_EQ(columns[0], "time_s");
  EXPECT_EQ(fields[0], "2.000000000");
  EXPECT_EQ(fields[1], "suspend");
  EXPECT_EQ(fields[2], "");  // study
  EXPECT_EQ(fields[3], "4");
  EXPECT_EQ(fields[4], "");  // machine absent
  EXPECT_EQ(fields[5], "6");

  std::ostringstream csv;
  obs::write_timeline_csv(csv, std::vector<obs::TraceEvent>{event});
  EXPECT_EQ(csv.str(),
            "time_s,kind,study,job,machine,epoch,detail\n"
            "2.000000000,suspend,,4,,6,\n");

  std::ostringstream jsonl;
  obs::write_timeline_jsonl(jsonl, std::vector<obs::TraceEvent>{event});
  EXPECT_EQ(jsonl.str(),
            "{\"time_s\":2.000000000,\"kind\":\"suspend\",\"job\":4,\"epoch\":6}\n");
}

// ------------------------------------------------------------ golden traces --

workload::Trace linear_trace(std::size_t jobs, std::size_t epochs,
                             double target = 0.99) {
  workload::Trace trace;
  trace.workload_name = "linear";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(0.5 * static_cast<double>(e) /
                               static_cast<double>(epochs));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

cluster::ClusterOptions faulty_options() {
  cluster::ClusterOptions options;
  options.machines = 2;
  options.overheads = cluster::cifar_overhead_model();
  options.epoch_jitter_sigma = 0.05;
  options.seed = 99;
  options.record_event_log = true;
  options.fault_plan.seed = 5;
  options.fault_plan.default_message_faults.drop_prob = 0.05;
  cluster::NodeCrashEvent crash;
  crash.machine = 0;
  crash.at = SimTime::minutes(10);
  crash.restart_after = SimTime::minutes(5);
  options.fault_plan.crashes.push_back(crash);
  return options;
}

/// Suspends every job at epoch 2 once — exercises the snapshot path.
class SuspendOncePolicy final : public core::DefaultPolicy {
 public:
  core::JobDecision on_iteration_finish(core::SchedulerOps& ops,
                                        const core::JobEvent& event) override {
    if (event.epoch == 2 && suspended_.insert(event.job_id).second) {
      return core::JobDecision::Suspend;
    }
    return core::DefaultPolicy::on_iteration_finish(ops, event);
  }

 private:
  std::set<core::JobId> suspended_;
};

TEST(ObsGoldenTraceTest, AttachedSinkIsByteInvisible) {
  const auto trace = linear_trace(5, 10);
  const auto options = faulty_options();

  SuspendOncePolicy p1, p2;
  cluster::HyperDriveCluster bare(trace, options);
  const auto bare_result = bare.run(p1);

  auto observed_options = options;
  obs::RecordingSink sink;
  obs::MetricsRegistry registry;
  observed_options.obs.sink = &sink;
  observed_options.obs.metrics = &registry;
  cluster::HyperDriveCluster observed(trace, observed_options);
  const auto observed_result = observed.run(p2);

  // Sinks observe, never perturb: the golden trace is byte-identical...
  ASSERT_FALSE(bare.event_log().empty());
  EXPECT_EQ(bare.event_log(), observed.event_log());
  // ...and so is the result.
  EXPECT_EQ(bare_result.total_time, observed_result.total_time);
  EXPECT_EQ(bare_result.best_perf, observed_result.best_perf);
  EXPECT_EQ(bare_result.suspends, observed_result.suspends);
  EXPECT_EQ(bare_result.recovery, observed_result.recovery);

  // The typed stream is the legacy log: every captured event renders onto
  // exactly its line, 1:1 in emission order.
  ASSERT_EQ(sink.events.size(), observed.event_log().size());
  for (std::size_t i = 0; i < sink.events.size(); ++i) {
    EXPECT_EQ(obs::render_line(sink.events[i]), observed.event_log()[i]);
  }
}

TEST(ObsGoldenTraceTest, PublishedMetricsMirrorResultCounters) {
  const auto trace = linear_trace(5, 10);
  auto options = faulty_options();
  obs::MetricsRegistry registry;
  cluster::preregister_cluster_metrics(registry);
  options.obs.metrics = &registry;

  SuspendOncePolicy policy;
  cluster::HyperDriveCluster run(trace, options);
  const auto result = run.run(policy);

  EXPECT_EQ(registry.counter("cluster.jobs_started").value(), result.jobs_started);
  EXPECT_EQ(registry.counter("cluster.suspends").value(), result.suspends);
  EXPECT_EQ(registry.counter("cluster.terminations").value(), result.terminations);
  EXPECT_EQ(registry.counter("recovery.node_crashes").value(),
            result.recovery.node_crashes);
  EXPECT_EQ(registry.counter("recovery.jobs_requeued").value(),
            result.recovery.jobs_requeued);
  EXPECT_EQ(registry.counter("recovery.wrong_kills").value(),
            result.recovery.wrong_kills);
}

// ------------------------------------------------------------ sweep timeline --

TEST(ObsSweepTimelineTest, ThreadCountDoesNotChangeTimelineBytes) {
  core::SweepSpec spec;
  spec.name = "obs_sweep";
  spec.base_seed = 3;
  spec.capture_events = true;
  (void)spec.add_repeat_axis(4);
  spec.trace = [](const core::SweepCell&) { return linear_trace(4, 8); };
  spec.policy = [](const core::SweepCell&) {
    return std::make_unique<core::DefaultPolicy>();
  };
  spec.options = [](const core::SweepCell& cell) {
    core::RunnerOptions options;
    options.substrate = core::Substrate::Cluster;
    options.machines = 2;
    options.seed = 100 + cell.seed;
    return options;
  };

  const auto serial = core::run_sweep(spec, 1);
  const auto fanned = core::run_sweep(spec, 8);

  std::size_t events = 0;
  for (const auto& row : serial.rows) events += row.events.size();
  EXPECT_GT(events, 0u);

  std::ostringstream a, b;
  serial.save_timeline_csv(a);
  fanned.save_timeline_csv(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(serial.to_csv(), fanned.to_csv());
}

TEST(ObsSweepTimelineTest, CaptureWithCustomRunExecutorThrows) {
  core::SweepSpec spec;
  (void)spec.add_axis("arm", {"a", "b"});
  spec.capture_events = true;
  spec.run = [](const core::SweepCell&) { return core::ExperimentResult{}; };
  EXPECT_THROW((void)core::run_sweep(spec, 1), std::invalid_argument);
}

// ---------------------------------------------------------------- log bridge --

TEST(ObsLogBridgeTest, CapturedLogLinesBecomeEvents) {
  obs::RecordingSink sink;
  obs::MetricsRegistry registry;
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::Info);
  {
    obs::LogCapture capture(obs::Scope{&sink, &registry, ""});
    util::log_info("obs_test", "hello ", 42);
    util::log_debug("obs_test", "below the level — dropped");
  }
  util::set_log_level(saved);
  util::log_info("obs_test_after", "not captured");  // guard released

  ASSERT_EQ(sink.count(obs::EventKind::LogMessage), 1u);
  EXPECT_EQ(sink.events[0].detail, "info obs_test: hello 42");
  EXPECT_EQ(registry.counter("log.lines").value(), 1u);
}

}  // namespace
}  // namespace hyperdrive
