// Property-based invariants of the POP scheduling algorithm (§3, §5.3),
// checked across many random seeds instead of handcrafted traces:
//
//   1. Allocated slots never exceed capacity: S_effective = min(S_desired,
//      S_deserved) <= S, and the promising set never outgrows what its slots
//      fund.
//   2. Classification is a partition: every active job is in exactly one of
//      {Promising, Opportunistic, Poor}, mirrored by its label.
//   3. Terminating the Poor set never delays the incumbent-best job: after a
//      round that kills a hopeless job, the best job keeps its dedicated slot
//      (decision Continue, still promising).
//   4. Infeasible-job termination is monotone in the accuracy target: the set
//      of jobs POP terminates at target T is a subset of the set it
//      terminates at any T' > T (for the same histories and a Tmax budget
//      large enough that the §3.1.1 ERT truncation never engages — the
//      truncated partial sums are not comparable across targets).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/policies/pop_policy.hpp"
#include "curve/predictor.hpp"
#include "util/rng.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

constexpr std::size_t kSeeds = 60;  // >= 50 required by the test battery

/// Minimal in-memory SchedulerOps: fixed histories, no execution. Lets the
/// invariant checks drive on_iteration_finish directly on arbitrary states.
class FakeOps final : public SchedulerOps {
 public:
  struct FakeJob {
    JobStatus status = JobStatus::Running;
    std::vector<double> history;
    SimTime epoch_duration = SimTime::seconds(60);
    double label = 0.0;
  };

  std::map<JobId, FakeJob> jobs;
  std::size_t machines = 4;
  std::size_t max_epochs_value = 200;
  double target = 0.9;
  double kill = -1.0;  // below any curve: the kill rule never fires
  std::size_t boundary = 4;
  SimTime now_value = SimTime::zero();

  std::optional<JobId> get_idle_job() override {
    for (const auto& [id, job] : jobs) {
      if (job.status == JobStatus::Pending || job.status == JobStatus::Suspended) return id;
    }
    return std::nullopt;
  }
  bool start_job(JobId) override { return false; }
  void label_job(JobId id, double priority) override { jobs.at(id).label = priority; }
  [[nodiscard]] std::size_t total_machines() const override { return machines; }
  [[nodiscard]] std::size_t idle_machines() const override { return 0; }
  [[nodiscard]] SimTime now() const override { return now_value; }
  [[nodiscard]] JobStatus job_status(JobId id) const override { return jobs.at(id).status; }
  [[nodiscard]] std::vector<JobId> active_jobs() const override {
    std::vector<JobId> out;
    for (const auto& [id, job] : jobs) {
      if (job.status != JobStatus::Terminated && job.status != JobStatus::Completed) {
        out.push_back(id);
      }
    }
    return out;
  }
  [[nodiscard]] const std::vector<double>& perf_history(JobId id) const override {
    return jobs.at(id).history;
  }
  [[nodiscard]] SimTime avg_epoch_duration(JobId id) const override {
    return jobs.at(id).epoch_duration;
  }
  [[nodiscard]] std::size_t epochs_done(JobId id) const override {
    return jobs.at(id).history.size();
  }
  [[nodiscard]] std::size_t max_epochs() const override { return max_epochs_value; }
  [[nodiscard]] double target_performance() const override { return target; }
  [[nodiscard]] double kill_threshold() const override { return kill; }
  [[nodiscard]] std::size_t evaluation_boundary() const override { return boundary; }
};

/// Saturating curve y(e) = lo + (hi - lo)(1 - exp(-k e)), the shape every
/// parametric family in the predictor can fit.
std::vector<double> saturating(double lo, double hi, double k, std::size_t n) {
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = lo + (hi - lo) * (1.0 - std::exp(-k * static_cast<double>(i + 1)));
  }
  return ys;
}

std::shared_ptr<const curve::CurvePredictor> fast_predictor(std::uint64_t seed) {
  curve::PredictorConfig config;
  config.lsq_samples = 60;  // cheap but still a real posterior
  config.seed = seed;
  return curve::make_lsq_predictor(config);
}

/// Populate `ops` with a random scenario: 3-9 jobs with random saturating
/// histories (some clearly strong, some clearly hopeless), 1-8 machines.
void random_scenario(FakeOps& ops, util::Rng& rng) {
  ops.jobs.clear();
  ops.machines = static_cast<std::size_t>(rng.uniform_int(1, 8));
  ops.target = rng.uniform(0.75, 0.95);
  const auto n_jobs = static_cast<std::size_t>(rng.uniform_int(3, 9));
  for (std::size_t j = 1; j <= n_jobs; ++j) {
    FakeOps::FakeJob job;
    const auto epochs = static_cast<std::size_t>(rng.uniform_int(4, 24));
    const double lo = rng.uniform(0.05, 0.3);
    const double hi = rng.uniform(0.2, 1.1);  // some asymptotes above target
    const double k = rng.uniform(0.03, 0.5);
    job.history = saturating(lo, std::max(lo + 0.01, hi), k, epochs);
    job.epoch_duration = SimTime::seconds(rng.uniform(30.0, 300.0));
    ops.jobs.emplace(j, job);
  }
}

JobEvent event_for(const FakeOps& ops, JobId id) {
  const auto& job = ops.jobs.at(id);
  JobEvent event;
  event.job_id = id;
  event.epoch = job.history.size();
  event.perf = job.history.back();
  event.epoch_duration = job.epoch_duration;
  event.now = ops.now_value;
  return event;
}

/// One classification round: feed every active job's latest boundary event.
/// Returns the decision per job (jobs terminate as soon as POP says so).
std::map<JobId, JobDecision> run_round(PopPolicy& policy, FakeOps& ops) {
  std::map<JobId, JobDecision> decisions;
  for (const JobId id : ops.active_jobs()) {
    const JobDecision d = policy.on_iteration_finish(ops, event_for(ops, id));
    decisions[id] = d;
    if (d == JobDecision::Terminate) ops.jobs.at(id).status = JobStatus::Terminated;
    if (d == JobDecision::Suspend) ops.jobs.at(id).status = JobStatus::Suspended;
  }
  return decisions;
}

// ---------------------------------------------------- 1. slots <= capacity --

TEST(PopInvariantsTest, AllocatedSlotsNeverExceedCapacity) {
  std::size_t seeds_with_snapshots = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    util::Rng rng(seed);
    FakeOps ops;
    random_scenario(ops, rng);
    // Boundary multiple of every history length is not needed: feed events
    // at each job's current epoch and force boundary = that epoch via the
    // policy's configured boundary of 1.
    PopConfig config;
    config.tmax = SimTime::hours(1e6);
    config.boundary = 1;
    config.predictor = fast_predictor(seed);
    PopPolicy policy(std::move(config));
    policy.on_experiment_start(ops);
    run_round(policy, ops);

    const double capacity = static_cast<double>(ops.machines);
    // A scenario where every job proved hopeless terminates at the prune
    // step before any classification round runs — legal, but it must be the
    // exception or the test is vacuous (checked after the loop).
    if (!policy.snapshots().empty()) ++seeds_with_snapshots;
    for (const auto& snapshot : policy.snapshots()) {
      // S_effective = min(S_desired, S_deserved) <= S_deserved = S * p <= S.
      EXPECT_LE(snapshot.effective_slots, capacity + 1e-9) << "seed " << seed;
      // The promising pool is funded by S_effective slots (k = 1 here), up
      // to the implementation's half-slot rounding.
      EXPECT_LE(static_cast<double>(snapshot.promising_jobs),
                snapshot.effective_slots + 0.5 + 1e-9)
          << "seed " << seed;
      EXPECT_LE(snapshot.promising_jobs, snapshot.active_jobs) << "seed " << seed;
    }
    EXPECT_LE(policy.promising_jobs().size(), ops.machines + 1) << "seed " << seed;
  }
  EXPECT_GT(seeds_with_snapshots, kSeeds / 2);
}

// ------------------------------------------------------- 2. P/O/P partition --

TEST(PopInvariantsTest, EveryJobInExactlyOneClass) {
  for (std::uint64_t seed = 101; seed <= 100 + kSeeds; ++seed) {
    util::Rng rng(seed);
    FakeOps ops;
    random_scenario(ops, rng);
    PopConfig config;
    config.tmax = SimTime::hours(1e6);
    config.boundary = 1;
    config.predictor = fast_predictor(seed);
    PopPolicy policy(std::move(config));
    policy.on_experiment_start(ops);
    const auto decisions = run_round(policy, ops);

    const auto& promising = policy.promising_jobs();
    std::size_t n_promising = 0, n_opportunistic = 0, n_poor = 0;
    for (const auto& [id, job] : ops.jobs) {
      const bool is_poor = job.status == JobStatus::Terminated;
      const bool is_promising = promising.count(id) > 0;
      // Exactly one class: Poor jobs are terminated and must not be in the
      // promising set; everything alive and not promising is opportunistic.
      EXPECT_FALSE(is_poor && is_promising) << "seed " << seed << " job " << id;
      if (is_poor) {
        ++n_poor;
      } else if (is_promising) {
        ++n_promising;
        // A promising job carries its confidence as a positive label so the
        // Job Manager resumes it first.
        EXPECT_GT(job.label, 0.0) << "seed " << seed << " job " << id;
        EXPECT_EQ(decisions.at(id), JobDecision::Continue) << "seed " << seed;
      } else {
        ++n_opportunistic;
      }
    }
    EXPECT_EQ(n_promising + n_opportunistic + n_poor, ops.jobs.size()) << "seed " << seed;
    // The promising set only contains live jobs.
    for (const JobId id : promising) {
      EXPECT_NE(ops.jobs.at(id).status, JobStatus::Terminated) << "seed " << seed;
    }
  }
}

// ---------------------------------- 3. Poor termination never delays best --

TEST(PopInvariantsTest, TerminatingPoorJobsNeverDelaysIncumbentBest) {
  std::size_t rounds_with_terminations = 0;
  for (std::uint64_t seed = 201; seed <= 200 + kSeeds; ++seed) {
    util::Rng rng(seed);
    FakeOps ops;
    ops.machines = static_cast<std::size_t>(rng.uniform_int(2, 6));
    ops.target = 0.85;
    // One clearly dominant job headed above target...
    FakeOps::FakeJob best;
    best.history = saturating(0.3, 0.97, rng.uniform(0.15, 0.4), 12);
    best.epoch_duration = SimTime::seconds(60);
    ops.jobs.emplace(1, best);
    // ...plus hopeless flat-liners far below it.
    const auto n_poor = static_cast<std::size_t>(rng.uniform_int(2, 6));
    for (std::size_t j = 2; j <= 1 + n_poor; ++j) {
      FakeOps::FakeJob poor;
      const double level = rng.uniform(0.02, 0.1);
      poor.history = saturating(level, level + 0.01, 0.2, 12);
      poor.epoch_duration = SimTime::seconds(60);
      ops.jobs.emplace(j, poor);
    }

    PopConfig config;
    config.tmax = SimTime::hours(1e6);
    config.boundary = 1;
    config.predictor = fast_predictor(seed);
    PopPolicy policy(std::move(config));
    policy.on_experiment_start(ops);

    // Terminate the Poor set first, then ask about the incumbent best: its
    // slot must be untouched — Continue, still promising, positive label.
    bool terminated_any = false;
    for (const auto& [id, job] : ops.jobs) {
      if (id == 1) continue;
      const JobDecision d = policy.on_iteration_finish(ops, event_for(ops, id));
      if (d == JobDecision::Terminate) {
        ops.jobs.at(id).status = JobStatus::Terminated;
        terminated_any = true;
        // The incumbent best must not have been demoted by this kill.
        EXPECT_EQ(policy.on_iteration_finish(ops, event_for(ops, 1)),
                  JobDecision::Continue)
            << "seed " << seed << " after terminating job " << id;
        EXPECT_TRUE(policy.promising_jobs().count(1)) << "seed " << seed;
        EXPECT_GT(ops.jobs.at(1).label, 0.0) << "seed " << seed;
      }
    }
    if (terminated_any) ++rounds_with_terminations;
  }
  // The scenario must actually exercise the invariant, not vacuously pass.
  EXPECT_GT(rounds_with_terminations, kSeeds / 2);
}

// ----------------------------------------- 4. termination monotone in target --

TEST(PopInvariantsTest, InfeasibleTerminationMonotoneInTarget) {
  for (std::uint64_t seed = 301; seed <= 300 + kSeeds; ++seed) {
    util::Rng rng(seed);
    FakeOps base;
    random_scenario(base, rng);

    // Sweep ascending targets over identical histories with a fresh policy
    // each time (beliefs are relative to the target). Tmax is effectively
    // unbounded so confidence = P(reach target within m_max) exactly, which
    // is non-increasing in the target.
    std::set<JobId> previous_terminated;
    bool first = true;
    for (const double target : {0.5, 0.65, 0.8, 0.9, 0.99}) {
      FakeOps ops = base;
      ops.target = target;
      PopConfig config;
      config.tmax = SimTime::hours(1e6);
      config.boundary = 1;
      config.predictor = fast_predictor(seed);  // same posterior per target
      PopPolicy policy(std::move(config));
      policy.on_experiment_start(ops);

      std::set<JobId> terminated;
      for (const auto& [id, job] : ops.jobs) {
        if (policy.on_iteration_finish(ops, event_for(ops, id)) == JobDecision::Terminate) {
          terminated.insert(id);
        }
      }
      if (!first) {
        for (const JobId id : previous_terminated) {
          EXPECT_TRUE(terminated.count(id))
              << "seed " << seed << ": job " << id << " was infeasible at a lower "
              << "target but not at " << target;
        }
      }
      previous_terminated = std::move(terminated);
      first = false;
    }
  }
}

}  // namespace
}  // namespace hyperdrive::core
