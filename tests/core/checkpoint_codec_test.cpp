// Coordinator checkpoint codec + store tests (DESIGN.md §12):
//   * a fully-populated CoordinatorCheckpoint round-trips through
//     encode/decode, including spec and fault-plan text blobs;
//   * decode failures carry the shared SnapshotDecodeError taxonomy
//     (truncation, magic, version, trailing bytes, checksum);
//   * CheckpointStore writes atomic frames, lists them newest-first, and
//     reloads exactly what it wrote.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/fault_injector.hpp"
#include "core/study/checkpoint.hpp"

namespace hyperdrive::core {
namespace {

using cluster::SnapshotDecodeError;
using util::SimTime;

CoordinatorCheckpoint sample_checkpoint() {
  StudySpec alpha;
  alpha.name = "alpha";
  alpha.workload = "cifar10";
  alpha.seed = 11;
  StudySpec beta;
  beta.name = "beta";
  beta.policy = "bandit";
  beta.deadline = SimTime::hours(4);
  beta.weight = 2.0;

  StudyManagerOptions options;
  options.machines = 6;
  options.arbitration = ArbitrationMode::DeadlineAware;
  options.arbitration_interval = SimTime::minutes(5);
  options.seed = 99;
  options.record_event_log = true;
  options.checkpoint_every = SimTime::minutes(10);
  options.health.enabled = true;
  options.health.quarantine_strikes = 5;
  cluster::CoordinatorCrashEvent crash;
  crash.at = SimTime::hours(1);
  options.fault_plan.coordinator_crashes.push_back(crash);
  options.fault_plan.seed = 3;

  CoordinatorCheckpoint cp = make_checkpoint_inputs({alpha, beta}, options);
  cp.sequence = 7;
  cp.tick = SimTime::seconds(4200.5);
  cp.rebalances = 3;
  cp.crashes_taken = 1;
  cp.state = {1, 2, 3, 4, 5, 250, 251, 252};
  return cp;
}

TEST(CheckpointCodecTest, RoundTripsEveryField) {
  const CoordinatorCheckpoint cp = sample_checkpoint();
  const auto image = encode_checkpoint(cp);
  const auto decoded = decode_checkpoint(image);
  ASSERT_TRUE(decoded.checkpoint.has_value())
      << (decoded.error ? cluster::to_string(*decoded.error) : "?");
  const CoordinatorCheckpoint& out = *decoded.checkpoint;

  EXPECT_EQ(out.sequence, 7u);
  EXPECT_EQ(out.tick, SimTime::seconds(4200.5));
  EXPECT_EQ(out.rebalances, 3u);
  EXPECT_EQ(out.crashes_taken, 1u);
  EXPECT_EQ(out.state, cp.state);

  EXPECT_EQ(out.options.machines, 6u);
  EXPECT_EQ(out.options.arbitration, ArbitrationMode::DeadlineAware);
  EXPECT_EQ(out.options.arbitration_interval, SimTime::minutes(5));
  EXPECT_EQ(out.options.seed, 99u);
  EXPECT_TRUE(out.options.record_event_log);
  EXPECT_EQ(out.options.checkpoint_every, SimTime::minutes(10));
  EXPECT_TRUE(out.options.health.enabled);
  EXPECT_EQ(out.options.health.quarantine_strikes, 5u);

  // Inputs round-trip through their canonical text forms.
  const auto specs = out.specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "alpha");
  EXPECT_EQ(specs[0].seed, 11u);
  EXPECT_EQ(specs[1].name, "beta");
  EXPECT_EQ(specs[1].policy, "bandit");
  EXPECT_EQ(specs[1].deadline, SimTime::hours(4));
  EXPECT_DOUBLE_EQ(specs[1].weight, 2.0);

  const auto plan = out.fault_plan();
  ASSERT_EQ(plan.coordinator_crashes.size(), 1u);
  EXPECT_EQ(plan.coordinator_crashes[0].at, SimTime::hours(1));
  EXPECT_EQ(plan.seed, 3u);
  // Coordinator-only plans stay invisible to the tenant fault machinery.
  EXPECT_FALSE(plan.any());
  EXPECT_TRUE(plan.any_coordinator());
}

TEST(CheckpointCodecTest, EncodeIsDeterministic) {
  EXPECT_EQ(encode_checkpoint(sample_checkpoint()), encode_checkpoint(sample_checkpoint()));
}

TEST(CheckpointCodecTest, DecodeClassifiesFailures) {
  const auto image = encode_checkpoint(sample_checkpoint());

  const auto error_of = [](const std::vector<std::uint8_t>& img) {
    const auto r = decode_checkpoint(img);
    EXPECT_FALSE(r.checkpoint.has_value());
    return r.error;
  };

  EXPECT_EQ(error_of({}), SnapshotDecodeError::Truncated);
  EXPECT_EQ(error_of({0x4B, 0x43}), SnapshotDecodeError::Truncated);
  for (const std::size_t len : {std::size_t{5}, image.size() / 2, image.size() - 5}) {
    EXPECT_EQ(error_of({image.begin(), image.begin() + static_cast<long>(len)}),
              SnapshotDecodeError::Truncated)
        << "len " << len;
  }

  auto bad_magic = image;
  bad_magic[1] ^= 0x40;
  EXPECT_EQ(error_of(bad_magic), SnapshotDecodeError::BadMagic);

  auto bad_version = image;
  bad_version[4] = 0x2A;
  EXPECT_EQ(error_of(bad_version), SnapshotDecodeError::UnknownVersion);

  auto trailing = image;
  trailing.insert(trailing.end(), {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(error_of(trailing), SnapshotDecodeError::TrailingGarbage);

  // Flip a bit in the opaque state blob: structure parses, CRC disagrees.
  auto flipped = image;
  flipped[flipped.size() - 6] ^= 0x10;
  EXPECT_EQ(error_of(flipped), SnapshotDecodeError::BadChecksum);

  // A job-snapshot frame is not a checkpoint frame.
  cluster::JobSnapshotState snap;
  snap.job_id = 1;
  EXPECT_EQ(error_of(cluster::SnapshotCodec::encode(snap)), SnapshotDecodeError::BadMagic);
}

TEST(CheckpointCodecTest, StoreWritesListsAndReloads) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "hd_ckpt_store_test";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir.string());

  CoordinatorCheckpoint cp = sample_checkpoint();
  for (const std::uint64_t seq : {3u, 1u, 12u}) {
    cp.sequence = seq;
    cp.tick = SimTime::seconds(static_cast<double>(seq) * 100.0);
    EXPECT_GT(store.write(cp), 0u);
  }

  EXPECT_EQ(store.list(), (std::vector<std::uint64_t>{12, 3, 1}));
  const auto reloaded = store.load(12);
  ASSERT_TRUE(reloaded.checkpoint.has_value());
  EXPECT_EQ(reloaded.checkpoint->tick, SimTime::seconds(1200));
  EXPECT_EQ(reloaded.checkpoint->state, cp.state);

  // Missing sequences read as truncated, never throw.
  EXPECT_EQ(store.load(999).error, SnapshotDecodeError::Truncated);

  // Rewriting a sequence replaces the frame atomically (no .tmp residue).
  cp.sequence = 12;
  cp.rebalances = 77;
  (void)store.write(cp);
  EXPECT_EQ(store.load(12).checkpoint->rebalances, 77u);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".hdck") << entry.path();
  }

  std::filesystem::remove_all(dir);
}

TEST(CheckpointCodecTest, StoreSkipsForeignFilesInListing) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / "hd_ckpt_foreign_test";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir.string());

  CoordinatorCheckpoint cp = sample_checkpoint();
  cp.sequence = 2;
  (void)store.write(cp);
  std::ofstream(dir / "README.txt") << "not a frame";
  std::ofstream(dir / "ckpt-junk.hdck") << "bad digits";

  EXPECT_EQ(store.list(), (std::vector<std::uint64_t>{2}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hyperdrive::core
