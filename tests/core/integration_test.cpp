// End-to-end integration tests: full experiments on the calibrated synthetic
// workloads, checking the qualitative results the paper reports.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

workload::Trace reachable_trace(const workload::WorkloadModel& model, std::size_t configs,
                                std::uint64_t seed) {
  auto trace = workload::generate_trace(model, configs, seed);
  while (!trace.target_reachable()) {
    trace = workload::generate_trace(model, configs, ++seed);
  }
  return trace;
}

PolicySpec spec_for(PolicyKind kind, std::uint64_t seed) {
  PolicySpec spec;
  spec.kind = kind;
  const auto predictor = make_default_predictor(seed);
  spec.earlyterm.predictor = predictor;
  spec.pop.predictor = predictor;
  spec.pop.tmax = SimTime::hours(48);
  return spec;
}

class AllPoliciesTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllPoliciesTest, ReachesTargetOnReachableCifarTrace) {
  workload::CifarWorkloadModel model;
  const auto trace = reachable_trace(model, 60, 101);
  RunnerOptions options;
  options.machines = 4;
  options.max_experiment_time = SimTime::hours(96);
  const auto result = run_experiment(trace, spec_for(GetParam(), 101), options);
  EXPECT_TRUE(result.reached_target) << to_string(GetParam());
  EXPECT_GE(result.best_perf, trace.target_performance);
}

TEST_P(AllPoliciesTest, ReplayAndClusterAgreeWithin15Percent) {
  // The paper validates its simulator at max 13% error vs the live system
  // (Fig. 12a); our idealized replay vs high-fidelity cluster mirror that.
  workload::CifarWorkloadModel model;
  const auto trace = reachable_trace(model, 50, 202);
  RunnerOptions options;
  options.machines = 4;
  options.max_experiment_time = SimTime::hours(96);

  options.substrate = Substrate::TraceReplay;
  const auto replay = run_experiment(trace, spec_for(GetParam(), 202), options);
  options.substrate = Substrate::Cluster;
  const auto cluster = run_experiment(trace, spec_for(GetParam(), 202), options);

  ASSERT_TRUE(replay.reached_target);
  ASSERT_TRUE(cluster.reached_target);
  const double error = std::fabs(cluster.time_to_target.to_seconds() -
                                 replay.time_to_target.to_seconds()) /
                       cluster.time_to_target.to_seconds();
  EXPECT_LT(error, 0.15) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllPoliciesTest,
                         ::testing::Values(PolicyKind::Default, PolicyKind::Bandit,
                                           PolicyKind::EarlyTerm, PolicyKind::Pop),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SchedulingComparisonTest, PopBeatsDefaultOnAverageCifar) {
  workload::CifarWorkloadModel model;
  double pop_total = 0.0, default_total = 0.0;
  constexpr int kRepeats = 3;
  for (int r = 0; r < kRepeats; ++r) {
    const auto trace = reachable_trace(model, 60, 300 + 10 * r);
    RunnerOptions options;
    options.machines = 4;
    options.max_experiment_time = SimTime::hours(96);
    const auto pop = run_experiment(trace, spec_for(PolicyKind::Pop, r), options);
    const auto def = run_experiment(trace, spec_for(PolicyKind::Default, r), options);
    ASSERT_TRUE(pop.reached_target);
    ASSERT_TRUE(def.reached_target);
    pop_total += pop.time_to_target.to_seconds();
    default_total += def.time_to_target.to_seconds();
  }
  EXPECT_LT(pop_total, default_total);
}

TEST(SchedulingComparisonTest, PopBeatsBaselinesOnAverageLunar) {
  workload::LunarWorkloadModel model;
  double pop_total = 0.0, bandit_total = 0.0, et_total = 0.0;
  constexpr int kRepeats = 3;
  for (int r = 0; r < kRepeats; ++r) {
    const auto trace = reachable_trace(model, 60, 400 + 10 * r);
    RunnerOptions options;
    options.machines = 15;
    options.max_experiment_time = SimTime::hours(96);
    pop_total +=
        run_experiment(trace, spec_for(PolicyKind::Pop, r), options).time_to_target.to_seconds();
    bandit_total += run_experiment(trace, spec_for(PolicyKind::Bandit, r), options)
                        .time_to_target.to_seconds();
    et_total += run_experiment(trace, spec_for(PolicyKind::EarlyTerm, r), options)
                    .time_to_target.to_seconds();
  }
  EXPECT_LT(pop_total, bandit_total);
  EXPECT_LT(pop_total, et_total);
}

TEST(SchedulingComparisonTest, PopTerminatesNonLearnersAggressively) {
  workload::CifarWorkloadModel model;
  const auto trace = reachable_trace(model, 60, 500);
  RunnerOptions options;
  options.machines = 4;
  options.max_experiment_time = SimTime::hours(96);
  options.stop_on_target = false;
  const auto pop = run_experiment(trace, spec_for(PolicyKind::Pop, 1), options);
  const auto def = run_experiment(trace, spec_for(PolicyKind::Default, 1), options);

  EXPECT_GT(pop.terminations, trace.jobs.size() / 3);
  EXPECT_EQ(def.terminations, 0u);
  // POP spends far less machine time to cover the same configuration set.
  EXPECT_LT(pop.total_machine_time.to_seconds(),
            0.5 * def.total_machine_time.to_seconds());
}

TEST(SchedulingComparisonTest, MoreMachinesNeverHurtPop) {
  workload::CifarWorkloadModel model;
  const auto trace = reachable_trace(model, 60, 600);
  RunnerOptions options;
  options.max_experiment_time = SimTime::hours(96);
  options.machines = 2;
  const auto small = run_experiment(trace, spec_for(PolicyKind::Pop, 2), options);
  options.machines = 10;
  const auto big = run_experiment(trace, spec_for(PolicyKind::Pop, 2), options);
  ASSERT_TRUE(small.reached_target);
  ASSERT_TRUE(big.reached_target);
  // Allow small scheduling noise but the trend must hold.
  EXPECT_LE(big.time_to_target.to_seconds(), small.time_to_target.to_seconds() * 1.1);
}

TEST(TraceFromGeneratorTest, BuildsRunnableTraceWithFeedback) {
  workload::CifarWorkloadModel model;
  const auto generator = make_adaptive_generator(model.space(), 7, /*warmup=*/5,
                                                 /*exploit_prob=*/0.8);
  const auto trace = trace_from_generator(model, *generator, 30, 9, /*report_feedback=*/true);
  EXPECT_EQ(trace.jobs.size(), 30u);
  EXPECT_EQ(trace.workload_name, "cifar10");
  for (const auto& job : trace.jobs) {
    EXPECT_EQ(job.curve.perf.size(), model.max_epochs());
  }
  // An adaptive generator with feedback should concentrate later configs:
  // the mean quality of the last 10 exceeds the first 10 (usually; we just
  // check it produced valid, distinct configs here to avoid flakiness).
  EXPECT_NE(trace.jobs.front().config.stable_hash(), trace.jobs.back().config.stable_hash());
}

TEST(AdaptiveSearchTest, FeedbackImprovesPopulationQuality) {
  // Across rounds, the adaptive generator should raise the population's
  // mean final accuracy relative to pure random search.
  workload::CifarWorkloadModel model;
  const auto adaptive = make_adaptive_generator(model.space(), 21, /*warmup=*/20,
                                                /*exploit_prob=*/0.9,
                                                /*perturb_scale=*/0.05);
  const auto random = make_random_generator(model.space(), 21);

  double adaptive_mean = 0.0, random_mean = 0.0;
  constexpr int kJobs = 150;
  for (int i = 0; i < kJobs; ++i) {
    {
      auto [id, config] = adaptive->create_job();
      const auto curve = model.realize(config, 1);
      adaptive->report_final_performance(id, curve.final_perf());
      adaptive_mean += curve.final_perf();
    }
    {
      auto [id, config] = random->create_job();
      random_mean += model.realize(config, 1).final_perf();
    }
  }
  EXPECT_GT(adaptive_mean / kJobs, random_mean / kJobs);
}

TEST(OverheadAccountingTest, SuspendSamplesMatchSuspendCount) {
  workload::LunarWorkloadModel model;
  const auto trace = reachable_trace(model, 40, 700);
  RunnerOptions options;
  options.substrate = Substrate::Cluster;
  options.machines = 8;
  options.overheads = cluster::lunar_criu_overhead_model();
  options.max_experiment_time = SimTime::hours(96);
  options.stop_on_target = false;
  const auto result = run_experiment(trace, spec_for(PolicyKind::Pop, 3), options);
  EXPECT_EQ(result.suspends, result.suspend_samples.size());
  for (const auto& s : result.suspend_samples) {
    EXPECT_LE(s.latency.to_seconds(), 22.36);  // Fig. 10 bound
    EXPECT_LE(s.snapshot_bytes, 43.75e6);
  }
}

}  // namespace
}  // namespace hyperdrive::core
