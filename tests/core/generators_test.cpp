#include "core/generators/hyperparameter_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/cifar_model.hpp"

namespace hyperdrive::core {
namespace {

workload::HyperparameterSpace small_space() {
  workload::HyperparameterSpace space;
  space.add("lr", workload::ContinuousDomain{1e-4, 1e-1, true})
      .add("momentum", workload::ContinuousDomain{0.0, 0.99})
      .add("batch", workload::IntegerDomain{16, 128})
      .add("opt", workload::CategoricalDomain{{"sgd", "adam"}});
  return space;
}

TEST(RandomGeneratorTest, IdsIncrementFromOne) {
  const auto space = small_space();
  const auto gen = make_random_generator(space, 1);
  EXPECT_EQ(gen->name(), "random");
  EXPECT_EQ(gen->create_job().first, 1u);
  EXPECT_EQ(gen->create_job().first, 2u);
}

TEST(RandomGeneratorTest, DeterministicPerSeed) {
  const auto space = small_space();
  const auto a = make_random_generator(space, 9);
  const auto b = make_random_generator(space, 9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a->create_job().second.stable_hash(), b->create_job().second.stable_hash());
  }
}

TEST(RandomGeneratorTest, SamplesStayInDomain) {
  const auto space = small_space();
  const auto gen = make_random_generator(space, 2);
  for (int i = 0; i < 200; ++i) {
    const auto [id, config] = gen->create_job();
    EXPECT_GE(config.get_double("lr"), 1e-4);
    EXPECT_LE(config.get_double("lr"), 1e-1);
    EXPECT_GE(config.get_int("batch"), 16);
    EXPECT_LE(config.get_int("batch"), 128);
  }
}

TEST(RandomGeneratorTest, FeedbackIsIgnoredWithoutCrashing) {
  const auto space = small_space();
  const auto gen = make_random_generator(space, 3);
  const auto [id, config] = gen->create_job();
  gen->report_final_performance(id, 0.9);  // no-op
  (void)gen->create_job();
}

TEST(GridGeneratorTest, EnumeratesAllPointsThenWraps) {
  const auto space = small_space();
  // 2 points per dim x 2 categorical options = 2*2*2*2 = 16 points.
  const auto gen = make_grid_generator(space, 2);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 16; ++i) hashes.insert(gen->create_job().second.stable_hash());
  EXPECT_EQ(hashes.size(), 16u);
  // 17th call wraps to the first grid point.
  const auto wrapped = gen->create_job().second.stable_hash();
  EXPECT_TRUE(hashes.count(wrapped));
}

TEST(GridGeneratorTest, RespectsMaxGridCap) {
  const auto space = small_space();
  const auto gen = make_grid_generator(space, 10, /*max_grid_configs=*/5);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 20; ++i) hashes.insert(gen->create_job().second.stable_hash());
  EXPECT_LE(hashes.size(), 5u);
}

TEST(AdaptiveGeneratorTest, WarmupIsRandom) {
  const auto space = small_space();
  const auto gen = make_adaptive_generator(space, 4, /*warmup=*/10);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 10; ++i) hashes.insert(gen->create_job().second.stable_hash());
  EXPECT_EQ(hashes.size(), 10u);  // all distinct random draws
}

TEST(AdaptiveGeneratorTest, ExploitsReportedBest) {
  const auto space = small_space();
  const auto gen = make_adaptive_generator(space, 5, /*warmup=*/1,
                                           /*exploit_prob=*/1.0, /*perturb_scale=*/0.02);
  const auto [first_id, first_config] = gen->create_job();
  gen->report_final_performance(first_id, 0.9);

  // With exploit_prob=1 and a tiny perturbation, subsequent configs must be
  // close to the reported best in log-lr space.
  const double base_lr = std::log(first_config.get_double("lr"));
  for (int i = 0; i < 20; ++i) {
    const auto [id, config] = gen->create_job();
    const double lr = std::log(config.get_double("lr"));
    EXPECT_NEAR(lr, base_lr, 1.5);
  }
}

TEST(AdaptiveGeneratorTest, BetterReportsReplaceTheIncumbent) {
  const auto space = small_space();
  const auto gen = make_adaptive_generator(space, 6, /*warmup=*/2,
                                           /*exploit_prob=*/1.0, /*perturb_scale=*/0.01);
  const auto [id1, config1] = gen->create_job();
  const auto [id2, config2] = gen->create_job();
  gen->report_final_performance(id1, 0.3);
  gen->report_final_performance(id2, 0.8);  // id2 becomes the incumbent

  const double target_lr = std::log(config2.get_double("lr"));
  double total_dev = 0.0;
  for (int i = 0; i < 20; ++i) {
    total_dev += std::fabs(std::log(gen->create_job().second.get_double("lr")) - target_lr);
  }
  EXPECT_LT(total_dev / 20.0, 1.0);
}

TEST(AdaptiveGeneratorTest, PerturbationsStayInDomain) {
  const auto space = small_space();
  const auto gen = make_adaptive_generator(space, 7, /*warmup=*/1,
                                           /*exploit_prob=*/1.0, /*perturb_scale=*/0.5);
  const auto [id, config] = gen->create_job();
  gen->report_final_performance(id, 0.9);
  for (int i = 0; i < 200; ++i) {
    const auto c = gen->create_job().second;
    EXPECT_GE(c.get_double("lr"), 1e-4);
    EXPECT_LE(c.get_double("lr"), 1e-1);
    EXPECT_GE(c.get_double("momentum"), 0.0);
    EXPECT_LE(c.get_double("momentum"), 0.99);
    EXPECT_GE(c.get_int("batch"), 16);
    EXPECT_LE(c.get_int("batch"), 128);
  }
}

TEST(AdaptiveGeneratorTest, UnknownJobFeedbackIgnored) {
  const auto space = small_space();
  const auto gen = make_adaptive_generator(space, 8);
  gen->report_final_performance(999, 1.0);  // never issued; must not crash
  (void)gen->create_job();
}

}  // namespace
}  // namespace hyperdrive::core
