// StudyManager tests (multi-tenant study scheduling, DESIGN.md §9):
//   * a single study routed through the manager is byte-identical to the
//     plain single-tenant cluster path (event log and result);
//   * fair-share arbitration hands a finished study's capacity to the
//     survivors, static partitioning strands it;
//   * cancellation drains a tenant and the pool absorbs its slots;
//   * a 3-study mix is deterministic: two runs produce identical merged
//     event logs and CSV bytes, and a SweepEngine fan-out over the custom
//     `run` hook gives byte-identical tables at 1 and 8 worker threads.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/policies/default_policy.hpp"
#include "core/study/study_manager.hpp"
#include "core/sweep_engine.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

workload::Trace curved_trace(std::size_t jobs, std::size_t epochs, double top,
                             double tau, double target) {
  workload::Trace trace;
  trace.workload_name = "curved";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    // Stagger asymptotes so exactly the last job reaches `top`.
    const double ceiling = top * (0.7 + 0.3 * static_cast<double>(i + 1) /
                                            static_cast<double>(jobs));
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(
          ceiling * (1.0 - std::exp(-static_cast<double>(e) / tau)));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

StudySpec make_spec(std::string name, std::uint64_t seed = 1) {
  StudySpec spec;
  spec.name = std::move(name);
  spec.seed = seed;
  spec.tmax = SimTime::hours(48);
  return spec;
}

std::function<std::unique_ptr<SchedulingPolicy>()> default_policy_factory() {
  return [] { return std::make_unique<DefaultPolicy>(); };
}

TEST(StudyManagerTest, SingleStudyIsByteIdenticalToOwnedCluster) {
  const auto trace = curved_trace(6, 10, 0.9, 3.0, 0.85);

  cluster::ClusterOptions co;
  co.machines = 4;
  co.seed = 5;
  co.record_event_log = true;
  DefaultPolicy owned_policy;
  cluster::HyperDriveCluster owned(trace, co);
  const auto owned_result = owned.run(owned_policy);

  StudyManagerOptions options;
  options.machines = 4;
  options.record_event_log = true;
  StudyManager manager(options);
  auto spec = make_spec("solo", 5);
  manager.add_study(spec, trace, default_policy_factory());
  const auto multi = manager.run();

  ASSERT_EQ(multi.studies.size(), 1u);
  const auto& tenant_result = multi.studies[0].result;
  // The whole event stream — allocation order, message timing, decisions —
  // must match byte for byte.
  ASSERT_EQ(multi.event_log.size(), owned.event_log().size());
  for (std::size_t i = 0; i < multi.event_log.size(); ++i) {
    EXPECT_EQ(multi.event_log[i], owned.event_log()[i]) << "line " << i;
  }
  EXPECT_EQ(tenant_result.reached_target, owned_result.reached_target);
  EXPECT_EQ(tenant_result.time_to_target, owned_result.time_to_target);
  EXPECT_EQ(tenant_result.total_time, owned_result.total_time);
  EXPECT_EQ(tenant_result.total_machine_time, owned_result.total_machine_time);
  EXPECT_EQ(tenant_result.suspends, owned_result.suspends);
  EXPECT_EQ(tenant_result.terminations, owned_result.terminations);
  EXPECT_EQ(tenant_result.jobs_started, owned_result.jobs_started);
  EXPECT_EQ(tenant_result.winning_job, owned_result.winning_job);
  ASSERT_EQ(tenant_result.job_stats.size(), owned_result.job_stats.size());
  for (std::size_t i = 0; i < tenant_result.job_stats.size(); ++i) {
    EXPECT_EQ(tenant_result.job_stats[i].epochs_completed,
              owned_result.job_stats[i].epochs_completed);
    EXPECT_EQ(tenant_result.job_stats[i].execution_time,
              owned_result.job_stats[i].execution_time);
  }
  // A lone tenant holds the full pool for its whole run.
  EXPECT_EQ(tenant_result.lease_grants, 0u);
  EXPECT_EQ(tenant_result.lease_reclaims, 0u);
}

TEST(StudyManagerTest, FairShareHandsFinishedStudysSlotsToSurvivors) {
  // "quick" reaches its target early; "slow" never does and grinds to Tmax
  // ... well, to trace completion. Under FairShare the survivor inherits the
  // quick study's slots; under StaticPartition they strand.
  const auto quick = curved_trace(4, 8, 0.9, 2.0, 0.6);
  const auto slow = curved_trace(8, 16, 0.5, 6.0, 0.99);

  const auto run_mode = [&](ArbitrationMode mode) {
    StudyManagerOptions options;
    options.machines = 6;
    options.arbitration = mode;
    options.arbitration_interval = SimTime::minutes(5);
    StudyManager manager(options);
    manager.add_study(make_spec("quick", 2), quick, default_policy_factory());
    manager.add_study(make_spec("slow", 3), slow, default_policy_factory());
    return manager.run();
  };

  const auto fair = run_mode(ArbitrationMode::FairShare);
  ASSERT_EQ(fair.studies.size(), 2u);
  EXPECT_TRUE(fair.studies[0].result.reached_target);
  // The survivor received the quick study's drained slots.
  EXPECT_GE(fair.studies[1].result.lease_grants, 3u);

  const auto fixed = run_mode(ArbitrationMode::StaticPartition);
  ASSERT_EQ(fixed.studies.size(), 2u);
  EXPECT_TRUE(fixed.studies[0].result.reached_target);
  EXPECT_EQ(fixed.studies[1].result.lease_grants, 0u);
  // Inherited capacity means the fair-share survivor finishes no later.
  EXPECT_LE(fair.studies[1].result.total_time, fixed.studies[1].result.total_time);
  // Slot-seconds ledger: the fair survivor was charged for more capacity.
  EXPECT_GT(fair.studies[1].result.slot_seconds, fixed.studies[1].result.slot_seconds);
}

TEST(StudyManagerTest, CancellationDrainsTheTenant) {
  const auto a = curved_trace(8, 16, 0.5, 6.0, 0.99);  // never reaches target
  const auto b = curved_trace(8, 16, 0.5, 6.0, 0.99);

  StudyManagerOptions options;
  options.machines = 4;
  options.arbitration = ArbitrationMode::FairShare;
  options.record_event_log = true;
  StudyManager manager(options);
  auto cancelled = make_spec("doomed", 4);
  cancelled.cancel_at = SimTime::minutes(10);
  manager.add_study(cancelled, a, default_policy_factory());
  manager.add_study(make_spec("survivor", 5), b, default_policy_factory());
  const auto result = manager.run();

  ASSERT_EQ(result.studies.size(), 2u);
  EXPECT_TRUE(result.studies[0].cancelled);
  EXPECT_FALSE(result.studies[0].result.reached_target);
  EXPECT_EQ(result.studies[0].result.total_time, SimTime::minutes(10));
  EXPECT_FALSE(result.studies[1].cancelled);
  // The survivor inherited the cancelled study's slots and its jobs all ran.
  EXPECT_GE(result.studies[1].result.lease_grants, 1u);
  EXPECT_EQ(result.studies[1].result.jobs_started, 8u);
  const auto agg = result.aggregate();
  ASSERT_EQ(agg.study_rows.size(), 2u);
  EXPECT_TRUE(agg.study_rows[0].cancelled);
  EXPECT_FALSE(agg.reached_target);
  // The merged log attributes every tenant line.
  bool saw_cancel = false;
  for (const auto& line : result.event_log) {
    if (line.find("study=doomed study-cancelled") != std::string::npos) saw_cancel = true;
  }
  EXPECT_TRUE(saw_cancel);
}

MultiStudyResult run_three_study_mix(std::uint64_t base_seed) {
  StudyManagerOptions options;
  options.machines = 6;
  options.arbitration = ArbitrationMode::FairShare;
  options.arbitration_interval = SimTime::minutes(5);
  options.record_event_log = true;
  options.seed = base_seed;
  StudyManager manager(options);
  manager.add_study(make_spec("alpha", base_seed ^ 11),
                    curved_trace(6, 12, 0.9, 3.0, 0.85),
                    default_policy_factory());
  manager.add_study(make_spec("beta", base_seed ^ 22),
                    curved_trace(8, 10, 0.6, 4.0, 0.99),
                    default_policy_factory());
  auto gamma = make_spec("gamma", base_seed ^ 33);
  gamma.weight = 2.0;
  manager.add_study(gamma, curved_trace(4, 8, 0.9, 2.0, 0.75),
                    default_policy_factory());
  return manager.run();
}

std::string csv_bytes(const MultiStudyResult& result) {
  std::ostringstream out;
  result.save_csv(out);
  return out.str();
}

TEST(StudyManagerTest, ThreeStudyMixIsDeterministic) {
  const auto a = run_three_study_mix(9);
  const auto b = run_three_study_mix(9);
  ASSERT_FALSE(a.event_log.empty());
  ASSERT_EQ(a.event_log.size(), b.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    ASSERT_EQ(a.event_log[i], b.event_log[i]) << "line " << i;
  }
  EXPECT_EQ(csv_bytes(a), csv_bytes(b));
  EXPECT_EQ(a.rebalances, b.rebalances);
  EXPECT_EQ(a.total_time, b.total_time);
  // Every line of a multi-study log is attributed to its tenant.
  for (const auto& line : a.event_log) {
    EXPECT_NE(line.find(" study="), std::string::npos) << line;
  }
}

TEST(StudyManagerTest, SweepOverRunHookIsThreadCountInvariant) {
  // Four independent multi-study cells via the SweepEngine's custom-run
  // hook; slot-per-cell writes keep the table identical at any thread count.
  const auto make_sweep = [&](std::vector<std::vector<std::string>>& logs) {
    SweepSpec spec;
    spec.name = "multi_study_mix";
    spec.base_seed = 17;
    spec.add_repeat_axis(4);
    logs.assign(4, {});
    spec.run = [&logs](const SweepCell& cell) {
      auto result = run_three_study_mix(cell.seed);
      logs[cell.linear] = std::move(result.event_log);
      return result.aggregate();
    };
    return spec;
  };

  std::vector<std::vector<std::string>> serial_logs, parallel_logs;
  const auto serial_spec = make_sweep(serial_logs);
  const auto serial = run_sweep(serial_spec, 1);
  const auto parallel_spec = make_sweep(parallel_logs);
  const auto parallel = run_sweep(parallel_spec, 8);

  std::ostringstream sa, sb;
  serial.save_csv(sa);
  parallel.save_csv(sb);
  EXPECT_EQ(sa.str(), sb.str());
  ASSERT_EQ(serial_logs.size(), parallel_logs.size());
  for (std::size_t c = 0; c < serial_logs.size(); ++c) {
    ASSERT_FALSE(serial_logs[c].empty()) << "cell " << c;
    EXPECT_EQ(serial_logs[c], parallel_logs[c]) << "cell " << c;
  }
}

TEST(StudyManagerTest, DeadlineAwareModeRunsAndFlagsDeadlines) {
  StudyManagerOptions options;
  options.machines = 6;
  options.arbitration = ArbitrationMode::DeadlineAware;
  options.arbitration_interval = SimTime::minutes(5);
  StudyManager manager(options);
  auto urgent = make_spec("urgent", 8);
  urgent.deadline = SimTime::hours(1);
  manager.add_study(urgent, curved_trace(6, 12, 0.9, 3.0, 0.85),
                    default_policy_factory());
  manager.add_study(make_spec("background", 9),
                    curved_trace(8, 16, 0.5, 6.0, 0.99),
                    default_policy_factory());
  const auto result = manager.run();

  ASSERT_EQ(result.studies.size(), 2u);
  const auto& u = result.studies[0];
  EXPECT_EQ(u.deadline_met,
            u.result.reached_target && u.result.time_to_target <= SimTime::hours(1));
  const auto agg = result.aggregate();
  ASSERT_EQ(agg.study_rows.size(), 2u);
  EXPECT_TRUE(agg.study_rows[0].had_deadline);
  EXPECT_FALSE(agg.study_rows[1].had_deadline);
}

// --- elastic cost-aware capacity (DESIGN.md §15) -----------------------------

MultiStudyResult run_elastic_mix(std::uint64_t seed) {
  StudyManagerOptions options;
  cluster::NodeCatalog catalog;
  catalog.add({"standard", 3, 1.0, 1.0, false});
  catalog.add({"burst", 3, 2.5, 1.5, true});
  options.catalog = catalog;
  options.arbitration = ArbitrationMode::Cost;
  options.arbitration_interval = SimTime::minutes(5);
  options.record_event_log = true;
  options.seed = seed;
  cluster::SpotPreemptionEvent spot;  // reclaim a burst node mid-run
  spot.machine = 4;
  spot.at = SimTime::minutes(20);
  options.fault_plan.spot_preemptions.push_back(spot);
  StudyManager manager(options);
  auto urgent = make_spec("urgent", seed ^ 11);
  urgent.deadline = SimTime::hours(2);
  urgent.node_class = "burst";
  manager.add_study(urgent, curved_trace(5, 10, 0.9, 3.0, 0.85),
                    default_policy_factory());
  auto thrifty = make_spec("thrifty", seed ^ 22);
  thrifty.budget_usd = 4.0;
  manager.add_study(thrifty, curved_trace(6, 8, 0.6, 4.0, 0.99),
                    default_policy_factory());
  return manager.run();
}

TEST(ElasticStudyManagerTest, AutoscaledSpotRunsAreDeterministicAcrossThirtySeeds) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto a = run_elastic_mix(seed);
    const auto b = run_elastic_mix(seed);
    ASSERT_FALSE(a.event_log.empty()) << "seed " << seed;
    ASSERT_EQ(a.event_log.size(), b.event_log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.event_log.size(); ++i) {
      ASSERT_EQ(a.event_log[i], b.event_log[i]) << "seed " << seed << " line " << i;
    }
    ASSERT_EQ(csv_bytes(a), csv_bytes(b)) << "seed " << seed;
    ASSERT_EQ(a.spend_usd, b.spend_usd) << "seed " << seed;
    ASSERT_EQ(a.total_time, b.total_time) << "seed " << seed;
  }
}

TEST(ElasticStudyManagerTest, CostModeSpendsLessThanFairWithoutMissingDeadlines) {
  const auto run_mode = [](ArbitrationMode mode) {
    StudyManagerOptions options;
    cluster::NodeCatalog catalog;
    catalog.add({"standard", 4, 1.0, 1.0, false});
    catalog.add({"premium", 4, 3.0, 1.0, false});
    options.catalog = catalog;
    options.arbitration = mode;
    options.arbitration_interval = SimTime::minutes(5);
    StudyManager manager(options);
    auto urgent = make_spec("urgent", 8);
    urgent.deadline = SimTime::hours(3);
    manager.add_study(urgent, curved_trace(3, 10, 0.9, 3.0, 0.85),
                      default_policy_factory());
    manager.add_study(make_spec("background", 9), curved_trace(3, 8, 0.9, 2.0, 0.75),
                      default_policy_factory());
    return manager.run();
  };

  const auto fair = run_mode(ArbitrationMode::FairShare);
  const auto cost = run_mode(ArbitrationMode::Cost);
  ASSERT_EQ(fair.studies.size(), 2u);
  ASSERT_EQ(cost.studies.size(), 2u);
  // Six jobs can never use eight nodes: cost mode caps each tenant to its
  // active-job count and the autoscaler sheds the surplus, so the bill drops
  // while the work still completes.
  EXPECT_GT(fair.spend_usd, 0.0);
  EXPECT_LT(cost.spend_usd, fair.spend_usd);
  EXPECT_GE(cost.studies[0].deadline_met, fair.studies[0].deadline_met);
  for (const auto& study : cost.studies) {
    EXPECT_EQ(study.result.jobs_started, 3u);
  }
  // The per-tenant chargeback ledger also shrinks and stays consistent.
  EXPECT_GT(cost.studies[0].result.spend_usd, 0.0);
  EXPECT_LE(cost.studies[0].result.spend_usd + cost.studies[1].result.spend_usd,
            fair.studies[0].result.spend_usd + fair.studies[1].result.spend_usd);
}

TEST(ElasticStudyManagerTest, TenantBudgetCapThrottlesToOneSlot) {
  const auto run_with_budget = [](double budget) {
    StudyManagerOptions options;
    options.machines = 4;
    options.arbitration = ArbitrationMode::Cost;
    options.arbitration_interval = SimTime::minutes(5);
    StudyManager manager(options);
    auto spec = make_spec("capped", 3);
    spec.budget_usd = budget;
    manager.add_study(spec, curved_trace(4, 8, 0.9, 2.0, 0.99),
                      default_policy_factory());
    return manager.run();
  };

  const auto roomy = run_with_budget(1e9);
  const auto tight = run_with_budget(0.05);
  ASSERT_EQ(roomy.studies.size(), 1u);
  ASSERT_EQ(tight.studies.size(), 1u);
  // Once the tenant's spend crosses its budget the arbiter clamps it to one
  // slot: the run finishes (no starvation) but holds less capacity for
  // longer, so the chargeback grows slower per unit time.
  EXPECT_EQ(tight.studies[0].result.jobs_started, 4u);
  EXPECT_GT(tight.studies[0].result.total_time, roomy.studies[0].result.total_time);
  EXPECT_GE(tight.studies[0].result.lease_reclaims,
            roomy.studies[0].result.lease_reclaims);
}

TEST(StudyManagerTest, RejectsBadConfigurations) {
  StudyManagerOptions options;
  options.machines = 1;
  StudyManager manager(options);
  manager.add_study(make_spec("a"), curved_trace(2, 4, 0.9, 2.0, 0.5),
                    default_policy_factory());
  EXPECT_THROW(
      manager.add_study(make_spec("a"), curved_trace(2, 4, 0.9, 2.0, 0.5),
                        default_policy_factory()),
      std::invalid_argument);  // duplicate name
  manager.add_study(make_spec("b"), curved_trace(2, 4, 0.9, 2.0, 0.5),
                    default_policy_factory());
  EXPECT_THROW((void)manager.run(), std::invalid_argument);  // pool too small

  StudyManager empty{StudyManagerOptions{}};
  EXPECT_THROW((void)empty.run(), std::invalid_argument);

  EXPECT_THROW((void)arbitration_from_string("roundrobin"), std::invalid_argument);
  EXPECT_EQ(arbitration_from_string("deadline"), ArbitrationMode::DeadlineAware);
  EXPECT_EQ(arbitration_from_string("cost"), ArbitrationMode::Cost);
  EXPECT_EQ(to_string(ArbitrationMode::StaticPartition), "static");
  EXPECT_EQ(to_string(ArbitrationMode::Cost), "cost");
}

}  // namespace
}  // namespace hyperdrive::core
