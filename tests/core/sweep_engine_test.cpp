#include "core/sweep_engine.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/policy_registry.hpp"
#include "workload/cifar_model.hpp"
#include "workload/trace_tools.hpp"

namespace hyperdrive::core {
namespace {

/// A small but real sweep (policies x repeats over a CIFAR trace on the
/// replay simulator) — big enough that a scheduling race would scramble it,
/// small enough for a unit test.
SweepSpec small_sweep(const workload::WorkloadModel& model) {
  SweepSpec spec;
  spec.name = "test_sweep";
  const auto policy_ax = spec.add_policy_axis({"pop", "bandit", "earlyterm"});
  const auto repeat_ax = spec.add_repeat_axis(3);
  spec.trace = [&model, repeat_ax](const SweepCell& cell) {
    return workload::reachable_trace(model, 20, 100 + cell.at(repeat_ax) * 7);
  };
  spec.policy = [policy_ax, repeat_ax](const SweepCell& cell) {
    const std::vector<std::string> names = {"pop", "bandit", "earlyterm"};
    return make_standard_policy(names[cell.at(policy_ax)], cell.at(repeat_ax));
  };
  spec.options = [](const SweepCell&) {
    RunnerOptions options;
    options.substrate = Substrate::TraceReplay;
    options.machines = 2;
    options.max_experiment_time = util::SimTime::hours(48);
    return options;
  };
  return spec;
}

TEST(SweepSpecTest, CellDecodeIsRowMajorFirstAxisSlowest) {
  SweepSpec spec;
  spec.add_axis("a", {"a0", "a1", "a2"});
  spec.add_axis("b", {"b0", "b1"});
  ASSERT_EQ(spec.cells(), 6u);
  // linear = a * 2 + b
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      const auto cell = spec.cell(a * 2 + b);
      EXPECT_EQ(cell.linear, a * 2 + b);
      EXPECT_EQ(cell.at(0), a);
      EXPECT_EQ(cell.at(1), b);
    }
  }
  EXPECT_THROW(spec.cell(6), std::out_of_range);
}

TEST(SweepSpecTest, CellSeedsAreDistinctAndOrderSensitive) {
  // (i, j) and (j, i) must land on different streams, and every cell of a
  // grid must get its own seed.
  EXPECT_NE(derive_cell_seed(1, {0, 1}), derive_cell_seed(1, {1, 0}));
  EXPECT_NE(derive_cell_seed(1, {0, 1}), derive_cell_seed(2, {0, 1}));

  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) seeds.insert(derive_cell_seed(7, {i, j}));
  }
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(SweepSpecTest, CellSeedsAreStableUnderSweepExtension) {
  // Growing an axis (more repeats, one more policy) must not move the seeds
  // of the cells that already existed — the derivation only reads the cell's
  // own index vector.
  const auto before = derive_cell_seed(1, {2, 4});
  const auto after = derive_cell_seed(1, {2, 4});  // same index, bigger grid
  EXPECT_EQ(before, after);
}

TEST(SweepEngineTest, ValidatesTheSpec) {
  SweepEngine engine;
  SweepSpec empty;
  EXPECT_THROW((void)engine.run(empty), std::invalid_argument);

  workload::CifarWorkloadModel model;
  auto no_trace = small_sweep(model);
  no_trace.trace = nullptr;
  EXPECT_THROW((void)engine.run(no_trace), std::invalid_argument);

  auto no_policy = small_sweep(model);
  no_policy.policy = nullptr;
  EXPECT_THROW((void)engine.run(no_policy), std::invalid_argument);
}

TEST(SweepEngineTest, RowsComeBackInCellEnumerationOrder) {
  workload::CifarWorkloadModel model;
  const auto table = run_sweep(small_sweep(model), 4);
  ASSERT_EQ(table.rows.size(), 9u);
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    EXPECT_EQ(table.rows[i].cell.linear, i);
  }
  // Label-keyed selection: 3 repeats per policy.
  EXPECT_EQ(table.where("policy", "pop").size(), 3u);
  EXPECT_EQ(table.minutes_where("policy", "bandit").size(), 3u);
  EXPECT_THROW((void)table.where("nope", "x"), std::out_of_range);
}

TEST(SweepEngineTest, ParallelSweepIsByteIdenticalToSerial) {
  workload::CifarWorkloadModel model;
  const auto serial = run_sweep(small_sweep(model), 1);
  const auto parallel = run_sweep(small_sweep(model), 8);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  // And stable across a re-run with the same thread count.
  const auto parallel2 = run_sweep(small_sweep(model), 8);
  EXPECT_EQ(parallel.to_csv(), parallel2.to_csv());
}

TEST(SweepEngineTest, CollectFillsExtraColumns) {
  workload::CifarWorkloadModel model;
  auto spec = small_sweep(model);
  spec.extra_columns = {"cell_seed_lo"};
  spec.collect = [](const SweepCell& cell, const SchedulingPolicy&,
                    const ExperimentResult&) {
    return std::vector<double>{static_cast<double>(cell.seed & 0xFFFF)};
  };
  const auto table = run_sweep(spec, 2);
  ASSERT_EQ(table.extra_column("cell_seed_lo"), 0u);
  for (const auto& row : table.rows) {
    ASSERT_EQ(row.extra.size(), 1u);
    EXPECT_EQ(row.extra[0], static_cast<double>(row.cell.seed & 0xFFFF));
  }
  EXPECT_NE(table.to_csv().find("cell_seed_lo"), std::string::npos);
}

TEST(SweepEngineTest, CollectArityMismatchThrows) {
  workload::CifarWorkloadModel model;
  auto spec = small_sweep(model);
  spec.extra_columns = {"a", "b"};
  spec.collect = [](const SweepCell&, const SchedulingPolicy&, const ExperimentResult&) {
    return std::vector<double>{1.0};  // wrong arity
  };
  EXPECT_THROW((void)run_sweep(spec, 1), std::runtime_error);
}

TEST(SweepEngineTest, CensoredMinutesUseTotalTimeWhenTargetMissed) {
  SweepRow row;
  row.result.reached_target = false;
  row.result.total_time = util::SimTime::hours(2);
  EXPECT_DOUBLE_EQ(row.minutes_to_target(), 120.0);
  row.result.reached_target = true;
  row.result.time_to_target = util::SimTime::minutes(30);
  EXPECT_DOUBLE_EQ(row.minutes_to_target(), 30.0);
  EXPECT_DOUBLE_EQ(row.hours_to_target(), 0.5);
}

}  // namespace
}  // namespace hyperdrive::core
