// Tests for the extension features: HyperBand policy, TPE generator, POP
// owner rules & dynamic targets, secondary-metric plumbing, and user-defined
// global stop criteria (§9).
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment_runner.hpp"
#include "core/policies/hyperband_policy.hpp"
#include "core/policies/pop_policy.hpp"
#include "sim/trace_replay.hpp"
#include "workload/cifar_model.hpp"
#include "workload/ptb_lstm_model.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

workload::Trace trace_from_curves(std::vector<std::vector<double>> curves, double target,
                                  std::size_t boundary) {
  workload::Trace trace;
  trace.workload_name = "handmade";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = boundary;
  trace.max_epochs = 0;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    job.curve.perf = std::move(curves[i]);
    trace.max_epochs = std::max(trace.max_epochs, job.curve.perf.size());
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

std::vector<double> saturating(double from, double to, std::size_t n, double k) {
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = from + (to - from) * (1.0 - std::exp(-k * static_cast<double>(i + 1)));
  }
  return ys;
}

// ---------------------------------------------------------------- Hyperband

TEST(HyperbandPolicyTest, ValidatesConfig) {
  HyperbandConfig bad;
  bad.eta = 1.0;
  EXPECT_THROW({ HyperbandPolicy rejected(bad); }, std::invalid_argument);
  bad.eta = 3.0;
  bad.num_brackets = 0;
  EXPECT_THROW({ HyperbandPolicy rejected(bad); }, std::invalid_argument);
}

TEST(HyperbandPolicyTest, EliminatesBottomOfRung) {
  // Ten flat jobs with distinct levels, strongest first (the asynchronous
  // promotion rule compares against scores seen so far, so late weak
  // arrivals are the ones eliminated). Rungs at 4, 8 (eta = 2).
  std::vector<std::vector<double>> curves;
  for (int i = 0; i < 10; ++i) {
    curves.push_back(std::vector<double>(16, 0.6 - 0.05 * i));
  }
  auto trace = trace_from_curves(std::move(curves), 0.99, 4);
  HyperbandConfig config;
  config.min_rung = 4;
  config.eta = 2.0;
  HyperbandPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 10;  // everyone reaches rung 4 together-ish
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_GT(policy.eliminations(), 2u);
  // The best job (id 1, perf 0.6) always survives to completion.
  for (const auto& js : result.job_stats) {
    if (js.job_id == 1) {
      EXPECT_EQ(js.final_status, JobStatus::Completed);
    }
  }
}

TEST(HyperbandPolicyTest, TopJobNeverEliminated) {
  std::vector<std::vector<double>> curves;
  for (int i = 0; i < 6; ++i) curves.push_back(saturating(0.1, 0.2 + 0.1 * i, 27, 0.3));
  auto trace = trace_from_curves(std::move(curves), 0.99, 3);
  HyperbandConfig config;
  config.min_rung = 3;
  config.eta = 3.0;
  HyperbandPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 6;
  const auto result = sim::replay_experiment(trace, policy, options);
  for (const auto& js : result.job_stats) {
    if (js.job_id == 6) {
      EXPECT_EQ(js.final_status, JobStatus::Completed);
    }
  }
}

TEST(HyperbandPolicyTest, BracketsCheckAtDifferentRungs) {
  // eta = 3, min_rung = 2, two brackets: bracket 0 (even job ids) has rungs
  // 2, 6, 18, ...; bracket 1 (odd ids) starts at rung 6. Strong and weak
  // jobs are paired within each bracket so eliminations are unambiguous.
  HyperbandConfig config;
  config.min_rung = 2;
  config.eta = 3.0;
  config.num_brackets = 2;
  config.min_rung_population = 1;
  HyperbandPolicy policy(config);

  auto trace = trace_from_curves(
      {std::vector<double>(8, 0.5),   // id 1, bracket 1, strong
       std::vector<double>(8, 0.6),   // id 2, bracket 0, strong
       std::vector<double>(8, 0.12),  // id 3, bracket 1, weak
       std::vector<double>(8, 0.1)},  // id 4, bracket 0, weak
      0.99, 2);
  sim::ReplayOptions options;
  options.machines = 4;
  const auto result = sim::replay_experiment(trace, policy, options);
  for (const auto& js : result.job_stats) {
    if (js.job_id == 4) {
      // Bracket 0's first rung is epoch 2: the weak even job dies there.
      EXPECT_EQ(js.final_status, JobStatus::Terminated);
      EXPECT_EQ(js.epochs_completed, 2u);
    } else if (js.job_id == 3) {
      // Bracket 1 does not check before epoch 6: the weak odd job survives
      // longer, then dies at its bracket's first rung.
      EXPECT_EQ(js.final_status, JobStatus::Terminated);
      EXPECT_EQ(js.epochs_completed, 6u);
    } else {
      EXPECT_EQ(js.final_status, JobStatus::Completed);
    }
  }
}

// ---------------------------------------------------------------------- TPE

TEST(TpeGeneratorTest, WarmupIsRandomThenAdapts) {
  workload::CifarWorkloadModel model;
  const auto gen = make_tpe_generator(model.space(), 1, /*warmup=*/10, 0.3, 16);
  EXPECT_EQ(gen->name(), "tpe");
  // Feed it synthetic feedback: quality is the model's own score.
  for (int i = 0; i < 60; ++i) {
    auto [id, config] = gen->create_job();
    gen->report_final_performance(id, model.quality(config).final_perf);
  }
  // After adaptation, new proposals should be better than random on average.
  double tpe_mean = 0.0;
  constexpr int kProbe = 40;
  for (int i = 0; i < kProbe; ++i) {
    auto [id, config] = gen->create_job();
    tpe_mean += model.quality(config).final_perf;
    gen->report_final_performance(id, model.quality(config).final_perf);
  }
  tpe_mean /= kProbe;

  const auto random_gen = make_random_generator(model.space(), 1);
  double random_mean = 0.0;
  for (int i = 0; i < kProbe; ++i) {
    random_mean += model.quality(random_gen->create_job().second).final_perf;
  }
  random_mean /= kProbe;
  EXPECT_GT(tpe_mean, random_mean);
}

TEST(TpeGeneratorTest, ProposalsStayInDomain) {
  workload::CifarWorkloadModel model;
  const auto gen = make_tpe_generator(model.space(), 2, /*warmup=*/5, 0.25, 8);
  util::Rng rng(3);
  for (int i = 0; i < 80; ++i) {
    auto [id, config] = gen->create_job();
    for (const auto& [name, domain] : model.space().dims()) {
      if (const auto* c = std::get_if<workload::ContinuousDomain>(&domain)) {
        EXPECT_GE(config.get_double(name), c->lo);
        EXPECT_LE(config.get_double(name), c->hi);
      } else if (const auto* d = std::get_if<workload::IntegerDomain>(&domain)) {
        EXPECT_GE(config.get_int(name), d->lo);
        EXPECT_LE(config.get_int(name), d->hi);
      }
    }
    gen->report_final_performance(id, rng.uniform());
  }
}

TEST(TpeGeneratorTest, HandlesCategoricalDimensions) {
  workload::HyperparameterSpace space;
  space.add("x", workload::ContinuousDomain{0.0, 1.0})
      .add("opt", workload::CategoricalDomain{{"good", "bad"}});
  const auto gen = make_tpe_generator(space, 4, /*warmup=*/10, 0.3, 16);
  // Reward "good" heavily.
  for (int i = 0; i < 80; ++i) {
    auto [id, config] = gen->create_job();
    const double perf = config.get_categorical("opt") == "good" ? 0.9 : 0.1;
    gen->report_final_performance(id, perf);
  }
  int good = 0;
  for (int i = 0; i < 40; ++i) {
    auto [id, config] = gen->create_job();
    if (config.get_categorical("opt") == "good") ++good;
    gen->report_final_performance(id, config.get_categorical("opt") == "good" ? 0.9 : 0.1);
  }
  EXPECT_GT(good, 24);  // clearly above the 50% of uniform sampling
}

// --------------------------------------------------- owner rules & targets

TEST(PopOwnerRuleTest, RuleOverridesEverything) {
  auto trace = trace_from_curves({saturating(0.3, 0.9, 24, 0.2)}, 0.99, 4);
  PopConfig config;
  config.tmax = SimTime::hours(24);
  config.predictor = make_default_predictor(1);
  config.owner_rule = [](const JobEvent& event) -> std::optional<JobDecision> {
    if (event.epoch == 7) return JobDecision::Terminate;  // not even a boundary
    return std::nullopt;
  };
  PopPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  ASSERT_EQ(result.job_stats.size(), 1u);
  EXPECT_EQ(result.job_stats[0].final_status, JobStatus::Terminated);
  EXPECT_EQ(result.job_stats[0].epochs_completed, 7u);
}

TEST(PopOwnerRuleTest, NulloptDefersToPop) {
  auto trace = trace_from_curves({saturating(0.3, 0.9, 24, 0.2)}, 0.85, 4);
  PopConfig config;
  config.tmax = SimTime::hours(24);
  config.predictor = make_default_predictor(1);
  int consulted = 0;
  config.owner_rule = [&consulted](const JobEvent&) -> std::optional<JobDecision> {
    ++consulted;
    return std::nullopt;
  };
  PopPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(consulted, 0);
}

TEST(PopDynamicTargetTest, TargetRisesWhenReached) {
  // Best-within-budget mode: the curve blows past the initial target; the
  // dynamic target should ratchet up behind it.
  auto trace = trace_from_curves({saturating(0.2, 0.9, 40, 0.15)}, /*target=*/0.4, 4);
  PopConfig config;
  config.tmax = SimTime::hours(24);
  config.predictor = make_default_predictor(2);
  config.dynamic_target_increment = 0.05;
  PopPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 1;
  options.stop_on_target = false;
  (void)sim::replay_experiment(trace, policy, options);
  EXPECT_GT(policy.target_raises(), 2u);
  EXPECT_GT(policy.current_target(), 0.85);  // chased the curve up
}

// -------------------------------------------- secondary metrics & criteria

TEST(SecondaryMetricTest, DeliveredThroughBothSubstrates) {
  workload::PtbLstmWorkloadModel model;
  const auto trace = workload::generate_trace(model, 4, 11);

  class Capture final : public DefaultPolicy {
   public:
    // Counted on ApplicationStat: it fires for every delivered stat, while
    // OnIterationFinish is skipped for a job's final epoch on the cluster
    // substrate (the job completes before the decision would matter).
    void on_application_stat(SchedulerOps& ops, const JobEvent& event) override {
      if (!std::isnan(event.secondary)) ++with_secondary;
      DefaultPolicy::on_application_stat(ops, event);
    }
    int with_secondary = 0;
  };

  {
    Capture policy;
    sim::ReplayOptions options;
    options.machines = 2;
    options.stop_on_target = false;
    (void)sim::replay_experiment(trace, policy, options);
    EXPECT_EQ(policy.with_secondary, static_cast<int>(4 * model.max_epochs()));
  }
  {
    Capture policy;
    cluster::ClusterOptions options;
    options.machines = 2;
    options.stop_on_target = false;
    options.overheads = cluster::zero_overhead_model();
    options.epoch_jitter_sigma = 0.0;
    (void)cluster::run_cluster_experiment(trace, policy, options);
    EXPECT_EQ(policy.with_secondary, static_cast<int>(4 * model.max_epochs()));
  }
}

TEST(SecondaryMetricTest, CifarEventsHaveNoSecondary) {
  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 2, 12);

  class Capture final : public DefaultPolicy {
   public:
    JobDecision on_iteration_finish(SchedulerOps& ops, const JobEvent& event) override {
      EXPECT_TRUE(std::isnan(event.secondary));
      return DefaultPolicy::on_iteration_finish(ops, event);
    }
  };
  Capture policy;
  sim::ReplayOptions options;
  options.machines = 2;
  options.stop_on_target = false;
  (void)sim::replay_experiment(trace, policy, options);
}

TEST(GlobalStopCriterionTest, ReplacesTargetCheck) {
  // The curve reaches 0.9 but the criterion wants epoch >= 20 too.
  auto trace = trace_from_curves({saturating(0.3, 0.95, 30, 0.3)}, /*target=*/0.5, 4);
  DefaultPolicy policy;
  sim::ReplayOptions options;
  options.machines = 1;
  options.stop_criterion = [](const JobEvent& event) {
    return event.perf >= 0.9 && event.epoch >= 20;
  };
  const auto result = sim::replay_experiment(trace, policy, options);
  ASSERT_TRUE(result.reached_target);
  // Without the criterion the run would stop at ~epoch 3 (perf 0.5); the
  // custom rule defers the stop to epoch 20.
  EXPECT_EQ(result.time_to_target, SimTime::seconds(20 * 60));
}

TEST(GlobalStopCriterionTest, WorksOnClusterSubstrate) {
  workload::PtbLstmWorkloadModel model;
  auto trace = workload::generate_trace(model, 30, 21);
  const double ppl_goal = model.normalize_ppl(110.0);
  // Require the joint perplexity+sparsity goal.
  bool achievable = false;
  for (const auto& job : trace.jobs) {
    for (std::size_t e = 0; e < job.curve.perf.size(); ++e) {
      if (job.curve.perf[e] >= ppl_goal && job.curve.secondary[e] >= 0.4) {
        achievable = true;
      }
    }
  }
  if (!achievable) GTEST_SKIP() << "no joint achiever in this draw";

  DefaultPolicy policy;
  cluster::ClusterOptions options;
  options.machines = 8;
  options.overheads = cluster::zero_overhead_model();
  options.stop_criterion = [&](const JobEvent& event) {
    return event.perf >= ppl_goal && !std::isnan(event.secondary) &&
           event.secondary >= 0.4;
  };
  const auto result = cluster::run_cluster_experiment(trace, policy, options);
  EXPECT_TRUE(result.reached_target);
}

// ------------------------------------------------- multi-round search loop

TEST(AdaptiveSearchLoopTest, FeedbackImprovesRounds) {
  workload::CifarWorkloadModel model;
  RunnerOptions options;
  options.machines = 4;
  options.max_experiment_time = SimTime::hours(200);
  options.stop_on_target = false;  // measure best-found, not time-to-target

  PolicySpec spec;
  spec.kind = PolicyKind::Pop;
  spec.pop.predictor = make_default_predictor(3);
  spec.pop.tmax = SimTime::hours(200);

  const auto tpe = make_tpe_generator(model.space(), 5, /*warmup=*/20, 0.25, 24);
  const auto tpe_result =
      run_adaptive_search(model, *tpe, spec, options, /*rounds=*/4,
                          /*configs_per_round=*/25, /*experiment_seed=*/1);
  ASSERT_EQ(tpe_result.rounds.size(), 4u);

  // Adaptivity shows up in the *mean* quality of explored configurations:
  // the last round's population must beat the (random-warmup) first round's.
  // (Best-of-round is a max statistic and far too noisy to compare.)
  auto mean_explored_best = [](const ExperimentResult& result) {
    double total = 0.0;
    std::size_t n = 0;
    for (const auto& js : result.job_stats) {
      if (js.epochs_completed > 0) {
        total += js.best_perf;
        ++n;
      }
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
  };
  EXPECT_GT(mean_explored_best(tpe_result.rounds.back()),
            mean_explored_best(tpe_result.rounds.front()));
  // Bookkeeping coherence across rounds.
  EXPECT_GT(tpe_result.best_perf, 0.0);
  util::SimTime summed = util::SimTime::zero();
  for (const auto& r : tpe_result.rounds) summed += r.total_time;
  EXPECT_EQ(summed.to_seconds(), tpe_result.total_time.to_seconds());
}

TEST(AdaptiveSearchLoopTest, StopsEarlyOnTarget) {
  workload::CifarWorkloadModel model;
  RunnerOptions options;
  options.machines = 4;
  options.max_experiment_time = SimTime::hours(200);
  options.stop_on_target = true;

  PolicySpec spec;
  spec.kind = PolicyKind::Default;

  const auto gen = make_random_generator(model.space(), 1234);
  const auto result = run_adaptive_search(model, *gen, spec, options, /*rounds=*/8,
                                          /*configs_per_round=*/40, 2);
  if (result.reached_target) {
    EXPECT_TRUE(result.rounds.back().reached_target);
    EXPECT_LE(result.rounds.size(), 8u);
  }
  EXPECT_GT(result.total_time.to_seconds(), 0.0);
}

}  // namespace
}  // namespace hyperdrive::core
