// System-wide invariants, swept over every (policy x workload x substrate)
// combination with parameterized gtest. These are the properties any
// scheduling run must satisfy regardless of policy cleverness.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/experiment_runner.hpp"
#include "core/policies/hyperband_policy.hpp"
#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/ptb_lstm_model.hpp"

namespace hyperdrive::core {
namespace {

enum class Pol { Default, Bandit, EarlyTerm, Pop, Hyperband };
enum class Wl { Cifar, Lunar, Ptb };
enum class Sub { Replay, Cluster };

using Combo = std::tuple<Pol, Wl, Sub>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto [pol, wl, sub] = info.param;
  std::string s;
  switch (pol) {
    case Pol::Default: s += "default"; break;
    case Pol::Bandit: s += "bandit"; break;
    case Pol::EarlyTerm: s += "earlyterm"; break;
    case Pol::Pop: s += "pop"; break;
    case Pol::Hyperband: s += "hyperband"; break;
  }
  s += '_';
  switch (wl) {
    case Wl::Cifar: s += "cifar"; break;
    case Wl::Lunar: s += "lunar"; break;
    case Wl::Ptb: s += "ptb"; break;
  }
  s += '_';
  s += std::get<2>(info.param) == Sub::Replay ? "replay" : "cluster";
  return s;
}

std::unique_ptr<workload::WorkloadModel> make_model(Wl wl) {
  switch (wl) {
    case Wl::Cifar: return std::make_unique<workload::CifarWorkloadModel>();
    case Wl::Lunar: return std::make_unique<workload::LunarWorkloadModel>();
    case Wl::Ptb: return std::make_unique<workload::PtbLstmWorkloadModel>();
  }
  return nullptr;
}

std::unique_ptr<SchedulingPolicy> make_test_policy(Pol pol, std::uint64_t seed) {
  if (pol == Pol::Hyperband) return std::make_unique<HyperbandPolicy>();
  PolicySpec spec;
  switch (pol) {
    case Pol::Default: spec.kind = PolicyKind::Default; break;
    case Pol::Bandit: spec.kind = PolicyKind::Bandit; break;
    case Pol::EarlyTerm: spec.kind = PolicyKind::EarlyTerm; break;
    case Pol::Pop: spec.kind = PolicyKind::Pop; break;
    case Pol::Hyperband: break;
  }
  const auto predictor = make_default_predictor(seed);
  spec.earlyterm.predictor = predictor;
  spec.pop.predictor = predictor;
  spec.pop.tmax = util::SimTime::hours(96);
  return make_policy(spec);
}

ExperimentResult run_combo(const Combo& combo, const workload::Trace& trace,
                           std::uint64_t seed) {
  const auto [pol, wl, sub] = combo;
  const auto policy = make_test_policy(pol, seed);
  if (sub == Sub::Replay) {
    sim::ReplayOptions options;
    options.machines = 3;
    options.max_experiment_time = util::SimTime::hours(200);
    return sim::replay_experiment(trace, *policy, options);
  }
  cluster::ClusterOptions options;
  options.machines = 3;
  options.max_experiment_time = util::SimTime::hours(200);
  options.seed = seed;
  return cluster::run_cluster_experiment(trace, *policy, options);
}

class SchedulingInvariantsTest : public ::testing::TestWithParam<Combo> {};

TEST_P(SchedulingInvariantsTest, HoldOnASmallExperiment) {
  const auto [pol, wl, sub] = GetParam();
  const auto model = make_model(wl);
  const auto trace = workload::generate_trace(*model, 25, 314159);
  const auto result = run_combo(GetParam(), trace, 1);

  // 1. No machine oversubscription: busy time <= wall time x machines.
  EXPECT_LE(result.total_machine_time.to_seconds(),
            result.total_time.to_seconds() * 3.0 + 1e-6);

  // 2. Per-job sanity.
  std::size_t suspends = 0, terminated = 0, completed = 0, touched = 0;
  for (const auto& js : result.job_stats) {
    EXPECT_LE(js.epochs_completed, trace.max_epochs);
    EXPECT_GE(js.execution_time.to_seconds(), 0.0);
    EXPECT_GE(js.best_perf, 0.0);
    EXPECT_LE(js.best_perf, 1.0);
    suspends += js.times_suspended;
    if (js.final_status == JobStatus::Terminated) ++terminated;
    if (js.final_status == JobStatus::Completed) ++completed;
    if (js.epochs_completed > 0) ++touched;
    // Machine time is at least the training time implied by the epochs.
    if (js.epochs_completed > 0) {
      EXPECT_GT(js.execution_time.to_seconds(), 0.0);
    }
  }

  // 3. Counters agree with per-job stats.
  EXPECT_EQ(result.suspends, suspends);
  EXPECT_EQ(result.terminations, terminated);
  EXPECT_GE(result.jobs_started, touched);

  // 4. Target bookkeeping.
  if (result.reached_target) {
    EXPECT_GE(result.best_perf, trace.target_performance);
    EXPECT_LE(result.time_to_target.to_seconds(), result.total_time.to_seconds() + 1e-6);
    EXPECT_NE(result.winning_job, 0u);
  } else {
    // Without a target hit the experiment ran everything it would start.
    EXPECT_LT(result.best_perf, trace.target_performance);
  }

  // 5. Suspend-sample accounting (cluster only; replay has zero overhead).
  if (sub == Sub::Cluster) {
    EXPECT_EQ(result.suspend_samples.size(), result.suspends);
  } else {
    EXPECT_TRUE(result.suspend_samples.empty());
  }
}

TEST_P(SchedulingInvariantsTest, RunsAreDeterministic) {
  const auto [pol, wl, sub] = GetParam();
  const auto model = make_model(wl);
  const auto trace = workload::generate_trace(*model, 15, 2718);
  const auto a = run_combo(GetParam(), trace, 7);
  const auto b = run_combo(GetParam(), trace, 7);
  EXPECT_EQ(a.reached_target, b.reached_target);
  EXPECT_EQ(a.time_to_target.to_seconds(), b.time_to_target.to_seconds());
  EXPECT_EQ(a.total_time.to_seconds(), b.total_time.to_seconds());
  EXPECT_EQ(a.suspends, b.suspends);
  EXPECT_EQ(a.terminations, b.terminations);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchedulingInvariantsTest,
    ::testing::Combine(::testing::Values(Pol::Default, Pol::Bandit, Pol::EarlyTerm,
                                         Pol::Pop, Pol::Hyperband),
                       ::testing::Values(Wl::Cifar, Wl::Lunar, Wl::Ptb),
                       ::testing::Values(Sub::Replay, Sub::Cluster)),
    combo_name);

}  // namespace
}  // namespace hyperdrive::core
