// Behavioural tests for the four SAPs on handcrafted traces where the right
// decision is unambiguous.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment_runner.hpp"
#include "sim/trace_replay.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

/// A trace with explicit per-job curves.
workload::Trace trace_from_curves(std::vector<std::vector<double>> curves, double target,
                                  double kill_threshold, std::size_t boundary) {
  workload::Trace trace;
  trace.workload_name = "handmade";
  trace.target_performance = target;
  trace.kill_threshold = kill_threshold;
  trace.evaluation_boundary = boundary;
  trace.max_epochs = 0;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    job.curve.perf = std::move(curves[i]);
    trace.max_epochs = std::max(trace.max_epochs, job.curve.perf.size());
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

std::vector<double> ramp(double from, double to, std::size_t n) {
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = from + (to - from) * static_cast<double>(i + 1) / static_cast<double>(n);
  }
  return ys;
}

std::vector<double> flat(double v, std::size_t n) { return std::vector<double>(n, v); }

/// Realistic saturating learning curve: from + (to - from) * (1 - e^{-k e}).
std::vector<double> saturating(double from, double to, std::size_t n, double k) {
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = from + (to - from) * (1.0 - std::exp(-k * static_cast<double>(i + 1)));
  }
  return ys;
}

JobStatus final_status(const ExperimentResult& result, JobId job) {
  for (const auto& js : result.job_stats) {
    if (js.job_id == job) return js.final_status;
  }
  ADD_FAILURE() << "job not found";
  return JobStatus::Pending;
}

const JobRunStats& stats_of(const ExperimentResult& result, JobId job) {
  for (const auto& js : result.job_stats) {
    if (js.job_id == job) return js;
  }
  throw std::out_of_range("job not found");
}

// ---------------------------------------------------------------- Default --

TEST(DefaultPolicyTest, NeverTerminatesAnything) {
  const auto trace =
      trace_from_curves({flat(0.1, 8), ramp(0.1, 0.6, 8)}, 0.99, 0.0, 2);
  DefaultPolicy policy;
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(result.terminations, 0u);
  EXPECT_EQ(result.suspends, 0u);
  EXPECT_EQ(final_status(result, 1), JobStatus::Completed);
  EXPECT_EQ(final_status(result, 2), JobStatus::Completed);
}

TEST(DefaultPolicyTest, FillsAllMachines) {
  const auto trace = trace_from_curves(
      {flat(0.1, 4), flat(0.1, 4), flat(0.1, 4), flat(0.1, 4)}, 0.99, 0.0, 2);
  DefaultPolicy policy;
  sim::ReplayOptions options;
  options.machines = 4;
  const auto result = sim::replay_experiment(trace, policy, options);
  // All four run in parallel: wall time = one job's duration.
  EXPECT_EQ(result.total_time, SimTime::seconds(4 * 60));
}

// ----------------------------------------------------------------- Bandit --

TEST(BanditPolicyTest, KillsJobsFarBehindGlobalBest) {
  // Job 1 rockets to 0.8; job 2 crawls at 0.1. With epsilon = 0.5, job 2
  // dies at its first boundary once globalBest > 0.15.
  const auto trace =
      trace_from_curves({ramp(0.4, 0.8, 12), flat(0.1, 12)}, 0.99, 0.0, 4);
  BanditPolicy policy;
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(final_status(result, 1), JobStatus::Completed);
  EXPECT_EQ(final_status(result, 2), JobStatus::Terminated);
  EXPECT_EQ(stats_of(result, 2).epochs_completed, 4u);  // first boundary
}

TEST(BanditPolicyTest, KeepsJobsWithinEpsilonOfBest) {
  // Job 2 is behind but within 1.5x: 0.6 * 1.5 = 0.9 > 0.8.
  const auto trace =
      trace_from_curves({flat(0.8, 12), flat(0.6, 12)}, 0.99, 0.0, 4);
  BanditPolicy policy;
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(final_status(result, 2), JobStatus::Completed);
  EXPECT_EQ(result.terminations, 0u);
}

TEST(BanditPolicyTest, ChecksOnlyAtBoundaries) {
  // Job 2 would fail the test at epoch 1, but the boundary is 6.
  const auto trace =
      trace_from_curves({flat(0.8, 12), flat(0.1, 12)}, 0.99, 0.0, 6);
  BanditPolicy policy;
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(stats_of(result, 2).epochs_completed, 6u);
}

TEST(BanditPolicyTest, EpsilonConfigurable) {
  // With a huge epsilon nothing ever dies.
  const auto trace =
      trace_from_curves({flat(0.8, 8), flat(0.05, 8)}, 0.99, 0.0, 2);
  BanditConfig config;
  config.epsilon = 50.0;
  BanditPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(result.terminations, 0u);
}

TEST(BanditPolicyTest, UsesBestNotLatestPerformance) {
  // Job 2 peaked at 0.7 then regressed; its *best* keeps it alive.
  std::vector<double> decayed = ramp(0.3, 0.7, 6);
  for (int i = 0; i < 6; ++i) decayed.push_back(0.3);
  const auto trace =
      trace_from_curves({flat(0.8, 12), std::move(decayed)}, 0.99, 0.0, 12);
  BanditPolicy policy;
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(final_status(result, 2), JobStatus::Completed);
}

// -------------------------------------------------------------- EarlyTerm --

EarlyTermConfig et_config(std::size_t boundary = 4) {
  EarlyTermConfig config;
  config.boundary = boundary;
  config.predictor = make_default_predictor(7);
  return config;
}

TEST(EarlyTermPolicyTest, RequiresPredictor) {
  EXPECT_THROW(EarlyTermPolicy(EarlyTermConfig{}), std::invalid_argument);
}

TEST(EarlyTermPolicyTest, TerminatesHopelesslyFlatJob) {
  // Job 1 reaches 0.8 fast; job 2 is pinned at 0.1 — P(y_max >= 0.8) ~ 0.
  const auto trace =
      trace_from_curves({ramp(0.5, 0.8, 24), flat(0.1, 24)}, 0.99, 0.0, 4);
  EarlyTermPolicy policy(et_config());
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(final_status(result, 2), JobStatus::Terminated);
  EXPECT_EQ(final_status(result, 1), JobStatus::Completed);
  EXPECT_GT(policy.predictions_made(), 0u);
}

TEST(EarlyTermPolicyTest, KeepsJobsTrendingTowardBest) {
  // Both jobs climb toward similar asymptotes; neither should die.
  const auto trace = trace_from_curves(
      {ramp(0.3, 0.75, 24), ramp(0.25, 0.7, 24)}, 0.99, 0.0, 4);
  EarlyTermPolicy policy(et_config());
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(result.terminations, 0u);
}

TEST(EarlyTermPolicyTest, GlobalBestHolderNeverSelfTerminates) {
  const auto trace = trace_from_curves({ramp(0.2, 0.6, 24)}, 0.99, 0.0, 4);
  EarlyTermPolicy policy(et_config());
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(final_status(result, 1), JobStatus::Completed);
}

// -------------------------------------------------------------------- POP --

PopConfig pop_config(std::size_t boundary = 4) {
  PopConfig config;
  config.boundary = boundary;
  config.tmax = SimTime::hours(24);
  config.predictor = make_default_predictor(11);
  return config;
}

TEST(PopPolicyTest, RequiresPredictor) {
  EXPECT_THROW(PopPolicy(PopConfig{}), std::invalid_argument);
}

TEST(PopPolicyTest, KillThresholdCullsNonLearnersAtFirstBoundary) {
  // Kill threshold 0.15: job 2 never exceeds it.
  const auto trace = trace_from_curves(
      {saturating(0.3, 0.8, 24, 0.2), flat(0.1, 24)}, 0.99, 0.15, 4);
  PopPolicy policy(pop_config());
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(final_status(result, 2), JobStatus::Terminated);
  EXPECT_EQ(stats_of(result, 2).epochs_completed, 4u);
  // The kill decision needed no prediction for job 2 at that boundary.
}

TEST(PopPolicyTest, PrunesLowConfidenceJobs) {
  // Job 2 plateaus at 0.3 with target 0.9: confidence ~ 0 -> pruned.
  std::vector<double> plateau = ramp(0.1, 0.3, 8);
  for (int i = 0; i < 16; ++i) plateau.push_back(0.3);
  const auto trace = trace_from_curves(
      {saturating(0.3, 0.95, 24, 0.2), std::move(plateau)}, 0.9, 0.0, 4);
  PopPolicy policy(pop_config());
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(final_status(result, 2), JobStatus::Terminated);
}

TEST(PopPolicyTest, ReachesTargetViaPromisingJob) {
  const auto trace = trace_from_curves(
      {saturating(0.3, 0.95, 24, 0.15), flat(0.1, 24), flat(0.1, 24)}, 0.9, 0.15, 4);
  PopPolicy policy(pop_config());
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.winning_job, 1u);
}

TEST(PopPolicyTest, ConfidenceAndErtAreWellFormed) {
  const auto trace = trace_from_curves(
      {saturating(0.3, 0.96, 24, 0.2), saturating(0.2, 0.5, 24, 0.2)}, 0.9, 0.0, 4);
  PopPolicy policy(pop_config());
  sim::ReplayOptions options;
  options.machines = 2;
  options.stop_on_target = false;
  (void)sim::replay_experiment(trace, policy, options);
  for (JobId id = 1; id <= 2; ++id) {
    const double p = policy.confidence(id);
    if (!std::isnan(p)) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  // The strong climber should have earned high confidence of reaching 0.9.
  EXPECT_GT(policy.confidence(1), 0.5);
  EXPECT_LT(policy.expected_remaining_time(1), SimTime::hours(24));
}

TEST(PopPolicyTest, SnapshotsRecordClassificationRounds) {
  const auto trace = trace_from_curves({saturating(0.3, 0.92, 24, 0.2),
                                        saturating(0.25, 0.88, 24, 0.2), flat(0.3, 24)},
                                       0.85, 0.0, 4);
  PopConfig config = pop_config();
  config.record_allocation_curves = true;
  PopPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 2;
  options.stop_on_target = false;
  (void)sim::replay_experiment(trace, policy, options);

  ASSERT_GT(policy.snapshots().size(), 0u);
  for (const auto& snap : policy.snapshots()) {
    EXPECT_LE(snap.promising_jobs, snap.active_jobs);
    EXPECT_GE(snap.threshold, 0.0);
    EXPECT_LE(snap.threshold, 1.0);
    // Desired slots are non-increasing, deserved non-decreasing in p.
    for (std::size_t i = 1; i < snap.curves.size(); ++i) {
      EXPECT_LE(snap.curves[i][0], snap.curves[i - 1][0]);   // p sorted desc
      EXPECT_GE(snap.curves[i][1], snap.curves[i - 1][1]);   // desired grows as p drops
      EXPECT_LE(snap.curves[i][2], snap.curves[i - 1][2]);   // deserved shrinks
    }
  }
}

TEST(PopPolicyTest, OpportunisticRotationSharesTheMachine) {
  // Two mediocre climbers, one machine: neither is confident enough for a
  // dedicated slot, so POP rotates between them rather than letting the
  // first hog the machine to completion. Pruning is disabled to isolate the
  // rotation behaviour.
  const auto trace = trace_from_curves(
      {saturating(0.2, 0.55, 24, 0.2), saturating(0.2, 0.5, 24, 0.2)}, 0.95, 0.0, 4);
  PopConfig rot_config = pop_config();
  rot_config.prune_confidence = 0.0;
  PopPolicy policy(rot_config);
  sim::ReplayOptions options;
  options.machines = 1;
  options.stop_on_target = false;
  const auto result = sim::replay_experiment(trace, policy, options);
  // Job 2 must have run some epochs before job 1 finished all 24.
  EXPECT_GT(result.suspends, 0u);
}

TEST(PopPolicyTest, RotationDisabledAblation) {
  const auto trace = trace_from_curves(
      {saturating(0.2, 0.55, 24, 0.2), saturating(0.2, 0.5, 24, 0.2)}, 0.95, 0.0, 4);
  PopConfig config = pop_config();
  config.prune_confidence = 0.0;
  config.rotate_opportunistic = false;
  PopPolicy policy(config);
  sim::ReplayOptions options;
  options.machines = 1;
  options.stop_on_target = false;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(result.suspends, 0u);
}

TEST(PopPolicyTest, PromisingJobsGetPriorityLabels) {
  // Three jobs, one machine. The strong climber, once suspended by rotation
  // or finished, must be preferred over FIFO order.
  const auto trace = trace_from_curves({saturating(0.25, 0.95, 24, 0.2),
                                        saturating(0.2, 0.45, 24, 0.2),
                                        saturating(0.2, 0.4, 24, 0.2)},
                                       0.9, 0.0, 4);
  PopPolicy policy(pop_config());
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.winning_job, 1u);
}

// ------------------------------------------------------------------ Specs --

TEST(PolicySpecTest, MakePolicyProducesCorrectKinds) {
  PolicySpec spec;
  spec.kind = PolicyKind::Default;
  EXPECT_EQ(make_policy(spec)->name(), "default");
  spec.kind = PolicyKind::Bandit;
  EXPECT_EQ(make_policy(spec)->name(), "bandit");
  spec.kind = PolicyKind::EarlyTerm;
  spec.earlyterm.predictor = make_default_predictor(1);
  EXPECT_EQ(make_policy(spec)->name(), "earlyterm");
  spec.kind = PolicyKind::Pop;
  spec.pop.predictor = make_default_predictor(1);
  EXPECT_EQ(make_policy(spec)->name(), "pop");
}

TEST(PolicySpecTest, ToStringNames) {
  EXPECT_EQ(to_string(PolicyKind::Default), "default");
  EXPECT_EQ(to_string(PolicyKind::Bandit), "bandit");
  EXPECT_EQ(to_string(PolicyKind::EarlyTerm), "earlyterm");
  EXPECT_EQ(to_string(PolicyKind::Pop), "pop");
}

}  // namespace
}  // namespace hyperdrive::core
