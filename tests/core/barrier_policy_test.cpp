#include "core/policies/barrier_policy.hpp"

#include <gtest/gtest.h>

#include "core/policies/bandit_policy.hpp"
#include "core/policies/default_policy.hpp"
#include "sim/trace_replay.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

workload::Trace flat_jobs(std::size_t jobs, std::size_t epochs, double perf_step) {
  workload::Trace trace;
  trace.workload_name = "flat";
  trace.target_performance = 0.99;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    job.curve.perf.assign(epochs, 0.2 + perf_step * static_cast<double>(i));
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

TEST(BarrierPolicyTest, RequiresInnerPolicy) {
  EXPECT_THROW(BarrierPolicy(nullptr), std::invalid_argument);
}

TEST(BarrierPolicyTest, RotatesBreadthFirst) {
  // 4 jobs, 1 machine, barrier every 2 epochs: every job should progress in
  // 2-epoch rounds instead of the first job hogging the machine.
  const auto trace = flat_jobs(4, 8, 0.01);
  BarrierPolicy policy(std::make_unique<DefaultPolicy>(), /*epochs_per_round=*/2);
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);

  // All jobs complete; each was suspended at rounds 2, 4, 6 (the epoch-8
  // "suspend" completes it instead).
  for (const auto& js : result.job_stats) {
    EXPECT_EQ(js.final_status, JobStatus::Completed);
    EXPECT_EQ(js.epochs_completed, 8u);
    EXPECT_EQ(js.times_suspended, 3u);
  }
  // Breadth-first: by the time the first job reaches epoch 3 (its second
  // round), every other job has already run 2 epochs. Verify via total
  // suspends: 4 jobs x 3 rounds each.
  EXPECT_EQ(result.suspends, 12u);
}

TEST(BarrierPolicyTest, InnerTerminationStillApplies) {
  // Wrap Bandit: weak jobs must still be eliminated at their boundary even
  // though the barrier would merely have suspended them.
  auto trace = flat_jobs(2, 8, 0.0);
  trace.jobs[0].curve.perf.assign(8, 0.8);   // strong
  trace.jobs[1].curve.perf.assign(8, 0.05);  // weak: 0.075 < 0.8
  trace.evaluation_boundary = 2;

  BarrierPolicy policy(std::make_unique<BanditPolicy>(), /*epochs_per_round=*/2);
  sim::ReplayOptions options;
  options.machines = 2;
  const auto result = sim::replay_experiment(trace, policy, options);
  for (const auto& js : result.job_stats) {
    if (js.job_id == 2) {
      EXPECT_EQ(js.final_status, JobStatus::Terminated);
    } else {
      EXPECT_EQ(js.final_status, JobStatus::Completed);
    }
  }
}

TEST(BarrierPolicyTest, NoSuspendWhenNothingWaits) {
  // Single job, single machine: the barrier has no one to yield to.
  const auto trace = flat_jobs(1, 6, 0.0);
  BarrierPolicy policy(std::make_unique<DefaultPolicy>(), 2);
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_EQ(result.suspends, 0u);
  EXPECT_EQ(result.job_stats[0].final_status, JobStatus::Completed);
}

TEST(BarrierPolicyTest, DefaultsRoundLengthToWorkloadBoundary) {
  const auto trace = flat_jobs(2, 8, 0.0);  // boundary = 2
  BarrierPolicy policy(std::make_unique<DefaultPolicy>());
  sim::ReplayOptions options;
  options.machines = 1;
  const auto result = sim::replay_experiment(trace, policy, options);
  EXPECT_GT(result.suspends, 0u);  // rotated at the workload's boundary
}

TEST(BarrierPolicyTest, BarrierCostsWallClockVsDepthFirst) {
  // Rotation is not free under suspend overheads — the §4.2 note that "some
  // SAPs may prefer" barriers acknowledges a trade-off. In the overhead-free
  // replay, total serialized time must be identical.
  const auto trace = flat_jobs(3, 6, 0.0);
  sim::ReplayOptions options;
  options.machines = 1;

  BarrierPolicy barrier(std::make_unique<DefaultPolicy>(), 2);
  const auto rotated = sim::replay_experiment(trace, barrier, options);
  DefaultPolicy depth_first;
  const auto straight = sim::replay_experiment(trace, depth_first, options);
  EXPECT_EQ(rotated.total_time, straight.total_time);
  EXPECT_EQ(rotated.total_machine_time, straight.total_machine_time);
}

}  // namespace
}  // namespace hyperdrive::core
