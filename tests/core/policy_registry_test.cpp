// PolicyRegistry tests (DESIGN.md §13):
//   * PolicyParams parsing, typed getters and unknown-key rejection;
//   * the registry's built-in name set and construction errors;
//   * golden-trace byte-identity: every pre-registry policy built by name is
//     indistinguishable — event stream and results — from the old direct
//     PolicySpec construction, barrier-wrapped or not;
//   * ASHA/PBT determinism: a parallel sweep over 30 fresh-noise seeds is
//     byte-identical to the serial one;
//   * PBT exploit/explore: clones happen on the cluster substrate, the clone
//     resumes from the donor's epoch, hyperparameters are perturbed, and no
//     target-reaching configuration is wrongly killed.
#include "core/policy_registry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "core/experiment_runner.hpp"
#include "core/generators/hyperparameter_generator.hpp"
#include "core/policies/barrier_policy.hpp"
#include "core/policies/hyperband_policy.hpp"
#include "core/sweep_engine.hpp"
#include "obs/sink.hpp"
#include "workload/cifar_model.hpp"
#include "workload/trace_tools.hpp"

namespace hyperdrive::core {
namespace {

TEST(PolicyParamsTest, ParsesAndRoundTrips) {
  const auto params = PolicyParams::parse(std::vector<std::string>{"eta=3", "rungs=4"});
  EXPECT_EQ(params.size(), 2u);
  EXPECT_EQ(params.to_string(), "eta=3 rungs=4");
  EXPECT_DOUBLE_EQ(params.get_double("eta", 2.0), 3.0);
  EXPECT_EQ(params.get_size("rungs", 1), 4u);
  EXPECT_TRUE(params.unconsumed().empty());
}

TEST(PolicyParamsTest, RejectsMalformedTokens) {
  EXPECT_THROW((void)PolicyParams::parse(std::vector<std::string>{"eta"}),
               std::invalid_argument);
  EXPECT_THROW((void)PolicyParams::parse(std::vector<std::string>{"=3"}),
               std::invalid_argument);
  EXPECT_THROW((void)PolicyParams::parse(std::vector<std::string>{"eta=3", "eta=4"}),
               std::invalid_argument);
  const auto params = PolicyParams::parse(std::vector<std::string>{"eta=x"});
  EXPECT_THROW((void)params.get_double("eta", 1.0), std::invalid_argument);
}

TEST(PolicyRegistryTest, BuiltinsRegisteredInHelpOrder) {
  const auto& registry = PolicyRegistry::instance();
  const std::vector<std::string> expected = {"pop",       "bandit", "earlyterm",
                                             "default",   "hyperband", "asha",
                                             "pbt"};
  EXPECT_EQ(registry.names(), expected);
  EXPECT_EQ(registry.name_list('|'), "pop|bandit|earlyterm|default|hyperband|asha|pbt");
  for (const auto& name : expected) EXPECT_TRUE(registry.has(name));
  EXPECT_FALSE(registry.has("nope"));
}

TEST(PolicyRegistryTest, EveryBuiltinConstructsUnderItsOwnName) {
  for (const auto& name : PolicyRegistry::instance().names()) {
    const auto policy = make_registry_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyRegistryTest, UnknownNameAndUnknownKeyThrow) {
  EXPECT_THROW((void)make_registry_policy("nope"), std::invalid_argument);
  EXPECT_THROW(
      (void)make_registry_policy("pop", PolicyParams::parse(std::string("typo=1"))),
      std::invalid_argument);
  // A key another policy accepts is still rejected here.
  EXPECT_THROW(
      (void)make_registry_policy("default", PolicyParams::parse(std::string("eta=3"))),
      std::invalid_argument);
}

TEST(PolicyRegistryTest, ParamsReachTheFactory) {
  // asha accepts eta; a bad value fails loudly at construction.
  EXPECT_NO_THROW((void)make_registry_policy("asha", PolicyParams::parse(
                                                         std::string("eta=4"))));
  EXPECT_THROW((void)make_registry_policy(
                   "asha", PolicyParams::parse(std::string("eta=fast"))),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Byte-identity: registry construction vs the old direct construction.

/// The pre-registry standard wiring: one default predictor shared by the
/// predictor-backed policies, POP horizon = tmax.
std::unique_ptr<SchedulingPolicy> direct_policy(PolicyKind kind, std::uint64_t seed,
                                                util::SimTime tmax) {
  PolicySpec spec;
  spec.kind = kind;
  const auto predictor = make_default_predictor(seed);
  spec.earlyterm.predictor = predictor;
  spec.pop.predictor = predictor;
  spec.pop.tmax = tmax;
  return make_policy(spec);
}

/// Run `policy` on the high-fidelity cluster and render the full typed event
/// stream plus the headline results as one comparable string.
std::string run_journal(const workload::Trace& trace,
                        std::unique_ptr<SchedulingPolicy> policy) {
  RunnerOptions options;
  options.substrate = Substrate::Cluster;
  options.machines = 3;
  options.seed = 11;
  options.max_experiment_time = util::SimTime::hours(96);
  obs::RecordingSink sink;
  options.obs.sink = &sink;
  const auto result = run_experiment(trace, *policy, options);
  std::ostringstream out;
  for (const auto& event : sink.events) out << obs::render_line(event) << '\n';
  out << result.reached_target << ' ' << result.time_to_target.to_seconds() << ' '
      << result.total_machine_time.to_seconds() << ' ' << result.terminations << ' '
      << result.jobs_started << '\n';
  return out.str();
}

TEST(PolicyRegistryTest, RegistryMatchesDirectConstructionByteForByte) {
  workload::CifarWorkloadModel model;
  const auto trace = workload::reachable_trace(model, 20, 321);
  const auto tmax = util::SimTime::hours(48);
  const std::pair<std::string, PolicyKind> pairs[] = {
      {"default", PolicyKind::Default},
      {"bandit", PolicyKind::Bandit},
      {"earlyterm", PolicyKind::EarlyTerm},
      {"pop", PolicyKind::Pop},
  };
  for (const auto& [name, kind] : pairs) {
    EXPECT_EQ(run_journal(trace, make_standard_policy(name, 7, tmax)),
              run_journal(trace, direct_policy(kind, 7, tmax)))
        << name;
  }
  // hyperband never had a PolicySpec kind; its direct form is the config
  // struct with defaults.
  EXPECT_EQ(run_journal(trace, make_standard_policy("hyperband", 7, tmax)),
            run_journal(trace, std::make_unique<HyperbandPolicy>(HyperbandConfig{})));
}

TEST(PolicyRegistryTest, BarrierWrapsAnyRegistryPolicyByteForByte) {
  workload::CifarWorkloadModel model;
  const auto trace = workload::reachable_trace(model, 20, 654);
  const auto tmax = util::SimTime::hours(48);
  for (const auto& name : {"pop", "bandit", "hyperband", "asha"}) {
    EXPECT_EQ(run_journal(trace, std::make_unique<BarrierPolicy>(
                                     make_standard_policy(name, 5, tmax))),
              run_journal(trace, std::make_unique<BarrierPolicy>(
                                     make_standard_policy(name, 5, tmax))))
        << name;
  }
  // And the wrapper around a registry-built POP equals the wrapper around
  // the direct construction (the CLI --barrier path).
  EXPECT_EQ(run_journal(trace, std::make_unique<BarrierPolicy>(
                                   make_standard_policy("pop", 5, tmax))),
            run_journal(trace, std::make_unique<BarrierPolicy>(
                                   direct_policy(PolicyKind::Pop, 5, tmax))));
}

// ---------------------------------------------------------------------------
// ASHA / PBT golden determinism.

SweepSpec zoo_sweep(std::shared_ptr<const workload::WorkloadModel> model) {
  SweepSpec spec;
  spec.name = "zoo_determinism";
  const auto policy_ax = spec.add_policy_axis({"asha", "pbt"});
  const auto repeat_ax = spec.add_repeat_axis(30);
  spec.trace = [model, repeat_ax](const SweepCell& cell) {
    return workload::reachable_trace(*model, 16, 9000 + cell.at(repeat_ax) * 13);
  };
  spec.policy = [policy_ax, repeat_ax](const SweepCell& cell) {
    const std::vector<std::string> names = {"asha", "pbt"};
    return make_standard_policy(names[cell.at(policy_ax)], cell.at(repeat_ax));
  };
  spec.options = [model](const SweepCell& cell) {
    RunnerOptions options;
    options.substrate = Substrate::TraceReplay;
    options.machines = 3;
    options.seed = cell.at(1);
    options.max_experiment_time = util::SimTime::hours(96);
    options.explore = make_model_explore(model);
    return options;
  };
  return spec;
}

TEST(SchedulerZooTest, AshaAndPbtAreDeterministicAcrossThreadCounts) {
  const auto model = std::make_shared<workload::CifarWorkloadModel>();
  const auto serial = run_sweep(zoo_sweep(model), 1);
  const auto parallel = run_sweep(zoo_sweep(model), 8);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

// ---------------------------------------------------------------------------
// PBT exploit/explore semantics.

TEST(SchedulerZooTest, ExploreSplicesDonorPrefixAndPerturbsConfig) {
  const auto model = std::make_shared<workload::CifarWorkloadModel>();
  const auto trace = workload::generate_trace(*model, 4, 42);
  const auto explore = make_model_explore(model);
  const auto& target = trace.jobs[0];
  const auto& donor = trace.jobs[1];
  const std::size_t epoch = 5;
  const auto clone = explore(target, donor, epoch, /*stream=*/77);
  EXPECT_EQ(clone.job_id, target.job_id);
  // The donor's observed epochs are ground truth for the clone (same
  // weights), so the curve is continuous at the splice point.
  for (std::size_t e = 0; e < epoch; ++e) {
    EXPECT_DOUBLE_EQ(clone.curve.perf[e], donor.curve.perf[e]) << e;
  }
  // The hyperparameters moved (Gaussian perturbation of every continuous
  // dimension — a no-op draw has measure zero).
  EXPECT_NE(clone.config.to_string(), donor.config.to_string());
  // Deterministic in the stream, different across streams.
  EXPECT_EQ(explore(target, donor, epoch, 77).config.to_string(),
            clone.config.to_string());
  EXPECT_NE(explore(target, donor, epoch, 78).config.to_string(),
            clone.config.to_string());
}

TEST(SchedulerZooTest, PbtClonesOnClusterAndResumesFromDonorEpoch) {
  const auto model = std::make_shared<workload::CifarWorkloadModel>();
  const auto trace = workload::reachable_trace(*model, 16, 777);
  auto policy = make_standard_policy("pbt", 3);
  RunnerOptions options;
  options.substrate = Substrate::Cluster;
  options.machines = 4;
  options.seed = 3;
  options.max_experiment_time = util::SimTime::hours(96);
  options.explore = make_model_explore(model);
  obs::RecordingSink sink;
  options.obs.sink = &sink;
  const auto result = run_experiment(trace, *policy, options);

  // Exploit happened, and the ground-truth oracle saw no wrong kill — PBT
  // never terminates, it only redirects losers onto winners' weights.
  ASSERT_GE(result.clones, 1u);
  EXPECT_EQ(sink.count(obs::EventKind::JobClone), result.clones);
  EXPECT_EQ(result.recovery.wrong_kills, 0u);
  EXPECT_EQ(sink.count(obs::EventKind::JobTerminate), 0u);

  // When a cloned job next gets a machine it resumes from exactly the
  // donor's snapshot epoch (the normal snapshot-restore path — the clone
  // starts from adopted weights). Clones minted just before the target is
  // reached may never be rescheduled; at least one must be.
  std::map<std::int64_t, std::int64_t> pending_clone_epoch;
  std::size_t verified_resumes = 0;
  for (const auto& event : sink.events) {
    if (event.kind == obs::EventKind::JobClone) {
      pending_clone_epoch[event.job] = event.epoch;
    } else if (event.kind == obs::EventKind::JobResume) {
      const auto it = pending_clone_epoch.find(event.job);
      if (it == pending_clone_epoch.end()) continue;
      EXPECT_EQ(event.epoch, it->second) << "job " << event.job;
      pending_clone_epoch.erase(it);
      ++verified_resumes;
    }
  }
  EXPECT_GE(verified_resumes, 1u);
}

}  // namespace
}  // namespace hyperdrive::core
