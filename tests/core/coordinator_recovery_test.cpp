// Coordinator crash-recovery tests (DESIGN.md §12). The headline invariant:
// killing the coordinator at any tick and resuming produces a byte-identical
// event log, MultiStudyResult and CSV versus the uninterrupted run — across
// seeds, crash positions, thread counts, in-simulation CoordinatorCrashEvents
// and real out-of-process resume from durable frames. Plus the degraded
// ladder: corrupt/truncated/divergent frames fall back to older ones and
// ultimately to a cold restart, with every fallback counted and reported.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/policies/barrier_policy.hpp"
#include "core/policies/default_policy.hpp"
#include "core/policy_registry.hpp"
#include "core/study/checkpoint.hpp"
#include "core/study/coordinator.hpp"
#include "core/study/study_manager.hpp"
#include "core/sweep_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

workload::Trace curved_trace(std::size_t jobs, std::size_t epochs, double top,
                             double tau, double target) {
  workload::Trace trace;
  trace.workload_name = "curved";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    const double ceiling = top * (0.7 + 0.3 * static_cast<double>(i + 1) /
                                            static_cast<double>(jobs));
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(
          ceiling * (1.0 - std::exp(-static_cast<double>(e) / tau)));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

std::function<std::unique_ptr<SchedulingPolicy>()> default_policy_factory() {
  return [] { return std::make_unique<DefaultPolicy>(); };
}

/// The recovery runtime re-admits studies from checkpoint-recorded spec
/// texts; this hook resolves each (possibly round-tripped) spec back to its
/// fixture trace by name — the test-side analogue of name resolution.
workload::Trace trace_for(const std::string& name) {
  if (name == "alpha") return curved_trace(4, 10, 0.9, 3.0, 0.85);
  if (name == "beta") return curved_trace(6, 8, 0.6, 4.0, 0.99);
  if (name == "gamma") return curved_trace(3, 6, 0.9, 2.0, 0.75);
  ADD_FAILURE() << "unknown study in admit hook: " << name;
  return curved_trace(1, 2, 0.5, 1.0, 0.4);
}

AdmitStudyFn fixture_admit() {
  return [](StudyManager& manager, const StudySpec& spec) {
    manager.add_study(spec, trace_for(spec.name), default_policy_factory());
  };
}

std::vector<StudySpec> mix_specs(std::uint64_t base_seed) {
  const auto make = [](std::string name, std::uint64_t seed) {
    StudySpec spec;
    spec.name = std::move(name);
    spec.seed = seed;
    spec.tmax = SimTime::hours(48);
    return spec;
  };
  std::vector<StudySpec> specs;
  specs.push_back(make("alpha", base_seed ^ 11));
  specs.push_back(make("beta", base_seed ^ 22));
  auto gamma = make("gamma", base_seed ^ 33);
  gamma.weight = 2.0;
  specs.push_back(gamma);
  return specs;
}

StudyManagerOptions mix_options(std::uint64_t seed) {
  StudyManagerOptions options;
  options.machines = 5;
  options.arbitration = ArbitrationMode::FairShare;
  options.arbitration_interval = SimTime::minutes(5);
  options.record_event_log = true;
  options.seed = seed;
  return options;
}

/// The uninterrupted ground truth, run on a plain StudyManager (no
/// checkpointing machinery in the loop at all).
MultiStudyResult reference_run(std::uint64_t seed) {
  StudyManager manager(mix_options(seed));
  for (const StudySpec& spec : mix_specs(seed)) {
    manager.add_study(spec, trace_for(spec.name), default_policy_factory());
  }
  return manager.run();
}

std::string csv_bytes(const MultiStudyResult& result) {
  std::ostringstream out;
  result.save_csv(out);
  return out.str();
}

void expect_identical(const MultiStudyResult& want, const MultiStudyResult& got) {
  ASSERT_FALSE(want.event_log.empty());
  ASSERT_EQ(want.event_log.size(), got.event_log.size());
  for (std::size_t i = 0; i < want.event_log.size(); ++i) {
    ASSERT_EQ(want.event_log[i], got.event_log[i]) << "event-log line " << i;
  }
  EXPECT_EQ(csv_bytes(want), csv_bytes(got));
  EXPECT_EQ(want.total_time, got.total_time);
  EXPECT_EQ(want.rebalances, got.rebalances);
  ASSERT_EQ(want.studies.size(), got.studies.size());
  for (std::size_t i = 0; i < want.studies.size(); ++i) {
    EXPECT_EQ(want.studies[i].result.reached_target, got.studies[i].result.reached_target);
    EXPECT_EQ(want.studies[i].result.time_to_target, got.studies[i].result.time_to_target);
    EXPECT_EQ(want.studies[i].result.suspends, got.studies[i].result.suspends);
    EXPECT_EQ(want.studies[i].result.jobs_started, got.studies[i].result.jobs_started);
  }
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- the 30-seed golden-trace battery ----------------------------------------

TEST(CoordinatorRecoveryTest, CrashAndResumeIsByteIdenticalAcrossThirtySeeds) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const MultiStudyResult ref = reference_run(seed);
    ASSERT_GT(ref.total_time, SimTime::zero()) << "seed " << seed;

    // Rotate the crash through early / middle / late run positions.
    const double frac = seed % 3 == 0 ? 0.3 : (seed % 3 == 1 ? 0.55 : 0.85);
    StudyManagerOptions options = mix_options(seed);
    cluster::CoordinatorCrashEvent crash;
    crash.at = SimTime::seconds(ref.total_time.to_seconds() * frac);
    options.fault_plan.coordinator_crashes.push_back(crash);

    CheckpointOptions ckpt;  // in-memory: no durable dir needed for in-sim crashes
    ckpt.every = SimTime::seconds(ref.total_time.to_seconds() / 6.0);
    const auto run = run_recoverable_multi_study(mix_specs(seed), options, ckpt,
                                                 fixture_admit());
    EXPECT_EQ(run.recovery.coordinator_crashes, 1u) << "seed " << seed;
    EXPECT_EQ(run.recovery.checkpoint_loads + run.recovery.cold_restarts, 1u)
        << "seed " << seed;
    expect_identical(ref, run.result);
  }
}

TEST(CoordinatorRecoveryTest, CrashedRunsAreThreadCountInvariant) {
  // Four independent crashed-and-resumed cells through the SweepEngine's
  // custom run hook: tables and merged event logs must be byte-identical at
  // 1 and 8 worker threads.
  const auto make_sweep = [](std::vector<std::vector<std::string>>& logs) {
    SweepSpec spec;
    spec.name = "crash_resume_mix";
    spec.base_seed = 23;
    spec.add_repeat_axis(4);
    logs.assign(4, {});
    spec.run = [&logs](const SweepCell& cell) {
      const MultiStudyResult ref = reference_run(cell.seed);
      StudyManagerOptions options = mix_options(cell.seed);
      cluster::CoordinatorCrashEvent crash;
      crash.at = SimTime::seconds(ref.total_time.to_seconds() * 0.5);
      options.fault_plan.coordinator_crashes.push_back(crash);
      CheckpointOptions ckpt;
      ckpt.every = SimTime::minutes(4);
      auto run = run_recoverable_multi_study(mix_specs(cell.seed), options, ckpt,
                                             fixture_admit());
      EXPECT_EQ(run.recovery.coordinator_crashes, 1u);
      logs[cell.linear] = std::move(run.result.event_log);
      return run.result.aggregate();
    };
    return spec;
  };

  std::vector<std::vector<std::string>> serial_logs, parallel_logs;
  const auto serial_spec = make_sweep(serial_logs);
  const auto serial = run_sweep(serial_spec, 1);
  const auto parallel_spec = make_sweep(parallel_logs);
  const auto parallel = run_sweep(parallel_spec, 8);

  std::ostringstream sa, sb;
  serial.save_csv(sa);
  parallel.save_csv(sb);
  EXPECT_EQ(sa.str(), sb.str());
  ASSERT_EQ(serial_logs.size(), parallel_logs.size());
  for (std::size_t c = 0; c < serial_logs.size(); ++c) {
    ASSERT_FALSE(serial_logs[c].empty()) << "cell " << c;
    EXPECT_EQ(serial_logs[c], parallel_logs[c]) << "cell " << c;
  }
}

// --- out-of-process resume & the degraded ladder -----------------------------

TEST(CoordinatorRecoveryTest, OutOfProcessResumeReplaysFromDurableFrames) {
  // Process one: runs with durable checkpoints, crashes in-sim mid-run, and
  // finishes. Process two (fresh runtime state): --resume-from semantics with
  // no specs at all — everything comes from the frames.
  const auto dir = fresh_dir("hd_resume_roundtrip");
  const MultiStudyResult ref = reference_run(13);

  StudyManagerOptions options = mix_options(13);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = SimTime::minutes(6);
  const auto first = run_recoverable_multi_study(mix_specs(13), options, ckpt,
                                                 fixture_admit());
  expect_identical(ref, first.result);
  ASSERT_FALSE(CheckpointStore(dir.string()).list().empty());

  CheckpointOptions resume;
  resume.dir = dir.string();
  resume.resume = true;
  const auto second = run_recoverable_multi_study({}, mix_options(13), resume,
                                                  fixture_admit());
  EXPECT_EQ(second.recovery.checkpoint_loads, 1u);
  EXPECT_EQ(second.recovery.replay_verifications, 1u);
  EXPECT_EQ(second.recovery.cold_restarts, 0u);
  expect_identical(ref, second.result);
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorRecoveryTest, RegistryPoliciesRideFramesAndResumeByteIdentically) {
  // Registry-built policies (DESIGN.md §13) in the recovery loop: an ASHA
  // study with key=value params plus a POP study, admitted by name through
  // the PolicyRegistry. The policy name and params ride the HDCK frames as
  // study-spec text, so an out-of-process resume must rebuild the exact
  // policies — byte-identical event log and CSV.
  const auto specs_with_zoo = [](std::uint64_t base_seed) {
    auto specs = mix_specs(base_seed);
    specs[0].policy = "asha";
    specs[0].policy_params = {"eta=2"};
    specs[1].policy = "pop";
    return specs;
  };
  const AdmitStudyFn registry_admit = [](StudyManager& manager, const StudySpec& spec) {
    if (spec.name == "alpha") {
      // The round-tripped spec must still carry the policy line verbatim.
      EXPECT_EQ(spec.policy, "asha");
      EXPECT_EQ(spec.policy_params, std::vector<std::string>{"eta=2"});
    }
    manager.add_study(spec, trace_for(spec.name), [spec] {
      PolicyContext ctx;
      ctx.seed = spec.seed;
      ctx.tmax = spec.tmax;
      return make_registry_policy(spec.policy, PolicyParams::parse(spec.policy_params),
                                  ctx);
    });
  };

  // Uninterrupted ground truth with the same registry-built policies.
  StudyManager reference(mix_options(19));
  for (const StudySpec& spec : specs_with_zoo(19)) registry_admit(reference, spec);
  const MultiStudyResult ref = reference.run();

  const auto dir = fresh_dir("hd_registry_resume");
  StudyManagerOptions options = mix_options(19);
  cluster::CoordinatorCrashEvent crash;
  crash.at = SimTime::seconds(ref.total_time.to_seconds() * 0.5);
  options.fault_plan.coordinator_crashes.push_back(crash);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = SimTime::minutes(5);
  const auto first = run_recoverable_multi_study(specs_with_zoo(19), options, ckpt,
                                                 registry_admit);
  EXPECT_EQ(first.recovery.coordinator_crashes, 1u);
  expect_identical(ref, first.result);

  // Process two: nothing but the frames — policies come back by name.
  CheckpointOptions resume;
  resume.dir = dir.string();
  resume.resume = true;
  const auto second = run_recoverable_multi_study({}, mix_options(19), resume,
                                                  registry_admit);
  EXPECT_EQ(second.recovery.checkpoint_loads, 1u);
  expect_identical(ref, second.result);
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorRecoveryTest, DegradedLadderFallsBackPastCorruptFrames) {
  const auto dir = fresh_dir("hd_ladder");
  StudyManagerOptions options = mix_options(5);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = SimTime::minutes(6);
  const auto original = run_recoverable_multi_study(mix_specs(5), options, ckpt,
                                                    fixture_admit());

  CheckpointStore store(dir.string());
  const auto seqs = store.list();
  ASSERT_GE(seqs.size(), 3u) << "need at least three frames for the ladder";

  {  // Newest frame: flip one bit (CRC must reject it).
    const std::string path = store.path_for(seqs[0]);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  {  // Second-newest: truncate to half (structure ends early).
    const std::string path = store.path_for(seqs[1]);
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
  }

  obs::MetricsRegistry registry;
  preregister_checkpoint_metrics(registry);
  obs::RecordingSink journey;
  StudyManagerOptions resume_options = mix_options(5);
  resume_options.obs.metrics = &registry;
  CheckpointOptions resume;
  resume.dir = dir.string();
  resume.resume = true;
  resume.recovery_sink = &journey;
  const auto resumed = run_recoverable_multi_study({}, resume_options, resume,
                                                   fixture_admit());

  EXPECT_EQ(resumed.recovery.checkpoint_fallbacks, 2u);
  EXPECT_EQ(resumed.recovery.checkpoint_loads, 1u);
  EXPECT_EQ(resumed.recovery.replay_verifications, 1u);
  EXPECT_EQ(resumed.recovery.cold_restarts, 0u);
  EXPECT_EQ(journey.count(obs::EventKind::CheckpointFallback), 2u);
  EXPECT_EQ(journey.count(obs::EventKind::CheckpointLoaded), 1u);
  EXPECT_EQ(journey.count(obs::EventKind::CoordinatorResume), 1u);
  EXPECT_EQ(registry.counter("recovery.checkpoint_fallbacks").value(), 2u);
  EXPECT_EQ(registry.counter("recovery.replay_verifications").value(), 1u);
  expect_identical(original.result, resumed.result);

  // The replay healed the frames it re-wrote: everything decodes again.
  for (const std::uint64_t seq : store.list()) {
    EXPECT_TRUE(store.load(seq).checkpoint.has_value()) << "seq " << seq;
  }
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorRecoveryTest, ExhaustedLadderColdRestartsFromRecordedSpecs) {
  const auto dir = fresh_dir("hd_cold_restart");
  StudyManagerOptions options = mix_options(3);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = SimTime::minutes(6);
  const auto original = run_recoverable_multi_study(mix_specs(3), options, ckpt,
                                                    fixture_admit());

  // Corrupt every frame: the ladder exhausts and the run cold-restarts.
  CheckpointStore store(dir.string());
  const auto seqs = store.list();
  ASSERT_FALSE(seqs.empty());
  for (const std::uint64_t seq : seqs) {
    std::filesystem::resize_file(store.path_for(seq), 2);
  }

  // With no specs anywhere there is nothing to cold-restart from.
  CheckpointOptions resume;
  resume.dir = dir.string();
  resume.resume = true;
  EXPECT_THROW(
      (void)run_recoverable_multi_study({}, mix_options(3), resume, fixture_admit()),
      std::runtime_error);

  // With caller-supplied specs the cold restart completes byte-identically.
  const auto resumed = run_recoverable_multi_study(mix_specs(3), mix_options(3), resume,
                                                   fixture_admit());
  EXPECT_EQ(resumed.recovery.cold_restarts, 1u);
  EXPECT_EQ(resumed.recovery.checkpoint_loads, 0u);
  EXPECT_EQ(resumed.recovery.checkpoint_fallbacks, seqs.size());
  expect_identical(original.result, resumed.result);
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorRecoveryTest, DivergentFrameIsRejectedByReplayVerification) {
  // A frame that decodes cleanly but records a state the deterministic
  // replay cannot reproduce (tampered state bytes, valid CRC) must be
  // rejected mid-replay (ManagerExit::Halted) and the ladder must recover
  // from the next older frame.
  const auto dir = fresh_dir("hd_divergence");
  StudyManagerOptions options = mix_options(21);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = SimTime::minutes(6);
  const auto original = run_recoverable_multi_study(mix_specs(21), options, ckpt,
                                                    fixture_admit());

  CheckpointStore store(dir.string());
  auto seqs = store.list();
  ASSERT_GE(seqs.size(), 3u);
  // Make a MID-RUN frame the newest (drop the final on-demand frame), then
  // tamper its state and re-encode so the CRC still passes. seqs[1] is the
  // last periodic frame; seqs[2] exists as the fallback rung below it.
  const std::uint64_t victim = seqs[1];
  for (const std::uint64_t seq : seqs) {
    if (seq > victim) std::filesystem::remove(store.path_for(seq));
  }
  auto frame = store.load(victim);
  ASSERT_TRUE(frame.checkpoint.has_value());
  ASSERT_FALSE(frame.checkpoint->state.empty());
  frame.checkpoint->state[frame.checkpoint->state.size() / 2] ^= 0x01;
  (void)store.write(*frame.checkpoint);

  obs::RecordingSink journey;
  CheckpointOptions resume;
  resume.dir = dir.string();
  resume.resume = true;
  resume.recovery_sink = &journey;
  const auto resumed = run_recoverable_multi_study({}, mix_options(21), resume,
                                                   fixture_admit());

  EXPECT_EQ(resumed.recovery.checkpoint_fallbacks, 1u);
  EXPECT_EQ(resumed.recovery.checkpoint_loads, 2u);  // tampered frame + fallback
  EXPECT_EQ(resumed.recovery.replay_verifications, 1u);
  EXPECT_EQ(journey.count(obs::EventKind::CheckpointFallback), 1u);
  expect_identical(original.result, resumed.result);
  std::filesystem::remove_all(dir);
}

// --- resume edge cases -------------------------------------------------------

TEST(CoordinatorRecoveryTest, MidEpochCheckpointWithSuspendsInFlightResumes) {
  // A 130 s cadence lands checkpoints inside 60 s epochs while a barrier
  // policy suspends every job each 2-epoch round — frames routinely capture
  // suspended-job-in-flight state. Crash just past such a frame. This is
  // also the admit-hook escape hatch at work: both incarnations rebuild the
  // barrier policy from spec.name alone.
  const std::uint64_t seed = 17;
  const AdmitStudyFn barrier_admit = [](StudyManager& manager, const StudySpec& spec) {
    manager.add_study(spec, trace_for(spec.name), [] {
      return std::make_unique<BarrierPolicy>(std::make_unique<DefaultPolicy>(),
                                             /*epochs_per_round=*/2);
    });
  };
  const auto specs = mix_specs(seed);
  const StudyManagerOptions options = mix_options(seed);

  StudyManager reference(options);
  for (const StudySpec& spec : specs) barrier_admit(reference, spec);
  const MultiStudyResult ref = reference.run();
  ASSERT_GT(ref.aggregate().suspends, 0u)
      << "fixture mix no longer exercises suspends";

  StudyManagerOptions crashed = options;
  cluster::CoordinatorCrashEvent crash;
  crash.at = SimTime::seconds(5 * 130 + 10);
  ASSERT_LT(crash.at, ref.total_time);
  crashed.fault_plan.coordinator_crashes.push_back(crash);
  CheckpointOptions ckpt;
  ckpt.every = SimTime::seconds(130);
  const auto run = run_recoverable_multi_study(specs, crashed, ckpt, barrier_admit);
  EXPECT_EQ(run.recovery.coordinator_crashes, 1u);
  EXPECT_EQ(run.recovery.replay_verifications, 1u);
  expect_identical(ref, run.result);
}

TEST(CoordinatorRecoveryTest, ResumeAfterLastStudyFinishedReplaysToTheEnd) {
  const auto dir = fresh_dir("hd_resume_finished");
  StudyManagerOptions options = mix_options(7);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = SimTime::minutes(6);
  const auto first = run_recoverable_multi_study(mix_specs(7), options, ckpt,
                                                 fixture_admit());

  // The newest frame is the final on-demand capture of a *finished* run: the
  // replay never reaches its sequence periodically and verifies at the end.
  const auto resumed = run_recoverable_multi_study({}, mix_options(7),
                                                   [&] {
                                                     CheckpointOptions r;
                                                     r.dir = dir.string();
                                                     r.resume = true;
                                                     return r;
                                                   }(),
                                                   fixture_admit());
  EXPECT_EQ(resumed.recovery.coordinator_crashes, 0u);
  EXPECT_EQ(resumed.recovery.replay_verifications, 1u);
  EXPECT_EQ(resumed.recovery.checkpoint_fallbacks, 0u);
  expect_identical(first.result, resumed.result);

  // Resuming a finished run converges: a third pass still verifies (the
  // final frame was re-written with identical state bytes, not duplicated).
  const auto third = run_recoverable_multi_study({}, mix_options(7),
                                                 [&] {
                                                   CheckpointOptions r;
                                                   r.dir = dir.string();
                                                   r.resume = true;
                                                   return r;
                                                 }(),
                                                 fixture_admit());
  EXPECT_EQ(third.recovery.replay_verifications, 1u);
  EXPECT_EQ(third.recovery.checkpoint_fallbacks, 0u);
  expect_identical(first.result, third.result);
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorRecoveryTest, CrashEventsAlreadyInThePastAreNotRefired) {
  const auto dir = fresh_dir("hd_past_events");
  const MultiStudyResult ref = reference_run(9);

  StudyManagerOptions options = mix_options(9);
  cluster::CoordinatorCrashEvent crash;
  crash.at = SimTime::seconds(ref.total_time.to_seconds() * 0.5);
  options.fault_plan.coordinator_crashes.push_back(crash);
  CheckpointOptions ckpt;
  ckpt.dir = dir.string();
  ckpt.every = SimTime::minutes(6);
  const auto first = run_recoverable_multi_study(mix_specs(9), options, ckpt,
                                                 fixture_admit());
  EXPECT_EQ(first.recovery.coordinator_crashes, 1u);
  expect_identical(ref, first.result);

  // Resume: the final frame records crashes_taken=1, so the plan's only
  // crash — now in the replayed past — is a consumed prefix entry.
  CheckpointOptions resume;
  resume.dir = dir.string();
  resume.resume = true;
  const auto second = run_recoverable_multi_study({}, mix_options(9), resume,
                                                  fixture_admit());
  EXPECT_EQ(second.recovery.coordinator_crashes, 0u);
  EXPECT_EQ(second.recovery.replay_verifications, 1u);
  expect_identical(ref, second.result);

  // Defensive floor: even a frame hand-edited to claim crashes_taken=0 must
  // not re-fire a crash that lies before its own tick.
  CheckpointStore store(dir.string());
  const auto seqs = store.list();
  ASSERT_FALSE(seqs.empty());
  auto newest = store.load(seqs[0]);
  ASSERT_TRUE(newest.checkpoint.has_value());
  ASSERT_GT(newest.checkpoint->crashes_taken, 0u);
  newest.checkpoint->crashes_taken = 0;
  (void)store.write(*newest.checkpoint);

  const auto third = run_recoverable_multi_study({}, mix_options(9), resume,
                                                 fixture_admit());
  EXPECT_EQ(third.recovery.coordinator_crashes, 0u);
  expect_identical(ref, third.result);
  std::filesystem::remove_all(dir);
}

TEST(CoordinatorRecoveryTest, DoubleCrashRecoversTwiceIncludingDuringRecovery) {
  // The second crash fires inside the incarnation that is replaying after
  // the first one — a crash during recovery. Both must be taken exactly
  // once, with a verified replay after each.
  const std::uint64_t seed = 27;
  const MultiStudyResult ref = reference_run(seed);

  StudyManagerOptions options = mix_options(seed);
  for (const double frac : {0.4, 0.7}) {
    cluster::CoordinatorCrashEvent crash;
    crash.at = SimTime::seconds(ref.total_time.to_seconds() * frac);
    options.fault_plan.coordinator_crashes.push_back(crash);
  }
  CheckpointOptions ckpt;
  ckpt.every = SimTime::seconds(ref.total_time.to_seconds() / 8.0);
  const auto run = run_recoverable_multi_study(mix_specs(seed), options, ckpt,
                                               fixture_admit());
  EXPECT_EQ(run.recovery.coordinator_crashes, 2u);
  EXPECT_EQ(run.recovery.checkpoint_loads, 2u);
  EXPECT_EQ(run.recovery.replay_verifications, 2u);
  EXPECT_EQ(run.recovery.cold_restarts, 0u);
  expect_identical(ref, run.result);
}

TEST(CoordinatorRecoveryTest, CheckpointWrittenRidesTheDeterministicTimeline) {
  // CheckpointWritten is part of the run's obs stream (not the recovery
  // journey): an uninterrupted run and a crashed+resumed run at the same
  // cadence must surface the identical checkpoint event sequence.
  const std::uint64_t seed = 2;
  const MultiStudyResult ref = reference_run(seed);

  const auto run_with = [&](bool crashed) {
    StudyManagerOptions options = mix_options(seed);
    obs::RecordingSink sink;
    options.obs.sink = &sink;
    if (crashed) {
      cluster::CoordinatorCrashEvent crash;
      crash.at = SimTime::seconds(ref.total_time.to_seconds() * 0.6);
      options.fault_plan.coordinator_crashes.push_back(crash);
    }
    CheckpointOptions ckpt;
    ckpt.every = SimTime::minutes(5);
    const auto run = run_recoverable_multi_study(mix_specs(seed), options, ckpt,
                                                 fixture_admit());
    std::vector<std::string> lines;
    for (const obs::TraceEvent* event : sink.of_kind(obs::EventKind::CheckpointWritten)) {
      lines.push_back(obs::render_line(*event));
    }
    return lines;
  };

  const auto smooth = run_with(false);
  const auto crashed = run_with(true);
  ASSERT_FALSE(smooth.empty());
  EXPECT_EQ(smooth, crashed);
}

// --- elastic capacity through the checkpoint frame (DESIGN.md §15) -----------

StudyManagerOptions elastic_mix_options(std::uint64_t seed) {
  StudyManagerOptions options = mix_options(seed);
  cluster::NodeCatalog catalog;
  catalog.add({"standard", 3, 1.0, 1.0, false});
  catalog.add({"cheap-spot", 2, 0.4, 1.0, true});
  options.catalog = catalog;
  options.arbitration = ArbitrationMode::Cost;
  cluster::SpotPreemptionEvent spot;  // reclaim a spot node mid-run
  spot.machine = 4;
  spot.at = SimTime::minutes(15);
  options.fault_plan.spot_preemptions.push_back(spot);
  return options;
}

TEST(CoordinatorRecoveryTest, ElasticAutoscaledRunResumesByteIdentically) {
  // The headline §15 durability claim: a live autoscaler (acquired capacity +
  // spend integral), a typed catalog, cost arbitration and a spot reclaim all
  // ride the checkpoint frame — crash + resume reproduces the uninterrupted
  // run byte for byte, including the final cloud bill.
  for (std::uint64_t seed = 3; seed <= 5; ++seed) {
    StudyManager reference(elastic_mix_options(seed));
    for (const StudySpec& spec : mix_specs(seed)) {
      reference.add_study(spec, trace_for(spec.name), default_policy_factory());
    }
    const MultiStudyResult ref = reference.run();
    ASSERT_GT(ref.spend_usd, 0.0) << "seed " << seed;

    StudyManagerOptions options = elastic_mix_options(seed);
    cluster::CoordinatorCrashEvent crash;
    crash.at = SimTime::seconds(ref.total_time.to_seconds() * 0.5);
    options.fault_plan.coordinator_crashes.push_back(crash);
    CheckpointOptions ckpt;
    ckpt.every = SimTime::minutes(5);
    const auto run = run_recoverable_multi_study(mix_specs(seed), options, ckpt,
                                                 fixture_admit());
    EXPECT_EQ(run.recovery.coordinator_crashes, 1u) << "seed " << seed;
    expect_identical(ref, run.result);
    EXPECT_EQ(ref.spend_usd, run.result.spend_usd) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hyperdrive::core
