// Round-trip and error-reporting tests for the study-spec text format
// (README "Study files", DESIGN.md §9): save_study_spec(load_study_spec(t))
// reproduces the text exactly, defaults survive the trip, and malformed
// input fails with a line number.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/study/study_spec.hpp"

namespace hyperdrive::core {
namespace {

using util::SimTime;

StudySpec full_spec() {
  StudySpec spec;
  spec.name = "prod-cifar";
  spec.workload = "cifar10";
  spec.policy = "pop";
  spec.generator = "tpe";
  spec.configs = 64;
  spec.target = 0.925;
  spec.deadline = SimTime::hours(4.5);
  spec.weight = 2.5;
  spec.seed = 42;
  spec.tmax = SimTime::hours(24);
  spec.cancel_at = SimTime::hours(30);
  return spec;
}

std::string save(const StudySpec& spec) {
  std::ostringstream out;
  save_study_spec(spec, out);
  return out.str();
}

StudySpec load(const std::string& text) {
  std::istringstream in(text);
  return load_study_spec(in);
}

void expect_equal(const StudySpec& a, const StudySpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.policy_params, b.policy_params);
  EXPECT_EQ(a.generator, b.generator);
  EXPECT_EQ(a.configs, b.configs);
  EXPECT_EQ(std::isnan(a.target), std::isnan(b.target));
  if (!std::isnan(a.target)) EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.deadline, b.deadline);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.tmax, b.tmax);
  EXPECT_EQ(a.cancel_at, b.cancel_at);
  EXPECT_EQ(a.budget_usd, b.budget_usd);
  EXPECT_EQ(a.node_class, b.node_class);
}

TEST(StudySpecIoTest, SaveLoadIsAFixedPoint) {
  const StudySpec spec = full_spec();
  const std::string text = save(spec);
  const StudySpec loaded = load(text);
  expect_equal(spec, loaded);
  EXPECT_EQ(save(loaded), text);
}

TEST(StudySpecIoTest, DefaultsSurviveTheTrip) {
  StudySpec spec;
  spec.name = "plain";
  const StudySpec loaded = load(save(spec));
  expect_equal(spec, loaded);
  EXPECT_FALSE(loaded.has_target_override());
  EXPECT_FALSE(loaded.has_deadline());
  EXPECT_EQ(loaded.cancel_at, SimTime::infinity());
  // Optional directives are omitted, not written as sentinels.
  const std::string text = save(spec);
  EXPECT_EQ(text.find("target"), std::string::npos);
  EXPECT_EQ(text.find("deadline"), std::string::npos);
  EXPECT_EQ(text.find("weight"), std::string::npos);
  EXPECT_EQ(text.find("cancel-at"), std::string::npos);
  EXPECT_EQ(text.find("budget"), std::string::npos);
  EXPECT_EQ(text.find("node-class"), std::string::npos);
}

TEST(StudySpecIoTest, ElasticDirectivesRoundTrip) {
  // budget/node-class (DESIGN.md §15) survive the trip; a spec without them
  // saves byte-identically to the pre-elastic format (checked above).
  StudySpec spec = full_spec();
  spec.budget_usd = 120.5;
  spec.node_class = "gpu-spot";
  const std::string text = save(spec);
  EXPECT_NE(text.find("budget 120.5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("node-class gpu-spot\n"), std::string::npos) << text;
  const StudySpec loaded = load(text);
  expect_equal(spec, loaded);
  EXPECT_EQ(save(loaded), text);

  EXPECT_THROW(load("study a\nbudget 0\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nbudget -3\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nbudget lots\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nnode-class\n"), std::invalid_argument);
  try {
    load("study a\nbudget 0\n");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(StudySpecIoTest, ParsesCommentsBlanksAndInf) {
  const StudySpec spec = load(
      "# a tenant\n"
      "study exp-7   # inline comment\n"
      "\n"
      "workload lunarlander\n"
      "policy bandit\n"
      "deadline inf\n"
      "tmax 3600\n");
  EXPECT_EQ(spec.name, "exp-7");
  EXPECT_EQ(spec.workload, "lunarlander");
  EXPECT_EQ(spec.policy, "bandit");
  EXPECT_FALSE(spec.has_deadline());
  EXPECT_EQ(spec.tmax, SimTime::seconds(3600));
}

TEST(StudySpecIoTest, PolicyOptionsRoundTrip) {
  // Registry policy with key=value options (DESIGN.md §13): the tokens
  // survive the trip verbatim and in order.
  StudySpec spec = full_spec();
  spec.policy = "asha";
  spec.policy_params = {"eta=4", "min-rung=2"};
  const std::string text = save(spec);
  EXPECT_NE(text.find("policy asha eta=4 min-rung=2\n"), std::string::npos);
  const StudySpec loaded = load(text);
  EXPECT_EQ(loaded.policy, "asha");
  EXPECT_EQ(loaded.policy_params, spec.policy_params);
  EXPECT_EQ(save(loaded), text);

  // No options — the line stays byte-identical to the pre-registry format.
  StudySpec bare;
  bare.name = "plain";
  EXPECT_NE(save(bare).find("policy pop\n"), std::string::npos);

  // A policy option that is not key=value is a parse error with a line
  // number, not a silently dropped token.
  EXPECT_THROW(load("study a\npolicy asha eta\n"), std::invalid_argument);
  try {
    load("study a\npolicy asha eta\n");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("key=value"), std::string::npos);
  }
}

TEST(StudySpecIoTest, ErrorsCarryLineNumbers) {
  EXPECT_THROW(load("study a\nbogus 1\n"), std::invalid_argument);
  try {
    load("study a\nbogus 1\n");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(load("study a\ndeadline shortly\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nconfigs 0\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nconfigs 2.5\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nweight 0\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nweight inf\n"), std::invalid_argument);
  EXPECT_THROW(load("study a\nseed\n"), std::invalid_argument);
  EXPECT_THROW(load("study a b\n"), std::invalid_argument);  // trailing token
}

TEST(StudySpecIoTest, RejectsUnnamedSpec) {
  EXPECT_THROW(load("workload cifar10\n"), std::invalid_argument);
  try {
    load("workload cifar10\n");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("study"), std::string::npos);
  }
}

}  // namespace
}  // namespace hyperdrive::core
