// StudyService tests (DESIGN.md §14): submission lifecycle, quota edge
// cases, durable journal + restart resume, svc.* events/metrics, and the
// headline byte-identity contract — service artifacts equal batch-mode
// coordinator artifacts for the same spec/options.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "core/study/coordinator.hpp"
#include "obs/export.hpp"
#include "obs/sink.hpp"

namespace hyperdrive::svc {
namespace {

const char* kSpecAlpha =
    "study alpha\n"
    "workload cifar10\n"
    "policy pop\n"
    "configs 6\n"
    "seed 7\n";

const char* kSpecBeta =
    "study beta\n"
    "workload cifar10\n"
    "policy bandit\n"
    "configs 5\n"
    "seed 9\n";

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

ServiceOptions small_service(const std::string& state_dir) {
  ServiceOptions o;
  o.machines = 4;
  o.seed = 5;
  o.state_dir = state_dir;
  o.checkpoint_every_s = 300.0;
  o.admission.max_running = 2;
  o.admission.max_queued = 4;
  o.admission.tenant.max_slots = 8;
  o.admission.tenant.max_queued = 2;
  return o;
}

/// The batch-mode reference: exactly what `hyperdrive_cli --study` runs for
/// this spec under the service's machines/seed, at the same checkpoint
/// cadence, exported through the same CSV writers.
void reference_artifacts(const std::string& spec_text, const ServiceOptions& sopts,
                         const std::string& ckpt_dir, std::string& result_csv,
                         std::string& timeline_csv) {
  std::istringstream in(spec_text);
  const core::StudySpec spec = core::load_study_spec(in);
  core::StudyManagerOptions mopts;
  mopts.machines = sopts.machines;
  mopts.seed = sopts.seed;
  obs::RecordingSink sink;
  mopts.obs.sink = &sink;
  core::CheckpointOptions ckpt;
  ckpt.dir = ckpt_dir;
  ckpt.every = util::SimTime::seconds(sopts.checkpoint_every_s);
  const auto run = core::run_recoverable_multi_study({spec}, mopts, ckpt);
  std::ostringstream rs;
  run.result.save_csv(rs);
  result_csv = rs.str();
  std::ostringstream ts;
  obs::write_timeline_csv(ts, sink.events);
  timeline_csv = ts.str();
}

TEST(SvcServiceTest, SubmitRunFinishAndArtifactsMatchBatchMode) {
  const auto dir = fresh_dir("svc_service_basic");
  const ServiceOptions sopts = small_service(dir.string());
  StudyService service(sopts);

  const SubmitOutcome out = service.submit("alice", kSpecAlpha);
  ASSERT_TRUE(out.accepted);
  EXPECT_EQ(out.state, StudyState::Running);
  EXPECT_EQ(out.id, 1u);
  service.wait_idle();

  const auto info = service.status(1);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, StudyState::Finished);
  EXPECT_EQ(info->tenant, "alice");
  EXPECT_EQ(info->study_name, "alpha");
  EXPECT_GT(info->best_perf, 0.0);
  EXPECT_GT(info->total_time_s, 0.0);

  std::string result_csv;
  std::string timeline_csv;
  std::string error;
  ASSERT_TRUE(service.artifact(1, ArtifactKind::ResultCsv, result_csv, error)) << error;
  ASSERT_TRUE(service.artifact(1, ArtifactKind::TimelineCsv, timeline_csv, error)) << error;

  std::string ref_result;
  std::string ref_timeline;
  reference_artifacts(kSpecAlpha, sopts, fresh_dir("svc_service_basic_ref").string(),
                      ref_result, ref_timeline);
  EXPECT_EQ(result_csv, ref_result);
  EXPECT_EQ(timeline_csv, ref_timeline);
}

TEST(SvcServiceTest, BadSpecIsRejectedWithParserMessage) {
  StudyService service(small_service(fresh_dir("svc_service_badspec").string()));
  const SubmitOutcome out = service.submit("alice", "workload cifar10\nnot-a-directive\n");
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason.rfind("bad-spec: ", 0), 0u) << out.reason;
}

TEST(SvcServiceTest, QueueCancelAndQuotaReasonsEndToEnd) {
  ServiceOptions sopts = small_service(fresh_dir("svc_service_queue").string());
  sopts.admission.max_running = 1;
  sopts.admission.tenant.max_queued = 1;
  StudyService service(sopts);

  const SubmitOutcome first = service.submit("alice", kSpecAlpha);
  ASSERT_TRUE(first.accepted);
  const SubmitOutcome second = service.submit("alice", kSpecBeta);
  ASSERT_TRUE(second.accepted);
  EXPECT_EQ(second.state, StudyState::Queued);
  EXPECT_EQ(second.queue_position, 1u);
  // Alice is now at her queue quota: one more is rejected with the pinned
  // reason, and the rejected id still answers status (memory-only record).
  const SubmitOutcome third = service.submit("alice", kSpecAlpha);
  EXPECT_FALSE(third.accepted);
  EXPECT_EQ(third.reason, "tenant-quota-queued: tenant=alice queued=1/1");
  const auto rejected = service.status(third.id);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->state, StudyState::Failed);
  EXPECT_EQ(rejected->detail, third.reason);

  // Cancel-while-queued releases the quota immediately.
  std::string error;
  ASSERT_TRUE(service.cancel(second.id, error)) << error;
  const auto cancelled = service.status(second.id);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, StudyState::Cancelled);
  const SubmitOutcome fourth = service.submit("alice", kSpecBeta);
  EXPECT_TRUE(fourth.accepted);

  service.wait_idle();
  // Terminal-state cancels are refused.
  EXPECT_FALSE(service.cancel(first.id, error));
  EXPECT_EQ(error, "already finished");
  EXPECT_FALSE(service.cancel(9999, error));
}

TEST(SvcServiceTest, ListFiltersByTenantInIdOrder) {
  StudyService service(small_service(fresh_dir("svc_service_list").string()));
  ASSERT_TRUE(service.submit("alice", kSpecAlpha).accepted);
  ASSERT_TRUE(service.submit("bob", kSpecBeta).accepted);
  service.wait_idle();
  const auto all = service.list("");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, 1u);
  EXPECT_EQ(all[1].id, 2u);
  const auto bob = service.list("bob");
  ASSERT_EQ(bob.size(), 1u);
  EXPECT_EQ(bob[0].tenant, "bob");
}

TEST(SvcServiceTest, RestartReloadsFinishedSubmissionsFromJournal) {
  const auto dir = fresh_dir("svc_service_restart");
  const ServiceOptions sopts = small_service(dir.string());
  std::string first_result;
  {
    StudyService service(sopts);
    ASSERT_TRUE(service.submit("alice", kSpecAlpha).accepted);
    service.wait_idle();
    std::string error;
    ASSERT_TRUE(service.artifact(1, ArtifactKind::ResultCsv, first_result, error));
  }
  StudyService reborn(sopts);
  EXPECT_EQ(reborn.resumed_count(), 0u);  // terminal states are not re-admitted
  const auto info = reborn.status(1);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, StudyState::Finished);
  EXPECT_GT(info->best_perf, 0.0);
  std::string bytes;
  std::string error;
  ASSERT_TRUE(reborn.artifact(1, ArtifactKind::ResultCsv, bytes, error)) << error;
  EXPECT_EQ(bytes, first_result);
  // A new submission picks up after the journaled ids.
  const SubmitOutcome next = reborn.submit("bob", kSpecBeta);
  ASSERT_TRUE(next.accepted);
  EXPECT_EQ(next.id, 2u);
  reborn.wait_idle();
}

TEST(SvcServiceTest, RestartResumesUnfinishedSubmissionsByteIdentically) {
  const auto dir = fresh_dir("svc_service_resume");
  // Incarnation one admits nothing (max_running=0): both submissions queue,
  // are journaled, and stay queued when the service stops — the same durable
  // picture a SIGKILL mid-queue leaves behind.
  ServiceOptions gate = small_service(dir.string());
  gate.admission.max_running = 0;
  {
    StudyService service(gate);
    ASSERT_TRUE(service.submit("alice", kSpecAlpha).accepted);
    ASSERT_TRUE(service.submit("bob", kSpecBeta).accepted);
    EXPECT_EQ(service.queued_count(), 2u);
  }
  // Incarnation two re-admits both in id order and runs them to completion.
  const ServiceOptions sopts = small_service(dir.string());
  StudyService reborn(sopts);
  EXPECT_EQ(reborn.resumed_count(), 2u);
  reborn.wait_idle();
  for (std::uint64_t id : {1u, 2u}) {
    const auto info = reborn.status(id);
    ASSERT_TRUE(info.has_value()) << id;
    EXPECT_EQ(info->state, StudyState::Finished) << id;
  }
  std::string got;
  std::string error;
  ASSERT_TRUE(reborn.artifact(1, ArtifactKind::ResultCsv, got, error)) << error;
  std::string ref_result;
  std::string ref_timeline;
  reference_artifacts(kSpecAlpha, sopts, fresh_dir("svc_service_resume_ref").string(),
                      ref_result, ref_timeline);
  EXPECT_EQ(got, ref_result);
  ASSERT_TRUE(reborn.artifact(1, ArtifactKind::TimelineCsv, got, error)) << error;
  EXPECT_EQ(got, ref_timeline);
}

TEST(SvcServiceTest, EmitsTypedEventsAndPinnedMetrics) {
  obs::RecordingSink sink;
  obs::MetricsRegistry registry;
  preregister_service_metrics(registry);
  ServiceOptions sopts = small_service(fresh_dir("svc_service_obs").string());
  sopts.admission.max_running = 1;
  sopts.obs.sink = &sink;
  sopts.obs.metrics = &registry;
  StudyService service(sopts);

  ASSERT_TRUE(service.submit("alice", kSpecAlpha).accepted);
  ASSERT_TRUE(service.submit("bob", kSpecBeta).accepted);   // queued
  EXPECT_FALSE(service.submit("eve", "garbage\n").accepted);  // bad-spec reject
  service.wait_idle();

  EXPECT_EQ(sink.count(obs::EventKind::StudySubmitted), 2u);
  EXPECT_EQ(sink.count(obs::EventKind::StudyAdmitted), 2u);
  EXPECT_EQ(sink.count(obs::EventKind::StudyQueued), 1u);
  EXPECT_EQ(sink.count(obs::EventKind::StudyRejected), 1u);
  EXPECT_EQ(sink.count(obs::EventKind::StudyFinished), 2u);
  const auto queued = sink.of_kind(obs::EventKind::StudyQueued);
  ASSERT_EQ(queued.size(), 1u);
  EXPECT_EQ(queued[0]->detail, "tenant=bob position=1");

  EXPECT_EQ(registry.counter("svc.submissions").value(), 3u);
  EXPECT_EQ(registry.counter("svc.admitted").value(), 2u);
  EXPECT_EQ(registry.counter("svc.queued").value(), 1u);
  EXPECT_EQ(registry.counter("svc.rejected").value(), 1u);
  EXPECT_EQ(registry.counter("svc.completed").value(), 2u);

  // The export leads with the svc.* block in pinned registration order.
  std::ostringstream os;
  registry.write_csv(os);
  const std::string csv = os.str();
  const auto sub_pos = csv.find("svc.submissions");
  const auto adm_pos = csv.find("svc.admitted");
  const auto rej_pos = csv.find("svc.rejected");
  ASSERT_NE(sub_pos, std::string::npos);
  EXPECT_LT(sub_pos, adm_pos);
  EXPECT_LT(adm_pos, rej_pos);
}

TEST(SvcServiceTest, MemoryOnlyServiceServesArtifactsFromCache) {
  ServiceOptions sopts = small_service("");
  sopts.state_dir.clear();
  StudyService service(sopts);
  ASSERT_TRUE(service.submit("alice", kSpecAlpha).accepted);
  service.wait_idle();
  std::string bytes;
  std::string error;
  ASSERT_TRUE(service.artifact(1, ArtifactKind::ResultCsv, bytes, error)) << error;
  EXPECT_FALSE(bytes.empty());
}

}  // namespace
}  // namespace hyperdrive::svc
