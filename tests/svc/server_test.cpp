// Server tests (DESIGN.md §14): the full TCP loop — Client against an
// ephemeral-port Server over loopback — plus raw-socket hostile input
// (garbage frames answered with a typed Error and dropped; oversized length
// prefixes dropped without a reply) and client connect-retry semantics.
#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "svc/client.hpp"

namespace hyperdrive::svc {
namespace {

const char* kSpecAlpha =
    "study alpha\n"
    "workload cifar10\n"
    "policy pop\n"
    "configs 6\n"
    "seed 7\n";

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

ServiceOptions small_service(const std::string& state_dir) {
  ServiceOptions o;
  o.machines = 4;
  o.seed = 5;
  o.state_dir = state_dir;
  o.checkpoint_every_s = 300.0;
  o.admission.max_running = 2;
  o.admission.max_queued = 4;
  return o;
}

/// A Server + StudyService pair on an ephemeral loopback port.
struct TestServer {
  explicit TestServer(ServiceOptions sopts, ServerOptions server_opts = {})
      : service(std::move(sopts)), server(service, std::move(server_opts)) {
    server.start();
  }
  ~TestServer() {
    server.request_stop();
    server.wait_shutdown();
    service.stop();
  }
  Client client() const {
    ClientOptions c;
    c.port = server.port();
    c.retries = 3;
    return Client(c);
  }
  StudyService service;
  Server server;
};

/// Raw blocking loopback socket, for speaking hostile bytes to the server.
struct RawConn {
  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send_bytes(const void* data, std::size_t size) const {
    EXPECT_EQ(::send(fd, data, size, 0), static_cast<ssize_t>(size));
  }
  /// Reads until EOF (server closed) or timeout; returns everything seen.
  std::string drain() const {
    std::string all;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.append(buf, static_cast<std::size_t>(n));
    }
    return all;
  }
  int fd = -1;
};

TEST(SvcServerTest, FullClientLoopOverLoopback) {
  TestServer ts(small_service(fresh_dir("svc_server_loop").string()));
  Client client = ts.client();

  const Message submitted = client.submit("alice", kSpecAlpha);
  ASSERT_EQ(submitted.type, MsgType::Submitted);
  EXPECT_EQ(submitted.id, 1u);

  ts.service.wait_idle();

  const Message status = client.status(1);
  ASSERT_EQ(status.type, MsgType::StatusInfo);
  EXPECT_EQ(status.info.state, StudyState::Finished);
  EXPECT_EQ(status.info.tenant, "alice");
  EXPECT_GT(status.info.best_perf, 0.0);

  const Message listed = client.list();
  ASSERT_EQ(listed.type, MsgType::ListResult);
  ASSERT_EQ(listed.studies.size(), 1u);
  EXPECT_EQ(listed.studies[0].study_name, "alpha");

  const Message result = client.fetch(1, ArtifactKind::ResultCsv);
  ASSERT_EQ(result.type, MsgType::Artifact);
  EXPECT_NE(result.text.find("study"), std::string::npos);
  const Message timeline = client.fetch(1, ArtifactKind::TimelineCsv);
  ASSERT_EQ(timeline.type, MsgType::Artifact);
  EXPECT_FALSE(timeline.text.empty());

  // Unknown ids answer with a typed Error, not a dropped connection.
  const Message missing = client.status(42);
  ASSERT_EQ(missing.type, MsgType::Error);
  EXPECT_EQ(missing.text, "unknown id 42");
}

TEST(SvcServerTest, RejectionAndCancelPropagateOverTheWire) {
  ServiceOptions sopts = small_service(fresh_dir("svc_server_reject").string());
  sopts.admission.max_running = 0;  // everything queues
  sopts.admission.max_queued = 1;
  TestServer ts(std::move(sopts));
  Client client = ts.client();

  ASSERT_EQ(client.submit("alice", kSpecAlpha).type, MsgType::Submitted);
  const Message rejected = client.submit("bob", kSpecAlpha);
  ASSERT_EQ(rejected.type, MsgType::Rejected);
  EXPECT_EQ(rejected.text, "server-full: running=0/0 queued=1/1");

  const Message cancelled = client.cancel(1);
  EXPECT_EQ(cancelled.type, MsgType::Ok);
  const Message again = client.cancel(1);
  ASSERT_EQ(again.type, MsgType::Error);
  EXPECT_EQ(again.text, "already cancelled");
}

TEST(SvcServerTest, TenantAllowlistRejectsUnknownTenantsOverTheWire) {
  ServiceOptions sopts = small_service(fresh_dir("svc_server_allowlist").string());
  sopts.allowed_tenants = {"alice", "carol"};
  TestServer ts(std::move(sopts));
  Client client = ts.client();

  const Message ok = client.submit("alice", kSpecAlpha);
  ASSERT_EQ(ok.type, MsgType::Submitted);
  const Message rejected = client.submit("bob", kSpecAlpha);
  ASSERT_EQ(rejected.type, MsgType::Rejected);
  EXPECT_EQ(rejected.text, "unknown-tenant: bob");
  // The reject is memory-only: no id was allocated, no journal entry exists.
  const Message listed = client.list();
  ASSERT_EQ(listed.type, MsgType::ListResult);
  ASSERT_EQ(listed.studies.size(), 1u);
  EXPECT_EQ(listed.studies[0].tenant, "alice");
  ts.service.wait_idle();
}

TEST(SvcServerTest, MetricsRequestReturnsPinnedSnapshot) {
  obs::MetricsRegistry registry;
  preregister_service_metrics(registry);
  ServiceOptions sopts = small_service(fresh_dir("svc_server_metrics").string());
  sopts.obs.metrics = &registry;
  ServerOptions server_opts;
  server_opts.metrics = &registry;
  TestServer ts(std::move(sopts), std::move(server_opts));
  Client client = ts.client();

  ASSERT_EQ(client.submit("alice", kSpecAlpha).type, MsgType::Submitted);
  ts.service.wait_idle();
  const Message metrics = client.metrics();
  ASSERT_EQ(metrics.type, MsgType::MetricsText);
  EXPECT_NE(metrics.text.find("svc.submissions,counter,1"), std::string::npos)
      << metrics.text;
  EXPECT_NE(metrics.text.find("svc.completed,counter,1"), std::string::npos);
  // The server-side transport counters tick too.
  EXPECT_NE(metrics.text.find("svc.frames_rx,counter,"), std::string::npos);
}

TEST(SvcServerTest, GarbagePayloadGetsErrorReplyThenClose) {
  TestServer ts(small_service(""));
  RawConn raw(ts.server.port());
  // A well-framed payload of garbage: length says 16, bytes are noise. The
  // decoder rejects it (BadMagic) and the server answers with an Error frame
  // before dropping the connection.
  std::uint8_t frame[20] = {16, 0, 0, 0};
  std::memset(frame + 4, 0xAB, 16);
  raw.send_bytes(frame, sizeof(frame));
  const std::string reply = raw.drain();  // reads until server closes
  ASSERT_FALSE(reply.empty());
  EXPECT_NE(reply.find("decode-error: bad-magic"), std::string::npos);
}

TEST(SvcServerTest, OversizedLengthPrefixIsDroppedWithoutReply) {
  TestServer ts(small_service(""));
  RawConn raw(ts.server.port());
  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};  // 4 GiB "frame"
  raw.send_bytes(huge, sizeof(huge));
  // The framing is untrustworthy, so the server hangs up with no bytes.
  EXPECT_EQ(raw.drain(), "");
}

TEST(SvcServerTest, ShutdownMessageStopsTheServer) {
  TestServer ts(small_service(""));
  Client client = ts.client();
  const Message reply = client.shutdown();
  EXPECT_EQ(reply.type, MsgType::Ok);
  ts.server.wait_shutdown();  // returns because the loop exited
}

TEST(SvcServerTest, ClientConnectFailureThrowsAfterRetries) {
  ClientOptions c;
  c.port = 1;  // nothing listens here
  c.retries = 2;
  c.retry_delay_ms = 10;
  c.connect_timeout_ms = 200;
  Client client(c);
  EXPECT_THROW((void)client.status(1), std::runtime_error);
}

}  // namespace
}  // namespace hyperdrive::svc
