// AdmissionController tests (DESIGN.md §14): verdicts, pinned rejection
// reason strings, per-tenant quota accounting, quota release on
// finish/cancel, and the static|fair|deadline dequeue orders.
#include "svc/admission.hpp"

#include <gtest/gtest.h>

#include "util/sim_time.hpp"

namespace hyperdrive::svc {
namespace {

using util::SimTime;

AdmissionOptions small_options() {
  AdmissionOptions o;
  o.max_running = 2;
  o.max_queued = 3;
  o.tenant.max_slots = 8;
  o.tenant.max_queued = 2;
  o.arbitration = core::ArbitrationMode::FairShare;
  return o;
}

AdmissionDecision go(AdmissionController& c, std::uint64_t id, const std::string& tenant,
                     std::size_t slots = 4,
                     SimTime deadline = SimTime::infinity()) {
  return c.submit(id, tenant, slots, deadline);
}

TEST(AdmissionTest, RunsImmediatelyWithHeadroom) {
  AdmissionController c(small_options());
  const auto d = go(c, 1, "alice");
  EXPECT_EQ(d.verdict, AdmissionVerdict::Run);
  EXPECT_EQ(c.running_count(), 1u);
  EXPECT_EQ(c.tenant_running_slots("alice"), 4u);
}

TEST(AdmissionTest, QueuesWhenServerBusy) {
  AdmissionController c(small_options());
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "bob").verdict, AdmissionVerdict::Run);
  const auto d = go(c, 3, "carol");
  EXPECT_EQ(d.verdict, AdmissionVerdict::Queue);
  EXPECT_EQ(d.queue_position, 1u);
  EXPECT_EQ(c.queued_count(), 1u);
}

TEST(AdmissionTest, NewcomerNeverOvertakesTheQueue) {
  AdmissionOptions o = small_options();
  o.tenant.max_slots = 4;  // one running study per tenant
  AdmissionController c(o);
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "alice").verdict, AdmissionVerdict::Queue);  // alice at quota
  // Bob has headroom and the server has a free run slot, but id 2 waits in
  // the queue ahead of him: he must queue too (no overtaking on submit).
  EXPECT_EQ(go(c, 3, "bob").verdict, AdmissionVerdict::Queue);
  // Dequeue, however, may pass over blocked waiters: bob is runnable now.
  const auto next = c.next_runnable();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 3u);
}

TEST(AdmissionTest, ServerFullReasonString) {
  AdmissionOptions o = small_options();
  o.max_queued = 1;
  AdmissionController c(o);
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "bob").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 3, "carol").verdict, AdmissionVerdict::Queue);
  const auto d = go(c, 4, "dave");
  EXPECT_EQ(d.verdict, AdmissionVerdict::Reject);
  EXPECT_EQ(d.reason, "server-full: running=2/2 queued=1/1");
  // A rejection leaves no trace in any quota.
  EXPECT_EQ(c.queued_count(), 1u);
  EXPECT_EQ(c.tenant_queued("dave"), 0u);
}

TEST(AdmissionTest, ImpossibleSlotAskIsRejectedOutright) {
  AdmissionController c(small_options());
  const auto d = go(c, 1, "alice", /*slots=*/16);
  EXPECT_EQ(d.verdict, AdmissionVerdict::Reject);
  EXPECT_EQ(d.reason, "tenant-quota-slots: need=16 limit=8");
}

TEST(AdmissionTest, TenantAtSlotQuotaQueuesOneMore) {
  AdmissionOptions o = small_options();
  o.max_running = 4;
  AdmissionController c(o);
  // Alice fills her 8-slot quota with two 4-slot studies.
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(c.tenant_running_slots("alice"), 8u);
  // One more: queued (global headroom exists, her quota is the binding cap).
  EXPECT_EQ(go(c, 3, "alice").verdict, AdmissionVerdict::Queue);
  // She cannot be dequeued while at quota...
  EXPECT_FALSE(c.next_runnable().has_value());
  // ...until one of her studies releases its slots.
  EXPECT_TRUE(c.release(1));
  const auto next = c.next_runnable();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 3u);
  EXPECT_EQ(c.tenant_running_slots("alice"), 8u);
}

TEST(AdmissionTest, TenantQueueQuotaReasonString) {
  AdmissionOptions o = small_options();
  o.max_running = 1;
  o.max_queued = 10;
  o.tenant.max_queued = 2;
  AdmissionController c(o);
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "alice").verdict, AdmissionVerdict::Queue);
  EXPECT_EQ(go(c, 3, "alice").verdict, AdmissionVerdict::Queue);
  const auto d = go(c, 4, "alice");
  EXPECT_EQ(d.verdict, AdmissionVerdict::Reject);
  EXPECT_EQ(d.reason, "tenant-quota-queued: tenant=alice queued=2/2");
  // Another tenant still queues fine.
  EXPECT_EQ(go(c, 5, "bob").verdict, AdmissionVerdict::Queue);
}

TEST(AdmissionTest, CancelWhileQueuedReleasesQueueQuota) {
  AdmissionOptions o = small_options();
  o.max_running = 1;
  o.tenant.max_queued = 1;
  AdmissionController c(o);
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "alice").verdict, AdmissionVerdict::Queue);
  EXPECT_EQ(go(c, 3, "alice").verdict, AdmissionVerdict::Reject);
  EXPECT_TRUE(c.cancel_queued(2));
  EXPECT_EQ(c.tenant_queued("alice"), 0u);
  EXPECT_EQ(go(c, 4, "alice").verdict, AdmissionVerdict::Queue);
  // Unknown / already-cancelled ids are refused.
  EXPECT_FALSE(c.cancel_queued(2));
  EXPECT_FALSE(c.cancel_queued(99));
}

TEST(AdmissionTest, ReleaseIsIdempotentAndFreesSlots) {
  AdmissionController c(small_options());
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_TRUE(c.release(1));
  EXPECT_FALSE(c.release(1));
  EXPECT_EQ(c.running_count(), 0u);
  EXPECT_EQ(c.tenant_running_slots("alice"), 0u);
}

TEST(AdmissionTest, StaticArbitrationIsStrictFifo) {
  AdmissionOptions o = small_options();
  o.max_running = 1;
  o.arbitration = core::ArbitrationMode::StaticPartition;
  AdmissionController c(o);
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "alice").verdict, AdmissionVerdict::Queue);
  EXPECT_EQ(go(c, 3, "bob").verdict, AdmissionVerdict::Queue);
  EXPECT_TRUE(c.release(1));
  // FIFO: alice's waiter goes first even though bob holds fewer slots.
  const auto next = c.next_runnable();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 2u);
}

TEST(AdmissionTest, FairArbitrationPrefersLeastLoadedTenant) {
  AdmissionOptions o = small_options();
  o.max_running = 2;
  AdmissionController c(o);
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 3, "alice").verdict, AdmissionVerdict::Queue);
  EXPECT_EQ(go(c, 4, "bob").verdict, AdmissionVerdict::Queue);
  EXPECT_TRUE(c.release(1));
  // Fair share: bob (0 running slots) beats alice (4) despite queue order.
  const auto next = c.next_runnable();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 4u);
  // Now both hold 4 slots; the tie breaks by submission order.
  EXPECT_TRUE(c.release(2));
  const auto after = c.next_runnable();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, 3u);
}

TEST(AdmissionTest, DeadlineArbitrationPicksEarliestDeadline) {
  AdmissionOptions o = small_options();
  o.max_running = 1;
  o.arbitration = core::ArbitrationMode::DeadlineAware;
  AdmissionController c(o);
  EXPECT_EQ(go(c, 1, "alice").verdict, AdmissionVerdict::Run);
  EXPECT_EQ(go(c, 2, "alice", 4, SimTime::hours(10)).verdict, AdmissionVerdict::Queue);
  EXPECT_EQ(go(c, 3, "bob", 4, SimTime::hours(2)).verdict, AdmissionVerdict::Queue);
  EXPECT_EQ(go(c, 4, "carol").verdict, AdmissionVerdict::Queue);  // no deadline
  EXPECT_TRUE(c.release(1));
  const auto next = c.next_runnable();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 3u);  // earliest deadline first; deadline-less go last
}

}  // namespace
}  // namespace hyperdrive::svc
