// Wire-protocol codec tests (DESIGN.md §14): round-trips for every message
// type, the hostile-input taxonomy (truncation, bad magic/version/checksum,
// trailing garbage, malformed fields, oversized counts — all rejected before
// allocation), incremental framing, and a deterministic mutation fuzz pass.
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <random>

#include "cluster/snapshot_codec.hpp"
#include "util/bytes.hpp"

namespace hyperdrive::svc {
namespace {

using cluster::SnapshotDecodeError;

StudyInfo sample_info(std::uint64_t id) {
  StudyInfo info;
  info.id = id;
  info.tenant = "alice";
  info.study_name = "prod-cifar";
  info.state = StudyState::Finished;
  info.detail = "done";
  info.best_perf = 0.923;
  info.reached_target = true;
  info.time_to_target_s = 1234.5;
  info.total_time_s = 2345.75;
  return info;
}

std::vector<Message> sample_messages() {
  std::vector<Message> out;
  {
    Message m;
    m.type = MsgType::Submit;
    m.tenant = "alice";
    m.text = "study s\nworkload cifar10\n";
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Cancel;
    m.id = 42;
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Status;
    m.id = 7;
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::List;
    m.tenant = "bob";
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Fetch;
    m.id = 3;
    m.artifact = ArtifactKind::TimelineCsv;
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Metrics;
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Shutdown;
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Submitted;
    m.id = 9;
    m.state = StudyState::Queued;
    m.position = 4;
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Rejected;
    m.text = "server-full: running=4/4 queued=16/16";
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::StatusInfo;
    m.info = sample_info(11);
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::ListResult;
    m.studies = {sample_info(1), sample_info(2), sample_info(3)};
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Artifact;
    m.text = "study,best\nprod,0.92\n";
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::MetricsText;
    m.text = "metric,type,value\n";
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Error;
    m.text = "unknown id 99";
    out.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::Ok;
    out.push_back(m);
  }
  return out;
}

/// Hand-build a payload with an arbitrary body and a *valid* CRC, so tests
/// reach the field-validation layer (not the checksum gate).
std::vector<std::uint8_t> raw_payload(std::uint8_t type,
                                      const std::vector<std::uint8_t>& body) {
  util::ByteWriter w;
  w.u32(kProtocolMagic);
  w.u32(kProtocolVersion);
  w.u8(type);
  w.raw(body.data(), body.size());
  w.u32(cluster::crc32(w.bytes().data(), w.size()));
  return std::move(w.bytes());
}

TEST(SvcProtocolTest, EveryMessageTypeRoundTrips) {
  for (const Message& m : sample_messages()) {
    const auto payload = encode_message(m);
    const MessageDecodeResult decoded = decode_message(payload);
    ASSERT_TRUE(decoded.message.has_value())
        << "type " << static_cast<int>(m.type) << ": "
        << (decoded.error ? cluster::to_string(*decoded.error) : "?");
    EXPECT_EQ(*decoded.message, m) << "type " << static_cast<int>(m.type);
  }
}

TEST(SvcProtocolTest, EncodeFramePrefixesPayloadLength) {
  Message m;
  m.type = MsgType::Cancel;
  m.id = 5;
  const auto payload = encode_message(m);
  const auto frame = encode_frame(m);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  std::uint32_t length = 0;
  util::ByteReader r(frame.data(), 4);
  ASSERT_TRUE(r.u32(length));
  EXPECT_EQ(length, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), frame.begin() + 4));
}

TEST(SvcProtocolTest, EveryTruncationIsRejected) {
  for (const Message& m : sample_messages()) {
    const auto payload = encode_message(m);
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const MessageDecodeResult decoded = decode_message(payload.data(), len);
      ASSERT_TRUE(decoded.error.has_value())
          << "type " << static_cast<int>(m.type) << " prefix " << len;
      if (len < 13) {
        EXPECT_EQ(*decoded.error, SnapshotDecodeError::Truncated) << "prefix " << len;
      }
    }
  }
}

TEST(SvcProtocolTest, BadMagicBadVersionBadChecksum) {
  Message m;
  m.type = MsgType::Status;
  m.id = 1;
  auto payload = encode_message(m);

  auto bad_magic = payload;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(decode_message(bad_magic).error, SnapshotDecodeError::BadMagic);

  auto bad_version = payload;
  bad_version[4] = 0x7F;
  EXPECT_EQ(decode_message(bad_version).error, SnapshotDecodeError::UnknownVersion);

  auto bad_crc = payload;
  bad_crc[9] ^= 0x01;  // a body byte: magic/version intact, checksum breaks
  EXPECT_EQ(decode_message(bad_crc).error, SnapshotDecodeError::BadChecksum);
}

TEST(SvcProtocolTest, TrailingGarbageIsRejected) {
  util::ByteWriter body;
  body.u64(42);
  auto bytes = body.bytes();
  bytes.push_back(0x00);  // one byte past the Cancel body
  const auto payload = raw_payload(static_cast<std::uint8_t>(MsgType::Cancel), bytes);
  EXPECT_EQ(decode_message(payload).error, SnapshotDecodeError::TrailingGarbage);
}

TEST(SvcProtocolTest, UnknownTypeIsMalformed) {
  EXPECT_EQ(decode_message(raw_payload(0x2A, {})).error, SnapshotDecodeError::Malformed);
}

TEST(SvcProtocolTest, InvalidEnumFieldsAreMalformed) {
  {
    util::ByteWriter body;  // Fetch with an unknown artifact kind
    body.u64(1);
    body.u8(9);
    const auto payload =
        raw_payload(static_cast<std::uint8_t>(MsgType::Fetch), body.bytes());
    EXPECT_EQ(decode_message(payload).error, SnapshotDecodeError::Malformed);
  }
  {
    util::ByteWriter body;  // Submitted with an out-of-range state
    body.u64(1);
    body.u8(99);
    body.u32(0);
    const auto payload =
        raw_payload(static_cast<std::uint8_t>(MsgType::Submitted), body.bytes());
    EXPECT_EQ(decode_message(payload).error, SnapshotDecodeError::Malformed);
  }
}

TEST(SvcProtocolTest, HostileListCountRejectedBeforeAllocation) {
  // A ListResult claiming 4 billion entries in a 4-byte body: the count gate
  // (remaining / min-entry-size) must reject it before reserve() is reached.
  util::ByteWriter body;
  body.u32(0xFFFFFFFFu);
  const auto payload =
      raw_payload(static_cast<std::uint8_t>(MsgType::ListResult), body.bytes());
  EXPECT_EQ(decode_message(payload).error, SnapshotDecodeError::Malformed);
}

TEST(SvcProtocolTest, HostileStringLengthRejected) {
  // A Submit whose tenant string claims to be 256 MiB long inside a tiny
  // payload: ByteReader's bound check fires before any assign.
  util::ByteWriter body;
  body.u32(0x10000000u);
  const auto payload =
      raw_payload(static_cast<std::uint8_t>(MsgType::Submit), body.bytes());
  EXPECT_EQ(decode_message(payload).error, SnapshotDecodeError::Truncated);
}

// --- FrameReader -------------------------------------------------------------

TEST(SvcFrameReaderTest, ReassemblesByteAtATime) {
  Message m;
  m.type = MsgType::Submit;
  m.tenant = "alice";
  m.text = "study s\n";
  const auto frame = encode_frame(m);
  FrameReader reader;
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(reader.feed(&frame[i], 1, out));
  }
  ASSERT_EQ(out.size(), 1u);
  const MessageDecodeResult decoded = decode_message(out[0]);
  ASSERT_TRUE(decoded.message.has_value());
  EXPECT_EQ(*decoded.message, m);
}

TEST(SvcFrameReaderTest, SplitsCoalescedFrames) {
  Message a;
  a.type = MsgType::Cancel;
  a.id = 1;
  Message b;
  b.type = MsgType::Status;
  b.id = 2;
  auto wire = encode_frame(a);
  const auto fb = encode_frame(b);
  wire.insert(wire.end(), fb.begin(), fb.end());

  FrameReader reader;
  std::vector<std::vector<std::uint8_t>> out;
  ASSERT_TRUE(reader.feed(wire.data(), wire.size(), out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(*decode_message(out[0]).message, a);
  EXPECT_EQ(*decode_message(out[1]).message, b);
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(SvcFrameReaderTest, OversizedLengthPrefixPoisonsWithoutAllocation) {
  // 0xFFFFFFFF length prefix: feed() must refuse at the 4-byte header, keep
  // no buffered payload, and stay poisoned for all subsequent bytes.
  const std::uint8_t hostile[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameReader reader;
  std::vector<std::vector<std::uint8_t>> out;
  EXPECT_FALSE(reader.feed(hostile, sizeof hostile, out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(reader.pending(), 0u);
  const std::uint8_t more = 0x00;
  EXPECT_FALSE(reader.feed(&more, 1, out));
}

TEST(SvcFrameReaderTest, BoundaryLengthIsAccepted) {
  FrameReader reader(/*max_frame_bytes=*/8);
  util::ByteWriter w;
  w.u32(8);
  const std::uint8_t body[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  w.raw(body, sizeof body);
  std::vector<std::vector<std::uint8_t>> out;
  ASSERT_TRUE(reader.feed(w.bytes().data(), w.size(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 8u);

  FrameReader tight(/*max_frame_bytes=*/7);
  out.clear();
  EXPECT_FALSE(tight.feed(w.bytes().data(), w.size(), out));
}

// --- deterministic mutation fuzz ---------------------------------------------

TEST(SvcProtocolFuzzTest, MutatedPayloadsNeverCrashTheDecoder) {
  const auto samples = sample_messages();
  std::mt19937_64 rng(0xC0FFEEu);  // fixed seed: the corpus is reproducible
  std::size_t rejected = 0;
  std::size_t accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    auto payload = encode_message(samples[iter % samples.size()]);
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      payload[rng() % payload.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    if (rng() % 4 == 0) payload.resize(rng() % (payload.size() + 1));
    const MessageDecodeResult decoded = decode_message(payload);
    // Exactly one of {message, error}; never both, never neither, never a
    // crash or a hostile allocation.
    EXPECT_NE(decoded.message.has_value(), decoded.error.has_value());
    decoded.message.has_value() ? ++accepted : ++rejected;
  }
  // CRC-protected payloads shrug off nearly every mutation.
  EXPECT_GT(rejected, 1900u);
}

TEST(SvcProtocolFuzzTest, RandomGarbageStreamsNeverCrashTheFrameReader) {
  std::mt19937_64 rng(0xFEEDu);
  for (int iter = 0; iter < 200; ++iter) {
    FrameReader reader;
    std::vector<std::vector<std::uint8_t>> out;
    bool alive = true;
    for (int chunk = 0; alive && chunk < 16; ++chunk) {
      std::vector<std::uint8_t> bytes(rng() % 64);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
      alive = reader.feed(bytes.data(), bytes.size(), out);
    }
    for (const auto& payload : out) {
      const MessageDecodeResult decoded = decode_message(payload);
      EXPECT_NE(decoded.message.has_value(), decoded.error.has_value());
    }
  }
}

}  // namespace
}  // namespace hyperdrive::svc
