#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace hyperdrive::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, 8, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  parallel_for(0, 4, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadPathWorks) {
  int sum = 0;
  parallel_for(10, 1, [&sum](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, RethrowsFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 50) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

}  // namespace
}  // namespace hyperdrive::util
