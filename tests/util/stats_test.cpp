#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

#include "util/rng.hpp"

namespace hyperdrive::util {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(VarianceTest, SampleVariance) {
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
  // var of {2, 4, 4, 4, 5, 5, 7, 9} with n-1 = 32/7
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(StddevTest, MatchesVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(MinMaxTest, Basics) {
  EXPECT_DOUBLE_EQ(min_of({3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(max_of({3, -1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
}

TEST(PercentileTest, ThrowsOnEmpty) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(PercentileTest, LinearInterpolation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(PercentileTest, ClampsOutOfRangeQ) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 3.0);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9, 1, 5}, 50.0), 5.0);
}

// Property: percentile is monotone in q.
class PercentileMonotoneTest : public ::testing::TestWithParam<double> {};
TEST_P(PercentileMonotoneTest, MonotoneInQ) {
  Rng rng(GetParam() * 1000);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(rng.uniform(-10, 10));
  double prev = percentile(xs, 0.0);
  for (double q = 5.0; q <= 100.0; q += 5.0) {
    const double cur = percentile(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(0.001, 0.002, 0.003, 0.004, 0.005));

TEST(MedianTest, EvenOdd) {
  EXPECT_DOUBLE_EQ(median({1, 3, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
}

TEST(BoxStatsTest, FiveNumberSummary) {
  const auto b = box_stats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.max, 5.0);
  EXPECT_DOUBLE_EQ(b.mean, 3.0);
  EXPECT_EQ(b.n, 5u);
}

TEST(BoxStatsTest, EmptyIsZeroed) {
  const auto b = box_stats({});
  EXPECT_EQ(b.n, 0u);
  EXPECT_DOUBLE_EQ(b.median, 0.0);
}

TEST(BoxStatsTest, ToStringContainsFields) {
  const auto s = to_string(box_stats({1, 2, 3}));
  EXPECT_NE(s.find("med="), std::string::npos);
  EXPECT_NE(s.find("n=3"), std::string::npos);
}

TEST(EcdfTest, EvalAndQuantile) {
  Ecdf ecdf({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.eval(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.eval(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.eval(10.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 2.5);
}

TEST(EcdfTest, EmptyBehaviour) {
  Ecdf ecdf({});
  EXPECT_DOUBLE_EQ(ecdf.eval(1.0), 0.0);
  EXPECT_THROW((void)ecdf.quantile(0.5), std::invalid_argument);
}

TEST(OnlineStatsTest, MatchesBatchComputation) {
  Rng rng(71);
  std::vector<double> xs;
  OnlineStats os;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    xs.push_back(x);
    os.add(x);
  }
  EXPECT_EQ(os.count(), 1000u);
  EXPECT_NEAR(os.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(os.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(os.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(os.max(), max_of(xs));
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats os;
  os.add(3.0);
  EXPECT_DOUBLE_EQ(os.mean(), 3.0);
  EXPECT_DOUBLE_EQ(os.variance(), 0.0);
  EXPECT_DOUBLE_EQ(os.min(), 3.0);
  EXPECT_DOUBLE_EQ(os.max(), 3.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(15.0);  // clamped to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace hyperdrive::util
