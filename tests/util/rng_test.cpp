#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace hyperdrive::util {
namespace {

TEST(SplitMix64Test, AdvancesStateAndProducesDistinctValues) {
  std::uint64_t state = 1;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 1u);
}

TEST(DeriveSeedTest, IsDeterministic) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
}

TEST(DeriveSeedTest, NearbyStreamsAreUncorrelated) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(derive_seed(42, s));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedDifferentSequence) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBoundsAndFullCoverage) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 9);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(7, 3), 7);  // hi < lo clamps to lo
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  constexpr int kN = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsFallsBackToUniform) {
  Rng rng(37);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.categorical(weights)];
  for (int c : counts) EXPECT_GT(c, 8000);
}

TEST(RngTest, CategoricalEmptyReturnsZero) {
  Rng rng(41);
  EXPECT_EQ(rng.categorical({}), 0u);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(43);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(47);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  Rng a2 = Rng(47).fork(1);
  // Same stream id reproduces; different ids diverge.
  EXPECT_EQ(a.next(), a2.next());
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, StateRestoreContinuesTheExactSequence) {
  // Checkpoint support: a restored generator must continue the stream as if
  // the capture never happened — including the cached Box-Muller spare an
  // in-flight normal() leaves behind.
  Rng rng(123);
  for (int i = 0; i < 17; ++i) (void)rng.next();
  (void)rng.normal();  // odd draw: the spare deviate is now cached

  const RngState snap = rng.state();
  std::vector<double> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.normal());
  for (int i = 0; i < 8; ++i) expected.push_back(rng.uniform());

  Rng resumed(999);  // deliberately different start
  resumed.restore(snap);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double got = i < 32 ? resumed.normal() : resumed.uniform();
    EXPECT_EQ(got, expected[i]) << "draw " << i;
  }

  // Round-trip identity: capture/restore is a no-op on the stream.
  const RngState again = resumed.state();
  Rng twin(1);
  twin.restore(again);
  EXPECT_EQ(twin.next(), resumed.next());
}

}  // namespace
}  // namespace hyperdrive::util
