#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hyperdrive::util {
namespace {

TEST(CsvEscapeTest, PlainFieldUnchanged) { EXPECT_EQ(csv_escape("hello"), "hello"); }

TEST(CsvEscapeTest, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscapeTest, QuoteDoubled) { EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\""); }

TEST(CsvEscapeTest, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  writer.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(CsvWriterTest, RejectsWidthMismatch) {
  std::ostringstream out;
  CsvWriter writer(out, {"a", "b"});
  EXPECT_THROW(writer.write_row({"1"}), std::invalid_argument);
}

TEST(CsvParseTest, SimpleTable) {
  const auto t = parse_csv_string("a,b\n1,2\n3,4\n");
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndNewlines) {
  const auto t = parse_csv_string("a,b\n\"x,y\",\"line1\nline2\"\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "x,y");
  EXPECT_EQ(t.rows[0][1], "line1\nline2");
}

TEST(CsvParseTest, EscapedQuotes) {
  const auto t = parse_csv_string("a\n\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][0], "he said \"hi\"");
}

TEST(CsvParseTest, ToleratesCrlfAndMissingTrailingNewline) {
  const auto t = parse_csv_string("a,b\r\n1,2");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(CsvParseTest, SkipsBlankLines) {
  const auto t = parse_csv_string("a,b\n\n1,2\n\n");
  EXPECT_EQ(t.rows.size(), 1u);
}

TEST(CsvParseTest, RaggedRowThrows) {
  EXPECT_THROW(parse_csv_string("a,b\n1\n"), std::runtime_error);
}

TEST(CsvParseTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_string("a\n\"oops\n"), std::runtime_error);
}

TEST(CsvParseTest, RoundTripThroughWriter) {
  std::ostringstream out;
  CsvWriter writer(out, {"x", "y"});
  writer.write_row({"a,b", "c\"d"});
  writer.write_row({"plain", "line\nbreak"});
  const auto t = parse_csv_string(out.str());
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "a,b");
  EXPECT_EQ(t.rows[0][1], "c\"d");
  EXPECT_EQ(t.rows[1][1], "line\nbreak");
}

TEST(CsvTableTest, ColumnLookup) {
  const auto t = parse_csv_string("job,epoch,perf\n1,1,0.5\n");
  EXPECT_EQ(t.column("epoch"), 1u);
  EXPECT_THROW((void)t.column("nope"), std::out_of_range);
}

TEST(CsvFileTest, ReadFile) {
  const std::string path = ::testing::TempDir() + "/hd_csv_test.csv";
  {
    std::ofstream f(path);
    f << "a,b\n7,8\n";
  }
  const auto t = read_csv_file(path);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "7");
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace hyperdrive::util
