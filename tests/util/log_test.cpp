#include "util/log.hpp"

#include <gtest/gtest.h>

namespace hyperdrive::util {
namespace {

/// RAII restore of the global log level, so tests don't leak state.
class LevelGuard {
 public:
  LevelGuard() : saved_(log_level()) {}
  ~LevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelRoundTrips) {
  LevelGuard guard;
  for (const auto level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(LogTest, MessagesBelowLevelAreCheap) {
  LevelGuard guard;
  set_log_level(LogLevel::Off);
  // The formatting lambda must not even run when filtered: use a counter.
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("expensive");
  };
  // log_debug takes the arguments eagerly, but only concatenates when the
  // level passes; verify the level gate at least suppresses emission without
  // crashing, and that re-enabling works.
  log_debug("test", "dropped");
  set_log_level(LogLevel::Debug);
  log_debug("test", "emitted ", expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, ConcatBuildsMessage) {
  EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(detail::concat(), "");
}

TEST(LogTest, AllLevelsEmitWithoutCrashing) {
  LevelGuard guard;
  set_log_level(LogLevel::Debug);
  log_debug("component", "debug message ", 1);
  log_info("component", "info message ", 2);
  log_warn("component", "warn message ", 3);
  log_error("component", "error message ", 4);
}

}  // namespace
}  // namespace hyperdrive::util
