#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace hyperdrive::util {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(SimTime::minutes(2).to_seconds(), 120.0);
  EXPECT_DOUBLE_EQ(SimTime::hours(1).to_minutes(), 60.0);
  EXPECT_DOUBLE_EQ(SimTime::seconds(90).to_minutes(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2).to_milliseconds(), 2000.0);
}

TEST(SimTimeTest, Arithmetic) {
  const auto t = SimTime::seconds(10) + SimTime::seconds(5);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 15.0);
  EXPECT_DOUBLE_EQ((t - SimTime::seconds(5)).to_seconds(), 10.0);
  EXPECT_DOUBLE_EQ((t * 2.0).to_seconds(), 30.0);
  EXPECT_DOUBLE_EQ((t / 3.0).to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(SimTime::seconds(10) / SimTime::seconds(4), 2.5);
}

TEST(SimTimeTest, CompoundAssignment) {
  auto t = SimTime::seconds(1);
  t += SimTime::seconds(2);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 3.0);
  t -= SimTime::seconds(1);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 2.0);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_EQ(SimTime::minutes(1), SimTime::seconds(60));
  EXPECT_GT(SimTime::infinity(), SimTime::hours(1e9));
}

TEST(SimTimeTest, ZeroAndDefault) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_DOUBLE_EQ(SimTime::zero().to_seconds(), 0.0);
}

TEST(FormatDurationTest, PicksSensibleUnits) {
  EXPECT_EQ(format_duration(SimTime::milliseconds(158)), "158ms");
  EXPECT_EQ(format_duration(SimTime::seconds(2.5)), "2.5s");
  EXPECT_EQ(format_duration(SimTime::minutes(47.3)), "47.3min");
  EXPECT_EQ(format_duration(SimTime::hours(2.81)), "2.81h");
  EXPECT_EQ(format_duration(SimTime::infinity()), "inf");
}

}  // namespace
}  // namespace hyperdrive::util
