#include "workload/trace_tools.hpp"

#include <gtest/gtest.h>

#include "workload/cifar_model.hpp"

namespace hyperdrive::workload {
namespace {

TEST(TraceToolsTest, ReachableTraceAlwaysReachesTarget) {
  CifarWorkloadModel model;
  for (std::uint64_t seed : {1ull, 7ull, 600ull}) {
    const auto trace = reachable_trace(model, 20, seed);
    EXPECT_TRUE(trace.target_reachable());
    EXPECT_EQ(trace.jobs.size(), 20u);
  }
}

TEST(TraceToolsTest, ReachableTraceIsDeterministic) {
  CifarWorkloadModel model;
  const auto a = reachable_trace(model, 20, 42);
  const auto b = reachable_trace(model, 20, 42);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].curve.perf, b.jobs[i].curve.perf);
  }
}

TEST(TraceToolsTest, FirstWinnerIndexFindsTheFirstReachingJob) {
  CifarWorkloadModel model;
  const auto trace = reachable_trace(model, 50, 3);
  const std::size_t first = first_winner_index(trace);
  ASSERT_LT(first, trace.jobs.size());
  EXPECT_NE(trace.jobs[first].curve.first_epoch_reaching(trace.target_performance), 0u);
  for (std::size_t i = 0; i < first; ++i) {
    EXPECT_EQ(trace.jobs[i].curve.first_epoch_reaching(trace.target_performance), 0u);
  }
}

TEST(TraceToolsTest, FirstWinnerIndexIsSizeWhenUnreachable) {
  Trace trace;
  trace.target_performance = 2.0;  // nothing reaches a >1 normalized target
  trace.jobs.resize(0);
  EXPECT_EQ(first_winner_index(trace), 0u);
}

TEST(TraceToolsTest, SuitableTraceKeepsWinnerOutOfFirstWave) {
  CifarWorkloadModel model;
  const std::size_t machines = 8;
  const auto trace = suitable_trace(model, 50, 1200, machines);
  EXPECT_TRUE(trace.target_reachable());
  EXPECT_GE(first_winner_index(trace), machines);
}

TEST(TraceToolsTest, RenoiseKeepsConfigsAndChangesNoise) {
  CifarWorkloadModel model;
  const auto base = reachable_trace(model, 10, 5);
  const auto renoised = renoise(model, base, 999);
  ASSERT_EQ(renoised.jobs.size(), base.jobs.size());
  bool any_curve_changed = false;
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    // The hyperparameter configuration is the experiment's identity and must
    // survive re-noising; only the realized training curve may move.
    EXPECT_EQ(renoised.jobs[i].config.stable_hash(), base.jobs[i].config.stable_hash());
    if (renoised.jobs[i].curve.perf != base.jobs[i].curve.perf) any_curve_changed = true;
  }
  EXPECT_TRUE(any_curve_changed);

  // Same experiment seed => same realization (renoise is pure).
  const auto again = renoise(model, base, 999);
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_EQ(again.jobs[i].curve.perf, renoised.jobs[i].curve.perf);
  }
}

}  // namespace
}  // namespace hyperdrive::workload
