#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "workload/cifar_model.hpp"

namespace hyperdrive::workload {
namespace {

TEST(GenerateTraceTest, MetadataAndSize) {
  CifarWorkloadModel model;
  const auto trace = generate_trace(model, 25, 1);
  EXPECT_EQ(trace.jobs.size(), 25u);
  EXPECT_EQ(trace.workload_name, "cifar10");
  EXPECT_DOUBLE_EQ(trace.target_performance, 0.77);
  EXPECT_DOUBLE_EQ(trace.kill_threshold, 0.15);
  EXPECT_EQ(trace.max_epochs, 120u);
  EXPECT_EQ(trace.evaluation_boundary, 10u);
}

TEST(GenerateTraceTest, JobIdsAreSequentialFromOne) {
  CifarWorkloadModel model;
  const auto trace = generate_trace(model, 10, 2);
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(trace.jobs[i].job_id, i + 1);
    EXPECT_EQ(trace.jobs[i].curve.perf.size(), model.max_epochs());
  }
}

TEST(GenerateTraceTest, DeterministicPerSeed) {
  CifarWorkloadModel model;
  const auto a = generate_trace(model, 10, 3);
  const auto b = generate_trace(model, 10, 3);
  const auto c = generate_trace(model, 10, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.jobs[i].curve.perf, b.jobs[i].curve.perf);
    EXPECT_EQ(a.jobs[i].config.stable_hash(), b.jobs[i].config.stable_hash());
  }
  // A different seed draws different configurations.
  EXPECT_NE(a.jobs[0].config.stable_hash(), c.jobs[0].config.stable_hash());
}

TEST(TraceShuffleTest, PermutesOrderButKeepsContent) {
  CifarWorkloadModel model;
  const auto trace = generate_trace(model, 30, 5);
  util::Rng rng(99);
  const auto shuffled = trace.shuffled(rng);
  ASSERT_EQ(shuffled.jobs.size(), trace.jobs.size());

  std::set<std::uint64_t> original_ids, shuffled_ids;
  std::vector<std::uint64_t> order_a, order_b;
  for (const auto& j : trace.jobs) {
    original_ids.insert(j.job_id);
    order_a.push_back(j.job_id);
  }
  for (const auto& j : shuffled.jobs) {
    shuffled_ids.insert(j.job_id);
    order_b.push_back(j.job_id);
  }
  EXPECT_EQ(original_ids, shuffled_ids);
  EXPECT_NE(order_a, order_b);
  EXPECT_EQ(shuffled.target_performance, trace.target_performance);
}

TEST(TraceTargetReachableTest, DetectsWinners) {
  Trace trace;
  trace.target_performance = 0.7;
  TraceJob loser;
  loser.job_id = 1;
  loser.curve.perf = {0.1, 0.2, 0.3};
  trace.jobs.push_back(loser);
  EXPECT_FALSE(trace.target_reachable());

  TraceJob winner;
  winner.job_id = 2;
  winner.curve.perf = {0.2, 0.5, 0.75};
  trace.jobs.push_back(winner);
  EXPECT_TRUE(trace.target_reachable());
}

TEST(TraceCsvTest, SaveLoadRoundTrip) {
  CifarWorkloadModel model;
  const auto trace = generate_trace(model, 5, 6);
  std::stringstream buffer;
  trace.save_csv(buffer);

  const auto loaded = Trace::load_csv(buffer, "cifar10", trace.target_performance,
                                      trace.kill_threshold, trace.evaluation_boundary);
  ASSERT_EQ(loaded.jobs.size(), trace.jobs.size());
  EXPECT_EQ(loaded.max_epochs, trace.max_epochs);
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(loaded.jobs[i].job_id, trace.jobs[i].job_id);
    ASSERT_EQ(loaded.jobs[i].curve.perf.size(), trace.jobs[i].curve.perf.size());
    for (std::size_t e = 0; e < trace.jobs[i].curve.perf.size(); ++e) {
      EXPECT_NEAR(loaded.jobs[i].curve.perf[e], trace.jobs[i].curve.perf[e], 1e-6);
    }
    EXPECT_NEAR(loaded.jobs[i].curve.epoch_duration.to_seconds(),
                trace.jobs[i].curve.epoch_duration.to_seconds(), 1e-5);
  }
}

TEST(TraceCsvTest, NonConsecutiveEpochsRejected) {
  std::stringstream bad("job_id,epoch,duration_s,perf\n1,1,60,0.1\n1,3,60,0.2\n");
  EXPECT_THROW(Trace::load_csv(bad, "x", 0.5, 0.1, 10), std::runtime_error);
}

}  // namespace
}  // namespace hyperdrive::workload
