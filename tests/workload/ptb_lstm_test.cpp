// Tests for the multi-metric PTB-LSTM workload (§9 case study).
#include "workload/ptb_lstm_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/trace.hpp"

namespace hyperdrive::workload {
namespace {

TEST(PtbLstmModelTest, Metadata) {
  PtbLstmWorkloadModel model;
  EXPECT_EQ(model.name(), "ptb_lstm");
  EXPECT_EQ(model.space().size(), 10u);
  EXPECT_TRUE(model.space().dims().front().first == "lambda");
  EXPECT_EQ(model.max_epochs(), 40u);
  EXPECT_EQ(model.evaluation_boundary(), 5u);
}

TEST(PtbLstmModelTest, PerplexityNormalizationRoundTrips) {
  PtbLstmWorkloadModel model;
  EXPECT_DOUBLE_EQ(model.normalize_ppl(800.0), 0.0);
  EXPECT_DOUBLE_EQ(model.normalize_ppl(65.0), 1.0);
  for (double ppl : {90.0, 150.0, 400.0}) {
    EXPECT_NEAR(model.denormalize_ppl(model.normalize_ppl(ppl)), ppl, 1e-9);
  }
  // Lower perplexity = higher score (kill threshold below target).
  EXPECT_LT(model.kill_threshold(), model.target_performance());
}

TEST(PtbLstmModelTest, LambdaControlsSparsityMonotonically) {
  PtbLstmWorkloadModel model;
  Configuration low, mid, high;
  for (auto* c : {&low, &mid, &high}) {
    // Fill all dims with fixed midpoints; lambda varies.
    util::Rng rng(1);
    *c = model.space().sample(rng);
  }
  low.set("lambda", 1e-7);
  mid.set("lambda", 1e-4);
  high.set("lambda", 1e-2);
  EXPECT_LT(model.target_sparsity(low), 0.05);
  EXPECT_GT(model.target_sparsity(mid), 0.1);
  EXPECT_LT(model.target_sparsity(mid), 0.7);
  EXPECT_GT(model.target_sparsity(high), 0.75);
  EXPECT_LT(model.target_sparsity(high), 0.91);
}

TEST(PtbLstmModelTest, SparsityCostsPerplexity) {
  // Same configuration except lambda: higher lambda must not improve the
  // primary metric, and far past the knee it must hurt it noticeably.
  PtbLstmWorkloadModel model;
  util::Rng rng(2);
  auto config = model.space().sample(rng);
  config.set("lambda", 1e-7);
  const auto no_reg = model.quality(config);
  config.set("lambda", 8e-4);
  const auto moderate = model.quality(config);
  config.set("lambda", 1e-2);
  const auto heavy = model.quality(config);
  if (no_reg.learns && moderate.learns && heavy.learns) {
    EXPECT_GE(no_reg.final_perf, moderate.final_perf - 1e-9);
    EXPECT_GT(moderate.final_perf, heavy.final_perf);
  }
}

TEST(PtbLstmModelTest, CurvesCarrySecondaryMetric) {
  PtbLstmWorkloadModel model;
  util::Rng rng(3);
  const auto config = model.space().sample(rng);
  const auto curve = model.realize(config, 1);
  ASSERT_EQ(curve.secondary.size(), curve.perf.size());
  for (double s : curve.secondary) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(PtbLstmModelTest, SparsityRampsUpForLearners) {
  PtbLstmWorkloadModel model;
  util::Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const auto config = model.space().sample(rng);
    const auto q = model.quality(config);
    if (!q.learns || model.target_sparsity(config) < 0.3) continue;
    const auto curve = model.realize(config, 1);
    // Early sparsity well below the asymptote, late sparsity near it.
    EXPECT_LT(curve.secondary.front(), model.target_sparsity(config) * 0.8);
    EXPECT_NEAR(curve.secondary.back(), model.target_sparsity(config), 0.12);
  }
}

TEST(PtbLstmModelTest, DivergedModelsShrinkNothing) {
  PtbLstmWorkloadModel model;
  util::Rng rng(5);
  auto config = model.space().sample(rng);
  config.set("lr", 9.0);
  config.set("grad_clip", 14.0);
  const auto q = model.quality(config);
  ASSERT_FALSE(q.learns);
  const auto curve = model.realize(config, 1);
  for (double s : curve.secondary) EXPECT_DOUBLE_EQ(s, 0.0);
  for (double y : curve.perf) EXPECT_LT(y, model.kill_threshold() + 0.05);
}

TEST(PtbLstmModelTest, PopulationHasJointGoalAchievers) {
  // Some configurations must meet both perplexity <= 100 and sparsity >= 0.5
  // — otherwise the §9 case study is vacuous.
  PtbLstmWorkloadModel model;
  const auto trace = generate_trace(model, 400, 77);
  const double ppl_goal = model.normalize_ppl(100.0);
  std::size_t joint = 0;
  for (const auto& job : trace.jobs) {
    for (std::size_t e = 0; e < job.curve.perf.size(); ++e) {
      if (job.curve.perf[e] >= ppl_goal && job.curve.secondary[e] >= 0.5) {
        ++joint;
        break;
      }
    }
  }
  EXPECT_GT(joint, 0u);
  EXPECT_LT(joint, 100u);  // but they must be rare enough to need search
}

TEST(PtbLstmModelTest, EpochsAreMinutesLong) {
  PtbLstmWorkloadModel model;
  util::Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    const auto curve = model.realize(model.space().sample(rng), 1);
    EXPECT_GT(curve.epoch_duration.to_seconds(), 60.0);
    EXPECT_LT(curve.epoch_duration.to_minutes(), 20.0);
  }
}

TEST(PtbLstmModelTest, DeterministicRealization) {
  PtbLstmWorkloadModel model;
  util::Rng rng(7);
  const auto config = model.space().sample(rng);
  const auto a = model.realize(config, 9);
  const auto b = model.realize(config, 9);
  EXPECT_EQ(a.perf, b.perf);
  EXPECT_EQ(a.secondary, b.secondary);
}

}  // namespace
}  // namespace hyperdrive::workload
