// Calibration and determinism tests for the synthetic workload models — the
// substitution layer standing in for live CIFAR-10 / LunarLander training.
// The population assertions pin the statistics the paper reports (Fig. 1,
// Fig. 2a, Fig. 8) so future tuning cannot silently drift away from them.
#include "workload/workload_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/cifar_model.hpp"
#include "workload/lunar_model.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::workload {
namespace {

TEST(GroundTruthCurveTest, Helpers) {
  GroundTruthCurve c;
  c.perf = {0.1, 0.3, 0.5, 0.4};
  c.raw_min = -500.0;
  c.raw_max = 300.0;
  EXPECT_DOUBLE_EQ(c.final_perf(), 0.4);
  EXPECT_DOUBLE_EQ(c.best_perf(), 0.5);
  EXPECT_EQ(c.max_epochs(), 4u);
  EXPECT_EQ(c.first_epoch_reaching(0.45), 3u);
  EXPECT_EQ(c.first_epoch_reaching(0.9), 0u);
  EXPECT_DOUBLE_EQ(c.denormalize(0.5), -100.0);
}

TEST(GroundTruthCurveTest, EmptyCurveIsSafe) {
  GroundTruthCurve c;
  EXPECT_DOUBLE_EQ(c.final_perf(), 0.0);
  EXPECT_DOUBLE_EQ(c.best_perf(), 0.0);
  EXPECT_EQ(c.first_epoch_reaching(0.1), 0u);
}

class CifarPopulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new CifarWorkloadModel();
    trace_ = new Trace(generate_trace(*model_, 1500, 20260705));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete model_;
    trace_ = nullptr;
    model_ = nullptr;
  }
  static CifarWorkloadModel* model_;
  static Trace* trace_;
};
CifarWorkloadModel* CifarPopulationTest::model_ = nullptr;
Trace* CifarPopulationTest::trace_ = nullptr;

TEST_F(CifarPopulationTest, MetadataMatchesPaper) {
  EXPECT_EQ(model_->name(), "cifar10");
  EXPECT_EQ(model_->max_epochs(), 120u);
  EXPECT_DOUBLE_EQ(model_->target_performance(), 0.77);
  EXPECT_DOUBLE_EQ(model_->kill_threshold(), 0.15);
  EXPECT_EQ(model_->evaluation_boundary(), 10u);
  EXPECT_EQ(model_->space().size(), 14u);  // 14 hyperparameters (§6.1)
}

TEST_F(CifarPopulationTest, NonLearnerFractionNearPaper) {
  // Paper: 32% of configurations at or below random accuracy (Fig. 2a).
  std::size_t non_learners = 0;
  for (const auto& job : trace_->jobs) {
    if (job.curve.final_perf() <= 0.105) ++non_learners;
  }
  const double frac = static_cast<double>(non_learners) / trace_->jobs.size();
  EXPECT_GT(frac, 0.18);
  EXPECT_LT(frac, 0.42);
}

TEST_F(CifarPopulationTest, GoodConfigurationsAreSparse) {
  // Fig. 1: only 3 of 50 exceed 75%; the winners' tail must be thin but
  // non-empty so 100-config experiments usually contain a target-reacher.
  std::size_t over75 = 0, over77 = 0;
  for (const auto& job : trace_->jobs) {
    if (job.curve.best_perf() > 0.75) ++over75;
    if (job.curve.best_perf() >= 0.77) ++over77;
  }
  const double frac75 = static_cast<double>(over75) / trace_->jobs.size();
  const double frac77 = static_cast<double>(over77) / trace_->jobs.size();
  EXPECT_GT(frac75, 0.01);
  EXPECT_LT(frac75, 0.12);
  EXPECT_GT(frac77, 0.005);
}

TEST_F(CifarPopulationTest, MajorityStaysLow) {
  std::size_t under40 = 0;
  for (const auto& job : trace_->jobs) {
    if (job.curve.final_perf() < 0.40) ++under40;
  }
  EXPECT_GT(static_cast<double>(under40) / trace_->jobs.size(), 0.60);
}

TEST_F(CifarPopulationTest, BestConfigsPeakNearPaperCeiling) {
  double best = 0.0;
  for (const auto& job : trace_->jobs) best = std::max(best, job.curve.best_perf());
  EXPECT_GT(best, 0.77);
  EXPECT_LT(best, 0.88);  // no super-human CIFAR models from this CNN
}

TEST_F(CifarPopulationTest, EpochDurationsAboutAMinute) {
  double total = 0.0;
  for (const auto& job : trace_->jobs) total += job.curve.epoch_duration.to_seconds();
  const double mean_s = total / trace_->jobs.size();
  EXPECT_GT(mean_s, 40.0);
  EXPECT_LT(mean_s, 100.0);
}

TEST_F(CifarPopulationTest, CurvesStayInValidAccuracyRange) {
  for (const auto& job : trace_->jobs) {
    for (double y : job.curve.perf) {
      EXPECT_GE(y, 0.0);
      EXPECT_LE(y, 1.0);
    }
  }
}

TEST_F(CifarPopulationTest, LearnersEscapeKillThresholdByFirstBoundary) {
  // The domain-knowledge kill rule (15% at epoch 10) must not cull winners.
  for (const auto& job : trace_->jobs) {
    if (job.curve.best_perf() >= 0.75) {
      EXPECT_GT(job.curve.perf.at(9), 0.15)
          << "winner killed at first boundary, job " << job.job_id;
    }
  }
}

TEST_F(CifarPopulationTest, OvertakesExist) {
  // Fig. 2b: some pair (A, B) where A leads at epoch 20 but B wins finally.
  std::size_t overtakes = 0;
  const auto& jobs = trace_->jobs;
  for (std::size_t i = 0; i + 1 < jobs.size() && overtakes == 0; ++i) {
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      const auto& a = jobs[i].curve;
      const auto& b = jobs[j].curve;
      if (a.final_perf() < 0.4 || b.final_perf() < 0.4) continue;
      const bool a_leads_early = a.perf.at(19) > b.perf.at(19) + 0.02;
      const bool b_wins = b.final_perf() > a.final_perf() + 0.02;
      if (a_leads_early && b_wins) {
        ++overtakes;
        break;
      }
    }
  }
  EXPECT_GT(overtakes, 0u);
}

TEST(CifarDeterminismTest, SameConfigSameSeedSameCurve) {
  CifarWorkloadModel model;
  util::Rng rng(5);
  const auto config = model.space().sample(rng);
  const auto a = model.realize(config, 7);
  const auto b = model.realize(config, 7);
  EXPECT_EQ(a.perf, b.perf);
  EXPECT_EQ(a.epoch_duration, b.epoch_duration);
}

TEST(CifarDeterminismTest, ExperimentSeedChangesNoiseNotQuality) {
  CifarWorkloadModel model;
  util::Rng rng(6);
  // Find a learning configuration.
  Configuration config;
  for (int i = 0; i < 200; ++i) {
    config = model.space().sample(rng);
    if (model.quality(config).learns) break;
  }
  ASSERT_TRUE(model.quality(config).learns);
  const auto a = model.realize(config, 1);
  const auto b = model.realize(config, 2);
  EXPECT_NE(a.perf, b.perf);  // different noise
  EXPECT_NEAR(a.final_perf(), b.final_perf(), 0.08);  // same intrinsic quality
  EXPECT_EQ(a.epoch_duration, b.epoch_duration);      // duration is intrinsic
}

TEST(CifarDeterminismTest, QualityIsPureFunctionOfConfig) {
  CifarWorkloadModel model;
  util::Rng rng(8);
  const auto config = model.space().sample(rng);
  const auto q1 = model.quality(config);
  const auto q2 = model.quality(config);
  EXPECT_EQ(q1.final_perf, q2.final_perf);
  EXPECT_EQ(q1.learns, q2.learns);
  EXPECT_EQ(q1.speed, q2.speed);
}

class LunarPopulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new LunarWorkloadModel();
    trace_ = new Trace(generate_trace(*model_, 1500, 42424242));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete model_;
    trace_ = nullptr;
    model_ = nullptr;
  }
  static LunarWorkloadModel* model_;
  static Trace* trace_;
};
LunarWorkloadModel* LunarPopulationTest::model_ = nullptr;
Trace* LunarPopulationTest::trace_ = nullptr;

TEST_F(LunarPopulationTest, MetadataMatchesPaper) {
  EXPECT_EQ(model_->name(), "lunarlander");
  EXPECT_EQ(model_->space().size(), 11u);  // 11 hyperparameters (§6.1)
  // Eq. 4 normalization with rmin=-500, rmax=300.
  EXPECT_DOUBLE_EQ(model_->normalize_reward(-500.0), 0.0);
  EXPECT_DOUBLE_EQ(model_->normalize_reward(300.0), 1.0);
  EXPECT_DOUBLE_EQ(model_->target_performance(), 0.875);  // solved at 200
  EXPECT_DOUBLE_EQ(model_->kill_threshold(), 0.5);        // crash at -100
  EXPECT_EQ(model_->evaluation_boundary(), 10u);  // 2000 trials / 200 per epoch
}

TEST_F(LunarPopulationTest, MajorityNonLearning) {
  // Fig. 8: over 50% of jobs are non-learning (including learning-crashes).
  std::size_t non_learning = 0;
  for (const auto& job : trace_->jobs) {
    if (job.curve.final_perf() <= model_->kill_threshold() + 0.01) ++non_learning;
  }
  EXPECT_GT(static_cast<double>(non_learning) / trace_->jobs.size(), 0.50);
}

TEST_F(LunarPopulationTest, LearningCrashesExist) {
  // Some configurations climb well above the crash range and then fall back
  // into it for good.
  std::size_t crashes = 0;
  for (const auto& job : trace_->jobs) {
    const double best_raw = job.curve.denormalize(job.curve.best_perf());
    const double final_raw = job.curve.denormalize(job.curve.final_perf());
    if (best_raw > -20.0 && final_raw <= -100.0) ++crashes;
  }
  const double frac = static_cast<double>(crashes) / trace_->jobs.size();
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.30);
}

TEST_F(LunarPopulationTest, SolversAreRareButPresent) {
  std::size_t solved = 0;
  for (const auto& job : trace_->jobs) {
    if (job.curve.first_epoch_reaching(model_->target_performance()) != 0) ++solved;
  }
  const double frac = static_cast<double>(solved) / trace_->jobs.size();
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.12);
}

TEST_F(LunarPopulationTest, RewardsWithinEnvironmentBounds) {
  for (const auto& job : trace_->jobs) {
    for (double y : job.curve.perf) {
      const double raw = job.curve.denormalize(y);
      EXPECT_GE(raw, -500.0);
      EXPECT_LE(raw, 300.0);
    }
  }
}

TEST_F(LunarPopulationTest, LearnersEscapeCrashRangeByFirstBoundary) {
  for (const auto& job : trace_->jobs) {
    if (job.curve.first_epoch_reaching(model_->target_performance()) != 0) {
      EXPECT_GT(job.curve.perf.at(9), model_->kill_threshold())
          << "solver still in crash range at the kill boundary, job " << job.job_id;
    }
  }
}

TEST_F(LunarPopulationTest, CrashedJobsStayDown) {
  // Once a crash happens the reward must remain at or below the crash range
  // (Fig. 8: "falls and remains at or below a non-learning value").
  for (const auto& job : trace_->jobs) {
    const auto& perf = job.curve.perf;
    const double final_raw = job.curve.denormalize(job.curve.final_perf());
    const double best_raw = job.curve.denormalize(job.curve.best_perf());
    if (best_raw > -20.0 && final_raw <= -100.0) {
      // Find the last epoch above the crash range; everything after must be
      // low.
      std::size_t last_high = 0;
      for (std::size_t e = 0; e < perf.size(); ++e) {
        if (job.curve.denormalize(perf[e]) > -80.0) last_high = e;
      }
      for (std::size_t e = last_high + 3; e < perf.size(); ++e) {
        EXPECT_LE(job.curve.denormalize(perf[e]), -75.0);
      }
    }
  }
}

TEST(LunarDeterminismTest, RealizationDeterministic) {
  LunarWorkloadModel model;
  util::Rng rng(9);
  const auto config = model.space().sample(rng);
  EXPECT_EQ(model.realize(config, 3).perf, model.realize(config, 3).perf);
}

TEST(WorkloadOptionsTest, EpochDurationScaleRespected) {
  CifarModelOptions opts;
  opts.epoch_duration_scale = 2.0;
  CifarWorkloadModel scaled(opts);
  CifarWorkloadModel normal;
  util::Rng rng(10);
  const auto config = normal.space().sample(rng);
  EXPECT_NEAR(scaled.realize(config, 1).epoch_duration.to_seconds(),
              2.0 * normal.realize(config, 1).epoch_duration.to_seconds(), 1e-9);
}

TEST(WorkloadOptionsTest, NoiseScaleZeroGivesSmoothCurves) {
  CifarModelOptions opts;
  opts.noise_scale = 0.0;
  CifarWorkloadModel model(opts);
  util::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const auto config = model.space().sample(rng);
    const auto q = model.quality(config);
    if (!q.learns) continue;
    const auto curve = model.realize(config, 1);
    // Smooth growth: differences should never be strongly negative.
    for (std::size_t e = 1; e < curve.perf.size(); ++e) {
      EXPECT_GT(curve.perf[e] - curve.perf[e - 1], -0.01);
    }
  }
}

}  // namespace
}  // namespace hyperdrive::workload

#include "workload/imagenet_model.hpp"

namespace hyperdrive::workload {
namespace {

TEST(ImagenetModelTest, MetadataAndScale) {
  ImagenetWorkloadModel model;
  EXPECT_EQ(model.name(), "imagenet22k");
  EXPECT_EQ(model.space().size(), 9u);
  EXPECT_DOUBLE_EQ(model.target_performance(), 0.35);
  EXPECT_LT(model.kill_threshold(), 0.05);
}

TEST(ImagenetModelTest, FullRunsTakeDays) {
  // The intro's framing: a full training run is on the order of 10 days.
  ImagenetWorkloadModel model;
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto curve = model.realize(model.space().sample(rng), 1);
    const double days = curve.epoch_duration.to_hours() *
                        static_cast<double>(curve.max_epochs()) / 24.0;
    EXPECT_GT(days, 5.0);
    EXPECT_LT(days, 25.0);  // poorly-sharded configs pay for it
  }
}

TEST(ImagenetModelTest, AsyncDivergenceRule) {
  ImagenetWorkloadModel model;
  util::Rng rng(2);
  auto config = model.space().sample(rng);
  config.set("lr", 0.8);
  config.set("staleness_bound", std::int64_t{32});
  EXPECT_FALSE(model.quality(config).learns);
  config.set("lr", 0.02);
  config.set("staleness_bound", std::int64_t{2});
  EXPECT_TRUE(model.quality(config).learns);
}

TEST(ImagenetModelTest, DeterministicAndBounded) {
  ImagenetWorkloadModel model;
  util::Rng rng(3);
  const auto config = model.space().sample(rng);
  const auto a = model.realize(config, 4);
  EXPECT_EQ(a.perf, model.realize(config, 4).perf);
  for (double y : a.perf) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 0.45);  // era-appropriate top-1 ceiling
  }
}

TEST(ImagenetModelTest, TargetReachableButSparse) {
  ImagenetWorkloadModel model;
  const auto trace = generate_trace(model, 500, 9);
  std::size_t winners = 0;
  for (const auto& job : trace.jobs) {
    if (job.curve.first_epoch_reaching(model.target_performance()) != 0) ++winners;
  }
  EXPECT_GT(winners, 0u);
  EXPECT_LT(winners, 100u);
}

}  // namespace
}  // namespace hyperdrive::workload
