#include "workload/hyperparameters.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hyperdrive::workload {
namespace {

HyperparameterSpace mixed_space() {
  HyperparameterSpace space;
  space.add("lr", ContinuousDomain{1e-5, 1e-1, /*log_scale=*/true})
      .add("momentum", ContinuousDomain{0.0, 0.99})
      .add("batch", IntegerDomain{32, 256, /*log_scale=*/true})
      .add("layers", IntegerDomain{1, 5})
      .add("optimizer", CategoricalDomain{{"sgd", "adam", "rmsprop"}});
  return space;
}

TEST(SpaceValidationTest, RejectsBadDomains) {
  HyperparameterSpace s;
  EXPECT_THROW(s.add("x", ContinuousDomain{2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(s.add("x", ContinuousDomain{-1.0, 1.0, true}), std::invalid_argument);
  EXPECT_THROW(s.add("x", IntegerDomain{5, 2}), std::invalid_argument);
  EXPECT_THROW(s.add("x", IntegerDomain{0, 5, true}), std::invalid_argument);
  EXPECT_THROW(s.add("x", CategoricalDomain{{}}), std::invalid_argument);
}

TEST(SpaceSampleTest, ValuesStayInBounds) {
  const auto space = mixed_space();
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto c = space.sample(rng);
    EXPECT_GE(c.get_double("lr"), 1e-5);
    EXPECT_LE(c.get_double("lr"), 1e-1);
    EXPECT_GE(c.get_double("momentum"), 0.0);
    EXPECT_LT(c.get_double("momentum"), 0.99);
    EXPECT_GE(c.get_int("batch"), 32);
    EXPECT_LE(c.get_int("batch"), 256);
    EXPECT_GE(c.get_int("layers"), 1);
    EXPECT_LE(c.get_int("layers"), 5);
    const auto& opt = c.get_categorical("optimizer");
    EXPECT_TRUE(opt == "sgd" || opt == "adam" || opt == "rmsprop");
  }
}

TEST(SpaceSampleTest, LogScaleSpreadsAcrossDecades) {
  const auto space = mixed_space();
  util::Rng rng(2);
  int low_decade = 0;  // [1e-5, 1e-3)
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    if (space.sample(rng).get_double("lr") < 1e-3) ++low_decade;
  }
  // Log-uniform gives half the samples to the lower two of four decades;
  // plain uniform would put ~1% there.
  EXPECT_NEAR(low_decade / static_cast<double>(kN), 0.5, 0.05);
}

TEST(SpaceSampleTest, IntegerLogScaleCoversRange) {
  HyperparameterSpace s;
  s.add("n", IntegerDomain{16, 512, true});
  util::Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(s.sample(rng).get_int("n"));
  EXPECT_LE(*seen.begin(), 20);
  EXPECT_GE(*seen.rbegin(), 450);
}

TEST(SpaceGridTest, CartesianSize) {
  HyperparameterSpace s;
  s.add("a", ContinuousDomain{0.0, 1.0}).add("b", IntegerDomain{1, 3}).add(
      "c", CategoricalDomain{{"x", "y"}});
  const auto grid = s.grid(3);
  EXPECT_EQ(grid.size(), 3u * 3u * 2u);
  // Every configuration is fully populated.
  for (const auto& c : grid) EXPECT_EQ(c.size(), 3u);
}

TEST(SpaceGridTest, CapTruncatesButKeepsCompleteConfigs) {
  const auto space = mixed_space();
  const auto grid = space.grid(4, 50);
  EXPECT_LE(grid.size(), 50u);
  for (const auto& c : grid) EXPECT_EQ(c.size(), space.size());
}

TEST(SpaceGridTest, SinglePointGridUsesMidpoints) {
  HyperparameterSpace s;
  s.add("a", ContinuousDomain{0.0, 10.0});
  const auto grid = s.grid(1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0].get_double("a"), 5.0);
}

TEST(SpaceGridTest, ZeroPointsThrows) {
  EXPECT_THROW(mixed_space().grid(0), std::invalid_argument);
}

TEST(ConfigurationTest, AccessorsAndErrors) {
  Configuration c;
  c.set("lr", 0.01);
  c.set("batch", std::int64_t{64});
  c.set("opt", std::string("adam"));
  EXPECT_TRUE(c.has("lr"));
  EXPECT_FALSE(c.has("nope"));
  EXPECT_DOUBLE_EQ(c.get_double("lr"), 0.01);
  EXPECT_DOUBLE_EQ(c.get_double("batch"), 64.0);  // int converts
  EXPECT_EQ(c.get_int("batch"), 64);
  EXPECT_EQ(c.get_categorical("opt"), "adam");
  EXPECT_THROW((void)c.get("missing"), std::out_of_range);
  EXPECT_THROW((void)c.get_double("opt"), std::invalid_argument);
  EXPECT_THROW((void)c.get_categorical("lr"), std::invalid_argument);
}

TEST(ConfigurationTest, StableHashIsOrderIndependentAndValueSensitive) {
  Configuration a, b;
  a.set("x", 1.0);
  a.set("y", 2.0);
  b.set("y", 2.0);
  b.set("x", 1.0);
  EXPECT_EQ(a.stable_hash(), b.stable_hash());  // map iteration order is sorted

  Configuration c = a;
  c.set("x", 1.0000001);
  EXPECT_NE(a.stable_hash(), c.stable_hash());
}

TEST(ConfigurationTest, HashDistinguishesTypesAndNames) {
  Configuration a, b, c;
  a.set("x", 1.0);
  b.set("x", std::int64_t{1});
  c.set("y", 1.0);
  EXPECT_NE(a.stable_hash(), b.stable_hash());
  EXPECT_NE(a.stable_hash(), c.stable_hash());
}

TEST(ConfigurationTest, ToStringListsAllParams) {
  Configuration c;
  c.set("lr", 0.5);
  c.set("opt", std::string("sgd"));
  const auto s = c.to_string();
  EXPECT_NE(s.find("lr=0.5"), std::string::npos);
  EXPECT_NE(s.find("opt=sgd"), std::string::npos);
}

TEST(ParamValueTest, ToString) {
  EXPECT_EQ(to_string(ParamValue{std::int64_t{42}}), "42");
  EXPECT_EQ(to_string(ParamValue{std::string("adam")}), "adam");
  EXPECT_EQ(to_string(ParamValue{0.25}), "0.25");
}

}  // namespace
}  // namespace hyperdrive::workload
