// The gray-failure (fail-slow) battery. Covers, in order:
//   * FaultInjector gray queries: slowdown windows (incl. flapping duty
//     cycles), hang-stall geometry, and RNG-neutrality of all gray queries;
//   * HealthMonitor: the EWMA speed score, strike counting, the
//     Suspect/Quarantined/Probation state machine, watchdog escalation;
//   * HyperDriveCluster integration: straggler migration off quarantined
//     nodes, hung-epoch detection via the progress deadline, silent-node
//     quarantine via missed heartbeats, probation reinstatement;
//   * golden-trace determinism over a plan with slowdown + hang + quarantine
//     events (byte-identical event logs);
//   * the exploration-invariance property: slowdown-only faults change wall
//     clock, never the set of configurations POP explores or the final best
//     accuracy (>= 30 seeds);
//   * the straggler acceptance scenario: 25% of nodes at 4x slowdown,
//     mitigation recovers most of the time-to-target gap and eliminates
//     wrong kills.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/health_monitor.hpp"
#include "core/experiment_runner.hpp"
#include "core/policies/default_policy.hpp"
#include "core/policies/pop_policy.hpp"
#include "obs/sink.hpp"

namespace hyperdrive::cluster {
namespace {

using core::JobStatus;
using util::SimTime;

workload::Trace linear_trace(std::size_t jobs, std::size_t epochs, double target = 0.99) {
  workload::Trace trace;
  trace.workload_name = "linear";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(0.5 * static_cast<double>(e) / static_cast<double>(epochs));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

/// Saturating-exponential curves perf(e) = amp * (1 - exp(-e / rate)), one
/// (amp, rate) pair per job — lets a test place target-reaching and hopeless
/// configurations exactly where it wants them.
workload::Trace shaped_trace(const std::vector<std::pair<double, double>>& shapes,
                             std::size_t epochs, double target, std::size_t boundary) {
  workload::Trace trace;
  trace.workload_name = "shaped";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;  // neutralized: only prediction-driven kills
  trace.evaluation_boundary = boundary;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(shapes[i].first *
                               (1.0 - std::exp(-static_cast<double>(e) / shapes[i].second)));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

ClusterOptions base_options(std::size_t machines) {
  ClusterOptions options;
  options.machines = machines;
  options.overheads = cifar_overhead_model();
  options.epoch_jitter_sigma = 0.05;
  options.seed = 7;
  return options;
}

NodeSlowdownEvent slowdown(MachineId machine, double factor,
                           SimTime from = SimTime::zero(),
                           SimTime until = SimTime::infinity()) {
  NodeSlowdownEvent event;
  event.machine = machine;
  event.factor = factor;
  event.from = from;
  event.until = until;
  return event;
}

bool log_contains(const HyperDriveCluster& cluster, const std::string& needle) {
  return std::any_of(cluster.event_log().begin(), cluster.event_log().end(),
                     [&](const std::string& line) {
                       return line.find(needle) != std::string::npos;
                     });
}

// ------------------------------------------------- FaultInjector gray queries

TEST(GrayInjectorTest, SlowdownWindowsMultiplyPerMachineAndTime) {
  FaultPlan plan;
  plan.slowdowns.push_back(slowdown(0, 2.0, SimTime::seconds(100), SimTime::seconds(200)));
  plan.slowdowns.push_back(slowdown(0, 3.0, SimTime::seconds(150), SimTime::seconds(250)));
  plan.slowdowns.push_back(slowdown(1, 5.0));
  const FaultInjector injector(plan, 1);

  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(50)), 1.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(120)), 2.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(160)), 6.0);  // overlap
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(200)), 3.0);  // [from,until)
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(250)), 1.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(1, SimTime::seconds(1e6)), 5.0);  // unbounded
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(2, SimTime::seconds(160)), 1.0);
}

TEST(GrayInjectorTest, FlappingSlowdownFollowsItsDutyCycle) {
  FaultPlan plan;
  auto flap = slowdown(0, 4.0);
  flap.period = SimTime::seconds(100);
  flap.duty = 0.25;  // slow for the first 25 s of every 100 s
  plan.slowdowns.push_back(flap);
  const FaultInjector injector(plan, 1);

  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(10)), 4.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(24.9)), 4.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(25)), 1.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(99)), 1.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, SimTime::seconds(110)), 4.0);  // next period
}

TEST(GrayInjectorTest, HangStallGeometry) {
  FaultPlan plan;
  HungJobEvent hang;
  hang.machine = 0;
  hang.at = SimTime::seconds(100);
  hang.clear_after = SimTime::seconds(50);  // hung during [100, 150)
  plan.hangs.push_back(hang);
  const FaultInjector injector(plan, 1);

  // Epoch entirely before / after the window: no stall.
  EXPECT_EQ(injector.hang_stall(0, SimTime::zero(), SimTime::seconds(50)), SimTime::zero());
  EXPECT_EQ(injector.hang_stall(0, SimTime::seconds(160), SimTime::seconds(10)),
            SimTime::zero());
  // Epoch [80, 120) overlaps: 20 s of progress, frozen until 150, then the
  // remaining 20 s -> completes at 170 instead of 120.
  EXPECT_EQ(injector.hang_stall(0, SimTime::seconds(80), SimTime::seconds(40)),
            SimTime::seconds(50));
  // Epoch starting inside the window waits for it to clear.
  EXPECT_EQ(injector.hang_stall(0, SimTime::seconds(120), SimTime::seconds(30)),
            SimTime::seconds(30));
  // Other machines are untouched.
  EXPECT_EQ(injector.hang_stall(1, SimTime::seconds(80), SimTime::seconds(40)),
            SimTime::zero());

  // An unbounded window swallows the epoch forever.
  HungJobEvent dead;
  dead.machine = 0;
  dead.at = SimTime::seconds(500);
  FaultPlan fatal;
  fatal.hangs.push_back(dead);
  const FaultInjector forever(fatal, 1);
  EXPECT_EQ(forever.hang_stall(0, SimTime::seconds(490), SimTime::seconds(20)),
            SimTime::infinity());
  EXPECT_TRUE(forever.is_hung(0, SimTime::seconds(501)));
  EXPECT_FALSE(forever.is_hung(0, SimTime::seconds(499)));
}

TEST(GrayInjectorTest, GrayQueriesConsumeNoRandomness) {
  // Adding slowdowns/hangs to a plan must not perturb the seeded message
  // fault stream: gray queries are pure functions of (plan, machine, time).
  FaultPlan plain;
  plain.seed = 5;
  MessageFaultProfile faults;
  faults.drop_prob = 0.5;
  plain.set_uniform_message_faults(faults);
  FaultPlan gray = plain;
  gray.slowdowns.push_back(slowdown(0, 4.0));
  HungJobEvent hang;
  hang.machine = 1;
  hang.at = SimTime::seconds(100);
  gray.hangs.push_back(hang);

  FaultInjector a(plain, 1), b(gray, 1);
  for (int i = 0; i < 100; ++i) {
    (void)b.slowdown_factor(0, SimTime::seconds(i));
    (void)b.is_hung(1, SimTime::seconds(i));
    (void)b.hang_stall(1, SimTime::seconds(i), SimTime::seconds(30));
    EXPECT_EQ(a.should_drop(MessageType::ReportStat), b.should_drop(MessageType::ReportStat))
        << "draw " << i;
  }
}

// ------------------------------------------------------------- HealthMonitor

HealthOptions fast_health() {
  HealthOptions options;
  options.enabled = true;
  options.heartbeat_interval = SimTime::seconds(10);
  options.watchdog_intervals = 3;  // suspect after 30 s, quarantine after 60 s
  return options;
}

TEST(HealthMonitorTest, ConsecutiveSlowEpochsQuarantine) {
  HealthMonitor monitor(2, fast_health());
  const auto expected = SimTime::seconds(60), observed = SimTime::seconds(240);
  SimTime now = SimTime::zero();
  // EWMA from 1.0 with alpha 0.4 and obs 0.25: 0.7, 0.52, 0.41, 0.35 — the
  // last three are below slow_speed 0.6, so the third strike lands on the
  // fourth epoch.
  for (int e = 1; e <= 3; ++e) {
    now = now + observed;
    EXPECT_EQ(monitor.note_epoch(0, expected, observed, now),
              HealthMonitor::Transition::None)
        << "epoch " << e;
  }
  now = now + observed;
  EXPECT_EQ(monitor.note_epoch(0, expected, observed, now),
            HealthMonitor::Transition::Quarantine);
  EXPECT_EQ(monitor.health(0), NodeHealth::Quarantined);
  EXPECT_LT(monitor.speed_score(0), 0.6);
  EXPECT_TRUE(monitor.degraded(0));
  EXPECT_EQ(monitor.stats().quarantines, 1u);
  EXPECT_GE(monitor.stats().slow_strikes, 3u);
  // The other machine is untouched and optimistic.
  EXPECT_EQ(monitor.health(1), NodeHealth::Healthy);
  EXPECT_DOUBLE_EQ(monitor.speed_score(1), 1.0);
}

TEST(HealthMonitorTest, NominalEpochsResetTheStrikeCounter) {
  HealthMonitor monitor(1, fast_health());
  const auto expected = SimTime::seconds(60);
  SimTime now = SimTime::zero();
  const auto slow = SimTime::seconds(240), nominal = SimTime::seconds(60);
  // Two strikes...
  (void)monitor.note_epoch(0, expected, slow, now = now + slow);
  (void)monitor.note_epoch(0, expected, slow, now = now + slow);
  (void)monitor.note_epoch(0, expected, slow, now = now + slow);
  // ...then recovery pulls the score back over the threshold, resetting them.
  (void)monitor.note_epoch(0, expected, nominal, now = now + nominal);
  EXPECT_GE(monitor.speed_score(0), 0.6);
  // Two more slow epochs are strikes 1 and 2 again — no quarantine.
  EXPECT_EQ(monitor.note_epoch(0, expected, slow, now = now + slow),
            HealthMonitor::Transition::None);
  EXPECT_EQ(monitor.note_epoch(0, expected, slow, now = now + slow),
            HealthMonitor::Transition::None);
  EXPECT_EQ(monitor.health(0), NodeHealth::Healthy);
}

TEST(HealthMonitorTest, ProbationJudgesRawSpeedAndReinstates) {
  auto options = fast_health();
  options.reinstate_epochs = 2;
  HealthMonitor monitor(1, options);
  monitor.force_quarantine(0);
  EXPECT_EQ(monitor.health(0), NodeHealth::Quarantined);
  monitor.begin_probation(0, SimTime::seconds(100));
  EXPECT_EQ(monitor.health(0), NodeHealth::Probation);
  EXPECT_EQ(monitor.stats().probations, 1u);

  // The EWMA score still carries the pre-quarantine slowness, so probation
  // must judge raw per-epoch speed: two nominal epochs reinstate.
  const auto expected = SimTime::seconds(60), nominal = SimTime::seconds(62);
  EXPECT_EQ(monitor.note_epoch(0, expected, nominal, SimTime::seconds(200)),
            HealthMonitor::Transition::None);
  EXPECT_EQ(monitor.note_epoch(0, expected, nominal, SimTime::seconds(300)),
            HealthMonitor::Transition::Reinstate);
  EXPECT_EQ(monitor.health(0), NodeHealth::Healthy);
  EXPECT_DOUBLE_EQ(monitor.speed_score(0), 1.0);  // reset on reinstatement
  EXPECT_EQ(monitor.stats().reinstatements, 1u);
}

TEST(HealthMonitorTest, SlowProbationEpochRequarantines) {
  HealthMonitor monitor(1, fast_health());
  monitor.force_quarantine(0);
  monitor.begin_probation(0, SimTime::seconds(100));
  EXPECT_EQ(monitor.note_epoch(0, SimTime::seconds(60), SimTime::seconds(240),
                               SimTime::seconds(340)),
            HealthMonitor::Transition::Quarantine);
  EXPECT_EQ(monitor.health(0), NodeHealth::Quarantined);
  EXPECT_EQ(monitor.stats().quarantines, 2u);  // force + probation failure
}

TEST(HealthMonitorTest, WatchdogEscalatesSilenceToQuarantine) {
  HealthMonitor monitor(2, fast_health());
  Heartbeat beat;
  beat.machine = 0;
  beat.sent_at = SimTime::seconds(5);
  monitor.note_heartbeat(beat, SimTime::seconds(5));
  Heartbeat other = beat;
  other.machine = 1;
  monitor.note_heartbeat(other, SimTime::seconds(5));

  // Within the suspect window: quiet.
  auto report = monitor.watchdog_scan(SimTime::seconds(20));
  EXPECT_TRUE(report.newly_suspect.empty());
  EXPECT_TRUE(report.to_quarantine.empty());

  // Machine 1 keeps beating; machine 0 goes silent.
  other.sent_at = SimTime::seconds(40);
  monitor.note_heartbeat(other, SimTime::seconds(40));
  report = monitor.watchdog_scan(SimTime::seconds(40));
  ASSERT_EQ(report.newly_suspect, std::vector<MachineId>{0});
  EXPECT_EQ(monitor.health(0), NodeHealth::Suspect);
  EXPECT_EQ(monitor.health(1), NodeHealth::Healthy);
  EXPECT_EQ(monitor.stats().suspects_declared, 1u);

  // A resumed beat clears the suspicion...
  beat.sent_at = SimTime::seconds(45);
  monitor.note_heartbeat(beat, SimTime::seconds(45));
  EXPECT_EQ(monitor.health(0), NodeHealth::Healthy);
  EXPECT_EQ(monitor.stats().suspects_recovered, 1u);

  // ...but silence past twice the suspect window escalates to quarantine.
  other.sent_at = SimTime::seconds(75);  // keep machine 1 above suspicion
  monitor.note_heartbeat(other, SimTime::seconds(75));
  report = monitor.watchdog_scan(SimTime::seconds(80));  // 35 s silent
  ASSERT_EQ(report.newly_suspect, std::vector<MachineId>{0});
  report = monitor.watchdog_scan(SimTime::seconds(110));  // 65 s silent
  ASSERT_EQ(report.to_quarantine, std::vector<MachineId>{0});
  monitor.force_quarantine(0);
  EXPECT_EQ(monitor.health(0), NodeHealth::Quarantined);

  // Quarantined and excluded machines are outside watchdog scrutiny.
  monitor.set_excluded(1, true, SimTime::seconds(110));
  report = monitor.watchdog_scan(SimTime::seconds(500));
  EXPECT_TRUE(report.newly_suspect.empty());
  EXPECT_TRUE(report.to_quarantine.empty());
  // Un-excluding resets the liveness clock: not instantly suspect.
  monitor.set_excluded(1, false, SimTime::seconds(500));
  report = monitor.watchdog_scan(SimTime::seconds(510));
  EXPECT_TRUE(report.newly_suspect.empty());
}

// ------------------------------------------------------ cluster integration

TEST(GrayClusterTest, SlowdownWithoutHealthLayerOnlyStretchesWallClock) {
  const auto trace = linear_trace(2, 6);
  core::DefaultPolicy p1, p2;

  // A gray plan auto-enables the reliability layer; enable it on the clean
  // baseline too so the only difference is the slowdown itself.
  auto clean = base_options(2);
  clean.reliability.enabled = true;
  const auto baseline = run_cluster_experiment(trace, p1, clean);

  auto slowed = base_options(2);
  slowed.fault_plan.slowdowns.push_back(slowdown(0, 3.0));
  HyperDriveCluster cluster(trace, slowed);
  const auto result = cluster.run(p2);

  EXPECT_GT(result.total_time, baseline.total_time);
  EXPECT_EQ(cluster.fault_stats().epochs_slowed, 6u);  // machine 0's job
  // No detection layer => no mitigation, but also no corruption: every job
  // still completes every epoch.
  EXPECT_EQ(result.recovery.jobs_migrated, 0u);
  EXPECT_EQ(result.recovery.nodes_quarantined, 0u);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed);
    EXPECT_EQ(job.epochs_completed, 6u);
  }
}

TEST(GrayClusterTest, PersistentlySlowNodeIsQuarantinedAndItsJobMigrates) {
  const auto trace = linear_trace(4, 12);
  auto options = base_options(2);
  options.fault_plan.slowdowns.push_back(slowdown(0, 4.0));
  options.health = fast_health();
  options.health.probation_after = SimTime::hours(10);  // stay out for this run
  options.record_event_log = true;

  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_GE(result.recovery.jobs_migrated, 1u);
  EXPECT_EQ(result.recovery.nodes_quarantined, 1u);
  EXPECT_GE(cluster.health_monitor().stats().quarantines, 1u);
  EXPECT_TRUE(log_contains(cluster, "quarantine machine=0"));
  EXPECT_TRUE(log_contains(cluster, "reason=slow"));
  // The migrated job lost no training: clean suspend, resume elsewhere.
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 12u) << "job " << job.job_id;
  }
  EXPECT_EQ(result.recovery.epochs_lost, 0u);
}

TEST(GrayClusterTest, HungEpochTripsProgressDeadlineAndJobMigrates) {
  const auto trace = linear_trace(2, 8);
  auto options = base_options(2);
  HungJobEvent hang;  // machine 0 wedges forever at t = 150 s (mid epoch 3)
  hang.machine = 0;
  hang.at = SimTime::seconds(150);
  options.fault_plan.hangs.push_back(hang);
  options.health = fast_health();
  // Slow heartbeat cadence so the progress deadline (6 x expected epoch)
  // fires before the missed-heartbeat watchdog would.
  options.health.heartbeat_interval = SimTime::seconds(120);
  options.record_event_log = true;

  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_EQ(result.recovery.hung_jobs_detected, 1u);
  EXPECT_EQ(result.recovery.nodes_quarantined, 1u);
  EXPECT_GE(result.recovery.jobs_migrated, 1u);
  EXPECT_GE(result.recovery.jobs_requeued, 1u);
  EXPECT_GT(result.recovery.epochs_lost, 0u);  // rollback: no snapshot existed
  EXPECT_EQ(cluster.fault_stats().epochs_hung, 1u);
  EXPECT_TRUE(log_contains(cluster, "hang-detected"));
  EXPECT_TRUE(log_contains(cluster, "reason=hung"));
  // The survivor machine finishes everything, histories intact.
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 8u) << "job " << job.job_id;
  }
  for (const auto& job : trace.jobs) {
    EXPECT_EQ(cluster.app_stat_db().perf_history(job.job_id).size(), 8u);
  }
}

TEST(GrayClusterTest, SilentIdleNodeIsQuarantinedByTheWatchdog) {
  // One job on machine 0; machine 1 sits idle and goes silent (hung) at
  // t = 50 s. Only the heartbeat watchdog can notice — there is no epoch
  // traffic from an idle machine.
  const auto trace = linear_trace(1, 20);
  auto options = base_options(2);
  HungJobEvent hang;
  hang.machine = 1;
  hang.at = SimTime::seconds(50);
  options.fault_plan.hangs.push_back(hang);
  options.health = fast_health();
  options.health.heartbeat_interval = SimTime::seconds(5);
  options.health.watchdog_intervals = 2;  // suspect at 10 s, quarantine at 20 s
  options.health.probation_after = SimTime::hours(10);
  options.record_event_log = true;

  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_EQ(result.recovery.nodes_quarantined, 1u);
  EXPECT_EQ(result.recovery.jobs_migrated, 0u);  // nothing was running there
  EXPECT_EQ(result.recovery.hung_jobs_detected, 0u);
  EXPECT_TRUE(log_contains(cluster, "suspect machine=1"));
  EXPECT_TRUE(log_contains(cluster, "quarantine machine=1 reason=silent"));
  EXPECT_EQ(cluster.health_monitor().health(1), NodeHealth::Quarantined);
  ASSERT_EQ(result.job_stats.size(), 1u);
  EXPECT_EQ(result.job_stats[0].final_status, JobStatus::Completed);
  EXPECT_EQ(result.job_stats[0].epochs_completed, 20u);
}

TEST(GrayClusterTest, RecoveredNodeServesProbationAndIsReinstated) {
  // Machine 0 is 4x slow only during [0, 2000 s): it gets quarantined, fails
  // probation while the window is still open, and is reinstated once its
  // probation epochs run at nominal speed again.
  const auto trace = linear_trace(6, 30);
  auto options = base_options(2);
  options.fault_plan.slowdowns.push_back(
      slowdown(0, 4.0, SimTime::zero(), SimTime::seconds(2000)));
  options.health = fast_health();
  options.health.probation_after = SimTime::seconds(120);
  options.health.reinstate_epochs = 2;
  options.record_event_log = true;

  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_GE(result.recovery.nodes_quarantined, 2u);  // initial + failed probation
  EXPECT_EQ(result.recovery.nodes_reinstated, 1u);
  EXPECT_EQ(cluster.health_monitor().stats().reinstatements, 1u);
  EXPECT_TRUE(log_contains(cluster, "probation machine=0"));
  EXPECT_TRUE(log_contains(cluster, "reinstate machine=0"));
  EXPECT_EQ(cluster.health_monitor().health(0), NodeHealth::Healthy);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 30u) << "job " << job.job_id;
  }
}

// ------------------------------------------- golden-trace determinism (gray)

FaultPlan gray_stress_plan() {
  FaultPlan plan;
  plan.seed = 77;
  MessageFaultProfile faults;
  faults.drop_prob = 0.05;
  faults.duplicate_prob = 0.03;
  plan.set_uniform_message_faults(faults);
  plan.slowdowns.push_back(slowdown(0, 4.0));  // persistent straggler
  auto flap = slowdown(1, 2.0);                // flapping straggler
  flap.period = SimTime::seconds(240);
  flap.duty = 0.5;
  plan.slowdowns.push_back(flap);
  HungJobEvent hang;  // machine 2 wedges forever mid-run
  hang.machine = 2;
  hang.at = SimTime::seconds(400);
  plan.hangs.push_back(hang);
  return plan;
}

ClusterOptions gray_golden_options() {
  auto options = base_options(3);
  options.fault_plan = gray_stress_plan();
  options.health = fast_health();
  options.health.probation_after = SimTime::seconds(300);
  options.record_event_log = true;
  options.seed = 99;
  return options;
}

TEST(GoldenGrayTraceTest, SlowdownHangAndQuarantineEventsAreByteIdentical) {
  const auto trace = linear_trace(6, 12);
  const auto options = gray_golden_options();

  core::DefaultPolicy p1, p2;
  HyperDriveCluster a(trace, options), b(trace, options);
  const auto ra = a.run(p1);
  const auto rb = b.run(p2);

  // The scenario really exercises the gray machinery...
  EXPECT_GE(ra.recovery.nodes_quarantined, 2u);  // slow machine 0 + hung machine 2
  EXPECT_GE(ra.recovery.jobs_migrated, 1u);
  EXPECT_TRUE(log_contains(a, "quarantine machine="));
  EXPECT_TRUE(log_contains(a, "migrate job="));
  // ...and replays byte-for-byte.
  ASSERT_FALSE(a.event_log().empty());
  EXPECT_EQ(a.event_log(), b.event_log());
  EXPECT_EQ(ra.total_time, rb.total_time);
  EXPECT_EQ(ra.total_machine_time, rb.total_machine_time);
  EXPECT_EQ(ra.best_perf, rb.best_perf);
  EXPECT_EQ(ra.recovery, rb.recovery);
  EXPECT_EQ(a.fault_stats().epochs_slowed, b.fault_stats().epochs_slowed);
  EXPECT_EQ(a.fault_stats().epochs_hung, b.fault_stats().epochs_hung);
  EXPECT_EQ(a.health_monitor().stats().heartbeats_received,
            b.health_monitor().stats().heartbeats_received);
  EXPECT_EQ(a.health_monitor().stats().quarantines,
            b.health_monitor().stats().quarantines);
}

TEST(GoldenGrayTraceTest, DifferentSeedDiverges) {
  const auto trace = linear_trace(6, 12);
  auto options = gray_golden_options();

  core::DefaultPolicy p1, p2;
  HyperDriveCluster a(trace, options);
  (void)a.run(p1);
  options.seed = 100;
  HyperDriveCluster b(trace, options);
  (void)b.run(p2);
  EXPECT_NE(a.event_log(), b.event_log());
}

// ------------------------------------- exploration invariance under slowdown

struct ExplorationOutcome {
  std::set<core::JobId> completed;
  std::set<core::JobId> terminated;
  double best_perf = 0.0;
  util::SimTime total_time = util::SimTime::zero();
};

ExplorationOutcome classify_outcome(const core::ExperimentResult& result) {
  ExplorationOutcome outcome;
  for (const auto& job : result.job_stats) {
    if (job.final_status == JobStatus::Completed) outcome.completed.insert(job.job_id);
    if (job.final_status == JobStatus::Terminated) outcome.terminated.insert(job.job_id);
  }
  outcome.best_perf = result.best_perf;
  outcome.total_time = result.total_time;
  return outcome;
}

TEST(GrayExplorationInvarianceTest, SlowdownOnlyFaultsNeverChangeWhatPopExplores) {
  // The core "gray failures must not corrupt exploration" invariant: with
  // fail-slow faults only (no crashes, no message loss) and an unconstrained
  // budget, the set of configurations POP completes/terminates and the final
  // best accuracy must equal the fault-free run's — only wall clock may
  // differ. Run-all mode plus a huge Tmax make POP's per-job decisions pure
  // functions of the (timing-independent) learning curves, which is exactly
  // what the mitigation layer must preserve.
  const auto trace = shaped_trace(
      {
          {0.92, 4.0},  // reaches the 0.85 target around epoch 11
          {0.90, 4.0},
          {0.91, 4.0},
          {0.50, 5.0},  // hopeless plateaus
          {0.48, 5.0},
          {0.46, 5.0},
          {0.44, 5.0},
          {0.42, 5.0},
      },
      /*epochs=*/18, /*target=*/0.85, /*boundary=*/3);

  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    ClusterOptions options;
    options.machines = 2;
    options.stop_on_target = false;  // run-all: explore the whole set
    options.seed = seed;
    options.epoch_jitter_sigma = 0.05;
    options.health = fast_health();
    options.reliability.enabled = true;  // match the gray arm's auto-enable

    core::PopConfig config;
    config.tmax = SimTime::hours(1e6);  // unconstrained: no budget truncation
    config.predictor = core::make_default_predictor(seed);
    core::PopPolicy clean_pop(config);
    const auto clean = run_cluster_experiment(trace, clean_pop, options);

    auto gray = options;
    gray.fault_plan.slowdowns.push_back(slowdown(0, 4.0));
    auto flap = slowdown(1, 2.0);
    flap.period = SimTime::seconds(300);
    flap.duty = 0.5;
    gray.fault_plan.slowdowns.push_back(flap);

    core::PopConfig config2 = config;
    config2.predictor = core::make_default_predictor(seed);
    core::PopPolicy gray_pop(config2);
    HyperDriveCluster cluster(trace, gray);
    const auto faulty = cluster.run(gray_pop);

    const auto a = classify_outcome(clean);
    const auto b = classify_outcome(faulty);
    EXPECT_EQ(a.completed, b.completed) << "seed " << seed;
    EXPECT_EQ(a.terminated, b.terminated) << "seed " << seed;
    EXPECT_DOUBLE_EQ(a.best_perf, b.best_perf) << "seed " << seed;
    // Wall clock is the one thing that MAY differ — and must, here: half the
    // cluster is 4x slow.
    EXPECT_GT(b.total_time, a.total_time) << "seed " << seed;
    EXPECT_GT(cluster.fault_stats().epochs_slowed, 0u) << "seed " << seed;
  }
}

// ----------------------------------------------- straggler acceptance (§7)

TEST(StragglerAcceptanceTest, MitigationRecoversTimeToTargetAndEliminatesWrongKills) {
  // 25% of an 8-machine cluster (machines 0 and 1) runs at 4x for the whole
  // experiment. Both target-reaching configurations land on the slow
  // machines. Without mitigation, POP wrong-kills the slow-ramp winner
  // (its inflated epoch time pushes the target outside the budget) and the
  // fast-ramp winner crawls to the target at 4x. With mitigation, both are
  // migrated to healthy machines early and the wrong kills disappear.
  std::vector<std::pair<double, double>> shapes;
  shapes.push_back({0.90, 7.0});   // job 1 (machine 0): reaches target ~epoch 21
  shapes.push_back({0.88, 10.0});  // job 2 (machine 1): reaches target ~epoch 34
  for (int i = 0; i < 12; ++i) {
    shapes.push_back({0.55 + 0.01 * i, 6.0});  // hopeless
  }
  const auto trace = shaped_trace(shapes, /*epochs=*/40, /*target=*/0.85,
                                  /*boundary=*/4);
  // Tight enough that 4x-inflated epoch times push job 2's predicted reach
  // past the budget (the wrong kill), yet roomy enough that job 1 still
  // crawls to the target in the unmitigated arm.
  const auto tmax = SimTime::seconds(5700);

  const auto make_policy = [&] {
    core::PopConfig config;
    config.tmax = tmax;
    config.predictor = core::make_default_predictor(11);
    // Rotation would let a slow-hosted job escape by luck; pin jobs so the
    // only way off a straggler is the mitigation under test.
    config.rotate_opportunistic = false;
    return core::PopPolicy(config);
  };
  ClusterOptions options;
  options.machines = 8;
  options.max_experiment_time = tmax;
  options.seed = 11;
  options.epoch_jitter_sigma = 0.05;
  options.reliability.enabled = true;  // level the field with the fault arms

  // Fault-free baseline.
  auto clean_policy = make_policy();
  const auto clean = run_cluster_experiment(trace, clean_policy, options);
  ASSERT_TRUE(clean.reached_target);

  // 25% slow nodes, mitigation OFF. Both arms record their typed event
  // stream so the wrong-kill oracle can be re-checked as a stream query.
  auto off = options;
  off.fault_plan.slowdowns.push_back(slowdown(0, 4.0));
  off.fault_plan.slowdowns.push_back(slowdown(1, 4.0));
  auto off_policy = make_policy();
  obs::RecordingSink off_events;
  off.obs.sink = &off_events;
  const auto unmitigated = run_cluster_experiment(trace, off_policy, off);

  // Same faults, mitigation ON.
  auto on = off;
  on.health = fast_health();
  auto on_policy = make_policy();
  obs::RecordingSink on_events;
  on.obs.sink = &on_events;
  const auto mitigated = run_cluster_experiment(trace, on_policy, on);

  // The gray failure corrupts the unmitigated run: the ground-truth oracle
  // records at least one target-reaching configuration killed on a slow node.
  EXPECT_GE(unmitigated.recovery.wrong_kills, 1u);
  // The same oracle expressed as an event-stream query (DESIGN.md §10):
  // typed WrongKill events mirror the ground-truth counter in both arms.
  EXPECT_EQ(off_events.count(obs::EventKind::WrongKill),
            unmitigated.recovery.wrong_kills);
  EXPECT_EQ(on_events.count(obs::EventKind::WrongKill),
            mitigated.recovery.wrong_kills);
  ASSERT_TRUE(unmitigated.reached_target)
      << "scenario must leave the unmitigated run a (slow) path to the target";

  // Mitigation detects the stragglers and migrates off them...
  EXPECT_GE(mitigated.recovery.nodes_quarantined, 2u);
  EXPECT_GE(mitigated.recovery.jobs_migrated, 2u);
  // ...kills no viable configuration...
  EXPECT_EQ(mitigated.recovery.wrong_kills, 0u);
  ASSERT_TRUE(mitigated.reached_target);

  // ...and claws back at least half of the time-to-target gap.
  const double t_clean = clean.time_to_target.to_seconds();
  const double t_off = unmitigated.time_to_target.to_seconds();
  const double t_on = mitigated.time_to_target.to_seconds();
  RecordProperty("ttt_clean_s", static_cast<int>(t_clean));
  RecordProperty("ttt_unmitigated_s", static_cast<int>(t_off));
  RecordProperty("ttt_mitigated_s", static_cast<int>(t_on));
  EXPECT_GT(t_off, t_clean) << "stragglers must actually hurt the OFF arm";
  EXPECT_LE(t_on - t_clean, 0.5 * (t_off - t_clean))
      << "mitigation recovered less than half the gap: clean=" << t_clean
      << "s off=" << t_off << "s on=" << t_on << "s";
}

}  // namespace
}  // namespace hyperdrive::cluster
