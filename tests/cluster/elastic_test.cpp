// Elastic cost-aware capacity tests (DESIGN.md §15):
//   * CapacityView arithmetic and NodeCatalog block layout / class lookup;
//   * node-catalog text codec round-trip and pinned parse errors;
//   * Autoscaler billing integral, reconcile ordering (release expensive
//     first, acquire cheapest-per-effective-speed first) and the budget cap;
//   * spot preemption drains a busy machine through clean snapshot migration
//     (the wrong-kill oracle stays at zero) and yanks crash-style when the
//     warning window is too short to drain.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/autoscaler.hpp"
#include "cluster/cluster.hpp"
#include "cluster/node_catalog.hpp"
#include "core/policies/default_policy.hpp"
#include "sim/simulation.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::cluster {
namespace {

using util::SimTime;

NodeCatalog mixed_catalog() {
  NodeCatalog catalog;
  catalog.add({"standard", 4, 1.0, 1.0, false});
  catalog.add({"gpu", 2, 4.0, 2.0, false});
  catalog.add({"gpu-spot", 2, 1.5, 2.0, true});
  return catalog;
}

TEST(ElasticCapacityViewTest, SingleOfSetTotalAndEquality) {
  CapacityView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.total(), 0u);
  EXPECT_EQ(view.of(3), 0u);  // out of range reads as zero

  view.set(2, 5);  // grows the vector: {0, 0, 5}
  EXPECT_EQ(view.classes(), 3u);
  EXPECT_EQ(view.of(0), 0u);
  EXPECT_EQ(view.of(2), 5u);
  view.set(0, 1);
  EXPECT_EQ(view.total(), 6u);

  const CapacityView solo = CapacityView::single(4);
  EXPECT_EQ(solo.classes(), 1u);
  EXPECT_EQ(solo.of(0), 4u);
  EXPECT_EQ(solo.total(), 4u);
  EXPECT_EQ(solo, CapacityView({4}));
  // Width matters for equality: {4} != {4, 0}.
  EXPECT_NE(solo, CapacityView({4, 0}));
}

TEST(ElasticCatalogTest, UniformCatalogIsOneExactNoOpClass) {
  const NodeCatalog catalog = NodeCatalog::uniform(6);
  ASSERT_EQ(catalog.classes(), 1u);
  EXPECT_EQ(catalog.at(0).name, "standard");
  EXPECT_EQ(catalog.at(0).count, 6u);
  EXPECT_EQ(catalog.at(0).price_per_hour, 1.0);
  EXPECT_EQ(catalog.at(0).speed_factor, 1.0);
  EXPECT_FALSE(catalog.at(0).spot);
  EXPECT_FALSE(catalog.heterogeneous());
  EXPECT_EQ(catalog.total_nodes(), 6u);
  EXPECT_EQ(catalog.full(), CapacityView::single(6));
}

TEST(ElasticCatalogTest, BlocksAreContiguousAndLookupsResolve) {
  const NodeCatalog catalog = mixed_catalog();
  EXPECT_EQ(catalog.total_nodes(), 8u);
  EXPECT_TRUE(catalog.heterogeneous());
  EXPECT_EQ(catalog.block_begin(0), 0u);
  EXPECT_EQ(catalog.block_end(0), 4u);
  EXPECT_EQ(catalog.block_begin(2), 6u);
  EXPECT_EQ(catalog.block_end(2), 8u);
  EXPECT_EQ(catalog.class_of(0), 0u);
  EXPECT_EQ(catalog.class_of(3), 0u);
  EXPECT_EQ(catalog.class_of(4), 1u);
  EXPECT_EQ(catalog.class_of(7), 2u);
  EXPECT_EQ(catalog.speed(0), 1.0);
  EXPECT_EQ(catalog.speed(5), 2.0);
  ASSERT_TRUE(catalog.find("gpu-spot").has_value());
  EXPECT_EQ(*catalog.find("gpu-spot"), 2u);
  EXPECT_FALSE(catalog.find("tpu").has_value());
  // Empty catalog: speed defaults to 1.0 so call sites need no guard.
  EXPECT_EQ(NodeCatalog{}.speed(0), 1.0);
}

TEST(ElasticCatalogIoTest, SaveLoadIsAFixedPoint) {
  const NodeCatalog catalog = mixed_catalog();
  std::ostringstream first;
  save_node_catalog(catalog, first);
  std::istringstream in(first.str());
  const NodeCatalog reloaded = load_node_catalog(in);
  EXPECT_EQ(reloaded, catalog);
  std::ostringstream second;
  save_node_catalog(reloaded, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ElasticCatalogIoTest, ErrorsCarryLineNumbers) {
  const auto load = [](const std::string& text) {
    std::istringstream in(text);
    return load_node_catalog(in);
  };
  EXPECT_NO_THROW(load("# comment only\n\nnode-class a 2 1.0 1.0\n"));
  try {
    load("node-class a 2 1.0 1.0\nnode-cls b 1 1.0 1.0\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("node catalog line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(load("node-class a 2 1.0\n"), std::invalid_argument);   // missing speed
  EXPECT_THROW(load("node-class a 2 1.0 1.0 cheap\n"), std::invalid_argument);
  EXPECT_THROW(load("node-class a 2 -1.0 1.0\n"), std::invalid_argument);  // price < 0
  EXPECT_THROW(load("node-class a 2 1.0 1.0\nnode-class a 1 1.0 1.0\n"),
               std::invalid_argument);  // duplicate class
}

TEST(AutoscalerTest, BillsAcquiredCapacityByTheHour) {
  Autoscaler::Options options;
  options.catalog = mixed_catalog();
  // Hold 2 standard + 1 gpu: $2/hr + $4/hr = $6/hr.
  CapacityView held;
  held.set(0, 2);
  held.set(1, 1);
  Autoscaler scaler(options, held);
  EXPECT_EQ(scaler.hourly_rate(), 6.0);
  scaler.advance(SimTime::minutes(30));
  EXPECT_DOUBLE_EQ(scaler.spend_usd(), 3.0);
  scaler.advance(SimTime::minutes(30));  // same instant: monotonic, no double-bill
  EXPECT_DOUBLE_EQ(scaler.spend_usd(), 3.0);
  scaler.advance(SimTime::hours(1));
  EXPECT_DOUBLE_EQ(scaler.spend_usd(), 6.0);
}

TEST(AutoscalerTest, ReconcileReleasesExpensiveFirstAcquiresCheapestPerSpeedFirst) {
  Autoscaler::Options options;
  options.catalog = mixed_catalog();
  Autoscaler scaler(options, options.catalog.full());  // 4 std, 2 gpu, 2 spot

  // Demand shrinks to 3 standard only: the expensive gpu nodes go first.
  CapacityView demand;
  demand.set(0, 3);
  demand.set(2, 0);
  const auto released = scaler.reconcile(demand, SimTime::zero());
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0], (ScaleAction{ScaleAction::Kind::Release, 1, 2}));  // $4/hr
  EXPECT_EQ(released[1], (ScaleAction{ScaleAction::Kind::Release, 2, 2}));  // $1.5/hr
  EXPECT_EQ(released[2], (ScaleAction{ScaleAction::Kind::Release, 0, 1}));  // $1/hr
  EXPECT_EQ(scaler.acquired().total(), 3u);

  // Demand grows everywhere: spot gpus ($0.75 per speed unit) come back
  // before standard ($1.0) before on-demand gpu ($2.0).
  const auto acquired = scaler.reconcile(options.catalog.full(), SimTime::zero());
  ASSERT_EQ(acquired.size(), 3u);
  EXPECT_EQ(acquired[0], (ScaleAction{ScaleAction::Kind::Acquire, 2, 2}));
  EXPECT_EQ(acquired[1], (ScaleAction{ScaleAction::Kind::Acquire, 0, 1}));
  EXPECT_EQ(acquired[2], (ScaleAction{ScaleAction::Kind::Acquire, 1, 2}));
  EXPECT_EQ(scaler.acquired(), options.catalog.full());
  // Demand above the configured count clamps to the catalog.
  CapacityView over;
  over.set(0, 100);
  (void)scaler.reconcile(over, SimTime::zero());
  EXPECT_EQ(scaler.acquired().of(0), 4u);
}

TEST(AutoscalerTest, BudgetCapStopsAcquisitionAndShedsFreeCapacity) {
  Autoscaler::Options options;
  options.catalog = mixed_catalog();
  options.budget_usd = 4.0;
  CapacityView held;
  held.set(0, 4);  // $4/hr
  Autoscaler scaler(options, held);
  EXPECT_FALSE(scaler.over_budget());

  // After an hour the bill hits the cap: acquisition requests are refused.
  CapacityView want_more = held;
  want_more.set(1, 2);
  const auto actions = scaler.reconcile(want_more, SimTime::hours(1));
  EXPECT_TRUE(scaler.over_budget());
  EXPECT_TRUE(actions.empty());
  EXPECT_EQ(scaler.acquired().of(1), 0u);

  // Undemanded capacity is shed even while over budget (it stops the bleed).
  CapacityView less;
  less.set(0, 1);
  const auto shed = scaler.reconcile(less, SimTime::hours(1));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], (ScaleAction{ScaleAction::Kind::Release, 0, 3}));
}

TEST(AutoscalerTest, EmptyCatalogIsInert) {
  Autoscaler scaler(Autoscaler::Options{}, CapacityView{});
  EXPECT_TRUE(scaler.reconcile(CapacityView::single(5), SimTime::hours(1)).empty());
  EXPECT_TRUE(scaler.acquired().empty());
  EXPECT_EQ(scaler.spend_usd(), 0.0);
}

// ------------------------------------------------------- spot preemption

workload::Trace linear_trace(std::size_t jobs, std::size_t epochs) {
  workload::Trace trace;
  trace.workload_name = "linear";
  trace.target_performance = 0.99;  // unreachable: every job runs to the end
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(0.5 * static_cast<double>(e) / static_cast<double>(epochs));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

ClusterOptions spot_options(std::size_t machines) {
  ClusterOptions options;
  options.machines = machines;
  options.overheads = cifar_overhead_model();
  options.epoch_jitter_sigma = 0.0;
  options.seed = 11;
  options.record_event_log = true;
  return options;
}

bool log_contains(const HyperDriveCluster& cluster, const std::string& needle) {
  for (const std::string& line : cluster.event_log()) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ElasticSpotTest, BusyMachineDrainsThroughCleanMigrationNeverAKill) {
  sim::Simulation sim;
  const auto trace = linear_trace(4, 6);
  auto options = spot_options(4);
  SpotPreemptionEvent preemption;  // warning at 90 s, reclaim 120 s later
  preemption.machine = 3;
  preemption.at = SimTime::seconds(90);  // mid epoch 2: machine 3 is busy
  options.fault_plan.spot_preemptions.push_back(preemption);
  HyperDriveCluster cluster(trace, options, sim);
  core::DefaultPolicy policy;
  cluster.start(policy);

  sim.run_until(SimTime::hours(10));
  ASSERT_TRUE(cluster.finished());
  const auto result = cluster.collect();
  EXPECT_EQ(cluster.fault_stats().spot_warnings, 1u);
  EXPECT_EQ(cluster.fault_stats().spot_preemptions, 1u);
  EXPECT_TRUE(log_contains(cluster, "spot-warning machine=3"));
  EXPECT_TRUE(log_contains(cluster, "migrate") && log_contains(cluster, "spot"));
  // The drain is the straggler-migration path: a clean snapshot suspend —
  // never a kill, never a lost epoch.
  EXPECT_GE(result.recovery.jobs_migrated, 1u);
  EXPECT_EQ(result.recovery.wrong_kills, 0u);
  EXPECT_EQ(result.recovery.epochs_lost, 0u);
  EXPECT_EQ(result.terminations, 0u);
  // The reclaimed node never comes back; the survivors finish every job.
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, core::JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 6u) << "job " << job.job_id;
  }
}

TEST(ElasticSpotTest, TooShortWarningYanksCrashStyleButJobsStillFinish) {
  sim::Simulation sim;
  const auto trace = linear_trace(4, 6);
  auto options = spot_options(4);
  SpotPreemptionEvent preemption;
  preemption.machine = 2;
  preemption.at = SimTime::seconds(90);
  preemption.warning = SimTime::seconds(1);  // cannot drain a mid-epoch job
  options.fault_plan.spot_preemptions.push_back(preemption);
  HyperDriveCluster cluster(trace, options, sim);
  core::DefaultPolicy policy;
  cluster.start(policy);

  sim.run_until(SimTime::hours(10));
  ASSERT_TRUE(cluster.finished());
  const auto result = cluster.collect();
  EXPECT_TRUE(log_contains(cluster, "spot-preempted machine=2"));
  // The yank is a crash, not a kill: the occupant rolls back and requeues.
  EXPECT_EQ(result.recovery.wrong_kills, 0u);
  EXPECT_EQ(result.terminations, 0u);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, core::JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 6u) << "job " << job.job_id;
  }
}

TEST(ElasticSpotTest, IdleSpotMachineLeavesImmediatelyOnWarning) {
  sim::Simulation sim;
  const auto trace = linear_trace(2, 4);  // 2 jobs on 4 machines: 2 idle
  auto options = spot_options(4);
  SpotPreemptionEvent preemption;
  preemption.machine = 3;  // idle throughout
  preemption.at = SimTime::seconds(90);
  options.fault_plan.spot_preemptions.push_back(preemption);
  HyperDriveCluster cluster(trace, options, sim);
  core::DefaultPolicy policy;
  cluster.start(policy);

  sim.run_until(SimTime::hours(10));
  ASSERT_TRUE(cluster.finished());
  const auto result = cluster.collect();
  EXPECT_EQ(result.recovery.jobs_migrated, 0u);
  EXPECT_EQ(result.recovery.epochs_lost, 0u);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, core::JobStatus::Completed) << "job " << job.job_id;
  }
}

TEST(ElasticSpotTest, SpotPlanRoundTripsThroughFaultPlanText) {
  FaultPlan plan;
  SpotPreemptionEvent preemption;
  preemption.machine = 5;
  preemption.at = SimTime::minutes(30);
  preemption.warning = SimTime::seconds(90);
  plan.spot_preemptions.push_back(preemption);
  EXPECT_TRUE(plan.any());

  std::ostringstream out;
  save_fault_plan(plan, out);
  EXPECT_NE(out.str().find("spot-preemption 5 1800 90"), std::string::npos) << out.str();
  std::istringstream in(out.str());
  const FaultPlan reloaded = load_fault_plan(in);
  ASSERT_EQ(reloaded.spot_preemptions.size(), 1u);
  EXPECT_EQ(reloaded.spot_preemptions[0].machine, 5u);
  EXPECT_EQ(reloaded.spot_preemptions[0].at, SimTime::minutes(30));
  EXPECT_EQ(reloaded.spot_preemptions[0].warning, SimTime::seconds(90));
}

}  // namespace
}  // namespace hyperdrive::cluster
