#include "cluster/messaging.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/policies/default_policy.hpp"
#include "workload/cifar_model.hpp"

namespace hyperdrive::cluster {
namespace {

using util::SimTime;

MessageBusOptions fixed_latency(double seconds) {
  MessageBusOptions options;
  options.latency_mu = 0.0;
  options.latency_sigma = 0.0;
  options.latency_min_s = seconds;
  options.latency_max_s = seconds;
  options.bandwidth_bps = 1000.0;  // 1 KB/s so transfer delays are visible
  return options;
}

TEST(MessageBusTest, DeliversToRegisteredHandlerAfterLatency) {
  sim::Simulation simulation;
  MessageBus bus(simulation, fixed_latency(0.5), 1);
  std::vector<Message> received;
  const auto scheduler = bus.register_endpoint("scheduler", [&](const Message& m) {
    received.push_back(m);
  });

  Message m;
  m.type = MessageType::ReportStat;
  m.to = scheduler;
  m.job_id = 7;
  m.payload_bytes = 0.0;
  bus.send(m);
  simulation.run();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].job_id, 7u);
  EXPECT_EQ(received[0].sent_at, SimTime::zero());
  EXPECT_EQ(simulation.now(), SimTime::seconds(0.5));
}

TEST(MessageBusTest, PayloadAddsTransferDelay) {
  sim::Simulation simulation;
  MessageBus bus(simulation, fixed_latency(0.5), 2);
  SimTime delivered_at;
  const auto agent = bus.register_endpoint("agent", [&](const Message&) {
    delivered_at = simulation.now();
  });

  Message m;
  m.type = MessageType::SnapshotDownload;
  m.to = agent;
  m.payload_bytes = 2000.0;  // 2 s at 1 KB/s
  bus.send(m);
  simulation.run();
  EXPECT_NEAR(delivered_at.to_seconds(), 2.5, 1e-9);
}

TEST(MessageBusTest, UnknownDestinationThrows) {
  sim::Simulation simulation;
  MessageBus bus(simulation, fixed_latency(0.1), 3);
  Message m;
  m.to = 999;
  EXPECT_THROW(bus.send(m), std::out_of_range);
}

TEST(MessageBusTest, StatsAccumulatePerType) {
  sim::Simulation simulation;
  MessageBus bus(simulation, fixed_latency(0.01), 4);
  const auto sink = bus.register_endpoint("sink", [](const Message&) {});

  for (int i = 0; i < 3; ++i) {
    Message m;
    m.type = MessageType::ReportStat;
    m.to = sink;
    m.payload_bytes = 100.0;
    bus.send(m);
  }
  Message big;
  big.type = MessageType::SnapshotUpload;
  big.to = sink;
  big.payload_bytes = 1e6;
  bus.send(big);
  simulation.run();

  const auto& stats = bus.stats();
  EXPECT_EQ(stats.messages, 4u);
  EXPECT_DOUBLE_EQ(stats.bytes, 300.0 + 1e6);
  EXPECT_EQ(stats.per_type.at(MessageType::ReportStat), 3u);
  EXPECT_EQ(stats.per_type.at(MessageType::SnapshotUpload), 1u);
}

TEST(MessageBusTest, SequenceNumbersAreMonotonic) {
  sim::Simulation simulation;
  MessageBus bus(simulation, fixed_latency(0.01), 5);
  std::vector<std::uint64_t> seqs;
  const auto sink =
      bus.register_endpoint("sink", [&](const Message& m) { seqs.push_back(m.seq); });
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.to = sink;
    bus.send(m);
  }
  simulation.run();
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_GT(seqs[i], seqs[i - 1]);
}

TEST(MessageBusTest, EndpointNamesResolve) {
  sim::Simulation simulation;
  MessageBus bus(simulation, fixed_latency(0.01), 6);
  const auto a = bus.register_endpoint("node-0", [](const Message&) {});
  EXPECT_EQ(bus.endpoint_name(a), "node-0");
  EXPECT_THROW((void)bus.endpoint_name(12345), std::out_of_range);
}

TEST(MessageBusTest, MessageTypeNames) {
  EXPECT_EQ(to_string(MessageType::StartJob), "StartJob");
  EXPECT_EQ(to_string(MessageType::SnapshotUpload), "SnapshotUpload");
  EXPECT_EQ(to_string(MessageType::Ack), "Ack");
}

MessageBusOptions reliable_fixed_latency(double seconds, std::size_t max_attempts) {
  auto options = fixed_latency(seconds);
  options.bandwidth_bps = 0.0;
  options.reliability.enabled = true;
  options.reliability.ack_timeout_s = 0.2;
  options.reliability.max_attempts = max_attempts;
  return options;
}

TEST(MessageBusTest, RetransmissionExhaustionFailsExactlyOnceWithoutDedupLeak) {
  // The network eats every ReportStat (data and retries) while StartJob
  // traffic sails through. Each doomed message must invoke its failure
  // callback exactly once, and — the leak check — must leave no entry in the
  // receiver's dedup table, which only ever saw the delivered messages.
  sim::Simulation simulation;
  MessageBus bus(simulation, reliable_fixed_latency(0.01, 3), 9);
  FaultPlan plan;
  plan.seed = 4;
  MessageFaultProfile lossy;
  lossy.drop_prob = 1.0;
  plan.message_faults[MessageType::ReportStat] = lossy;
  FaultInjector injector(plan, 9);
  bus.set_fault_injector(&injector);

  int handled = 0;
  const auto sink = bus.register_endpoint("sink", [&](const Message&) { ++handled; });

  constexpr std::uint64_t kDoomed = 8, kClean = 8;
  std::map<std::uint64_t, int> failures;  // job_id -> failure callbacks
  for (std::uint64_t i = 0; i < kDoomed; ++i) {
    Message m;
    m.type = MessageType::ReportStat;
    m.to = sink;
    m.job_id = i;
    bus.send(m, [&failures](const Message& lost) { ++failures[lost.job_id]; });
  }
  for (std::uint64_t i = 0; i < kClean; ++i) {
    Message m;
    m.type = MessageType::StartJob;
    m.to = sink;
    m.job_id = 100 + i;
    bus.send(m, [&failures](const Message& lost) { ++failures[lost.job_id]; });
  }
  simulation.run();

  EXPECT_EQ(handled, static_cast<int>(kClean));
  ASSERT_EQ(failures.size(), static_cast<std::size_t>(kDoomed));
  for (const auto& [job, count] : failures) {
    EXPECT_LT(job, kDoomed) << "a delivered message reported failure";
    EXPECT_EQ(count, 1) << "message " << job << " failed " << count << " times";
  }
  EXPECT_EQ(bus.stats().undeliverable, kDoomed);
  EXPECT_EQ(bus.stats().retransmissions, kDoomed * 2u);  // attempts 2..3 each
  EXPECT_EQ(bus.in_flight(), 0u);  // every transmission settled
  EXPECT_EQ(bus.dedup_entries(sink), static_cast<std::size_t>(kClean));
  EXPECT_THROW((void)bus.dedup_entries(12345), std::out_of_range);
}

TEST(MessageBusTest, LostAcksDeliverOnceAndStillReportSenderSideFailure) {
  // Inverse exhaustion: the data always arrives but every ack dies, so the
  // sender retries until giving up. The handler must fire exactly once (the
  // dedup table absorbs the retries — and keeps its one entry, since the
  // message *was* delivered), while the sender, unable to know, reports the
  // failure exactly once.
  sim::Simulation simulation;
  MessageBus bus(simulation, reliable_fixed_latency(0.01, 4), 10);
  FaultPlan plan;
  plan.seed = 5;
  MessageFaultProfile lossy;
  lossy.drop_prob = 1.0;
  plan.message_faults[MessageType::Ack] = lossy;
  FaultInjector injector(plan, 10);
  bus.set_fault_injector(&injector);

  int handled = 0, failed = 0;
  const auto sink = bus.register_endpoint("sink", [&](const Message&) { ++handled; });
  Message m;
  m.type = MessageType::ReportStat;
  m.to = sink;
  bus.send(m, [&](const Message&) { ++failed; });
  simulation.run();

  EXPECT_EQ(handled, 1);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(bus.stats().duplicates_suppressed, 3u);  // retries 2..4 deduped
  EXPECT_EQ(bus.stats().undeliverable, 1u);
  EXPECT_EQ(bus.dedup_entries(sink), 1u);
  EXPECT_EQ(bus.in_flight(), 0u);
}

TEST(MessageBusTest, VariableLatencyStaysInBounds) {
  sim::Simulation simulation;
  MessageBusOptions options;  // default ~1 ms lognormal
  MessageBus bus(simulation, options, 7);
  std::vector<double> arrival;
  const auto sink = bus.register_endpoint("sink", [&](const Message&) {
    arrival.push_back(simulation.now().to_seconds());
  });
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.to = sink;
    bus.send(m);  // all sent at t = 0
  }
  simulation.run();
  for (const double t : arrival) {
    EXPECT_GE(t, options.latency_min_s);
    EXPECT_LE(t, options.latency_max_s + 1e-12);
  }
}

}  // namespace
}  // namespace hyperdrive::cluster

namespace hyperdrive::cluster {
namespace {

TEST(MessageBusIntegrationTest, ClusterTrafficIsAccounted) {
  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 2, 5);

  class SuspendOnce final : public core::DefaultPolicy {
   public:
    core::JobDecision on_iteration_finish(core::SchedulerOps& ops,
                                          const core::JobEvent& event) override {
      if (event.epoch == 3 && event.job_id == 1 && !done_) {
        done_ = true;
        return core::JobDecision::Suspend;
      }
      return core::DefaultPolicy::on_iteration_finish(ops, event);
    }

   private:
    bool done_ = false;
  };

  SuspendOnce policy;
  ClusterOptions options;
  options.machines = 1;
  options.stop_on_target = false;
  HyperDriveCluster cluster(trace, options);
  (void)cluster.run(policy);

  const auto& stats = cluster.message_stats();
  // Every completed epoch produced one ReportStat RPC (partial epochs from
  // the suspend discard produce none) and the suspend produced one upload.
  EXPECT_EQ(stats.per_type.at(MessageType::ReportStat),
            2u * model.max_epochs());
  EXPECT_EQ(stats.per_type.at(MessageType::SnapshotUpload), 1u);
  EXPECT_GT(stats.bytes, 2.0 * 256.0 * model.max_epochs());
  EXPECT_EQ(stats.messages, 2u * model.max_epochs() + 1u);
}

}  // namespace
}  // namespace hyperdrive::cluster
