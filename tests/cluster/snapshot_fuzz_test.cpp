// Fuzz / round-trip battery for the snapshot codec (§5.1 byte-level
// suspend/resume). Three properties, each over many random seeds:
//   * any randomly generated snapshot state encodes and decodes back to
//     equality (round-trip);
//   * truncating the image anywhere yields a clean nullopt, never UB;
//   * flipping any single bit yields either nullopt (the CRC catches it) or
//     — never — a silently different state. The cluster's crash-recovery
//     path relies on this: a corrupt stored snapshot must be *rejected* so
//     resume can fall back to an older snapshot or an AppStatDb replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/snapshot_codec.hpp"
#include "util/rng.hpp"

namespace hyperdrive::cluster {
namespace {

JobSnapshotState random_state(util::Rng& rng) {
  JobSnapshotState state;
  state.job_id = rng.next();
  state.epoch = static_cast<std::size_t>(rng.uniform_int(0, 500));

  const auto n_params = static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < n_params; ++i) {
    const std::string name = "param_" + std::to_string(i);
    switch (rng.uniform_int(0, 2)) {
      case 0: state.config.set(name, rng.uniform(-10.0, 10.0)); break;
      case 1: state.config.set(name, rng.uniform_int(-1000, 1000)); break;
      default: {
        std::string value;
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 12));
        for (std::size_t c = 0; c < len; ++c) {
          value.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
        }
        state.config.set(name, value);
      }
    }
  }

  const auto n_history = static_cast<std::size_t>(rng.uniform_int(0, 64));
  for (std::size_t i = 0; i < n_history; ++i) state.history.push_back(rng.uniform());
  if (rng.bernoulli(0.3)) {
    const auto n_secondary = static_cast<std::size_t>(rng.uniform_int(1, 16));
    for (std::size_t i = 0; i < n_secondary; ++i) state.secondary.push_back(rng.uniform());
  }
  return state;
}

void expect_equal(const JobSnapshotState& a, const JobSnapshotState& b,
                  std::uint64_t seed) {
  EXPECT_EQ(a.job_id, b.job_id) << "seed " << seed;
  EXPECT_EQ(a.epoch, b.epoch) << "seed " << seed;
  EXPECT_EQ(a.history, b.history) << "seed " << seed;
  EXPECT_EQ(a.secondary, b.secondary) << "seed " << seed;
  EXPECT_EQ(a.config.values(), b.config.values()) << "seed " << seed;
}

TEST(SnapshotFuzzTest, RandomStatesRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    util::Rng rng(seed);
    const JobSnapshotState state = random_state(rng);
    const std::size_t min_bytes =
        rng.bernoulli(0.5) ? static_cast<std::size_t>(rng.uniform_int(0, 4096)) : 0;
    const auto image = SnapshotCodec::encode(state, min_bytes);
    EXPECT_GE(image.size(), min_bytes) << "seed " << seed;
    const auto decoded = SnapshotCodec::decode(image);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    expect_equal(state, *decoded, seed);
  }
}

TEST(SnapshotFuzzTest, TruncatedImagesAreRejectedCleanly) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(seed);
    const auto image = SnapshotCodec::encode(random_state(rng));
    // Every possible truncation point for small images; a random sample of
    // points for large ones (padding makes some images span kilobytes).
    const std::size_t step = image.size() > 512 ? image.size() / 256 : 1;
    for (std::size_t len = 0; len < image.size(); len += step) {
      const std::vector<std::uint8_t> truncated(image.begin(),
                                                image.begin() + static_cast<long>(len));
      EXPECT_FALSE(SnapshotCodec::decode(truncated).has_value())
          << "seed " << seed << " truncated to " << len << "/" << image.size();
    }
  }
}

TEST(SnapshotFuzzTest, BitFlipsNeverYieldSilentlyWrongState) {
  std::size_t rejected = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(seed);
    const JobSnapshotState state = random_state(rng);
    const auto image = SnapshotCodec::encode(state);
    // Flip a random bit in each of many random positions.
    for (int trial = 0; trial < 64; ++trial) {
      auto corrupted = image;
      const auto byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(image.size()) - 1));
      const auto bit = static_cast<int>(rng.uniform_int(0, 7));
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      ++total;
      const auto decoded = SnapshotCodec::decode(corrupted);
      if (!decoded.has_value()) {
        ++rejected;
        continue;
      }
      // A decode that "succeeds" on a corrupted image would be a CRC bug.
      ADD_FAILURE() << "seed " << seed << ": single-bit flip at byte " << byte << " bit "
                    << bit << " decoded successfully";
    }
  }
  EXPECT_EQ(rejected, total);
}

TEST(SnapshotFuzzTest, EmptyAndGarbageBuffersAreRejected) {
  EXPECT_FALSE(SnapshotCodec::decode({}).has_value());
  util::Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> garbage(static_cast<std::size_t>(rng.uniform_int(1, 256)));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_FALSE(SnapshotCodec::decode(garbage).has_value()) << "trial " << trial;
  }
}

// --- decode_ex error taxonomy ------------------------------------------------

TEST(SnapshotFuzzTest, DecodeExAgreesWithDecodeOnEveryMutation) {
  // decode() is documented as decode_ex() minus the taxonomy: an image
  // decodes via one iff it decodes via the other. Fuzz that equivalence over
  // round-trips, truncations and bit flips.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    const auto image = SnapshotCodec::encode(random_state(rng));
    const auto ok = SnapshotCodec::decode_ex(image);
    ASSERT_TRUE(ok.state.has_value()) << "seed " << seed;
    EXPECT_FALSE(ok.error.has_value()) << "seed " << seed;

    for (int trial = 0; trial < 32; ++trial) {
      auto corrupted = image;
      const auto byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(image.size()) - 1));
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      const auto ex = SnapshotCodec::decode_ex(corrupted);
      EXPECT_EQ(SnapshotCodec::decode(corrupted).has_value(), ex.state.has_value())
          << "seed " << seed << " trial " << trial;
      EXPECT_NE(ex.state.has_value(), ex.error.has_value())
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(SnapshotFuzzTest, DecodeExClassifiesHandBuiltFailures) {
  util::Rng rng(7);
  const auto image = SnapshotCodec::encode(random_state(rng));

  const auto error_of = [](const std::vector<std::uint8_t>& img) {
    const auto ex = SnapshotCodec::decode_ex(img);
    EXPECT_FALSE(ex.state.has_value());
    return ex.error;
  };

  EXPECT_EQ(error_of({}), SnapshotDecodeError::Truncated);
  EXPECT_EQ(error_of({0x53, 0x53}), SnapshotDecodeError::Truncated);
  EXPECT_EQ(error_of({image.begin(), image.begin() + 12}), SnapshotDecodeError::Truncated);

  auto bad_magic = image;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(error_of(bad_magic), SnapshotDecodeError::BadMagic);

  auto bad_version = image;
  bad_version[4] = 0x7F;  // version 1 -> 127; CRC no longer matters
  EXPECT_EQ(error_of(bad_version), SnapshotDecodeError::UnknownVersion);

  auto trailing = image;
  trailing.insert(trailing.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_EQ(error_of(trailing), SnapshotDecodeError::TrailingGarbage);

  // Flip a bit inside a history value: the structure still parses (lengths
  // untouched), so only the CRC catches it.
  JobSnapshotState simple;
  simple.job_id = 1;
  simple.history = {0.5};
  auto flipped = SnapshotCodec::encode(simple);
  // Layout tail: history f64 (8) | secondary count (4) | pad len (4) | crc
  // (4); size-16 lands inside the f64.
  flipped[flipped.size() - 16] ^= 0x01;
  EXPECT_EQ(error_of(flipped), SnapshotDecodeError::BadChecksum);

  EXPECT_STREQ(to_string(SnapshotDecodeError::Truncated), "truncated");
  EXPECT_STREQ(to_string(SnapshotDecodeError::BadChecksum), "bad-checksum");
}

// --- persisted regression corpus ---------------------------------------------
// Every image that ever exposed a decoder bug (plus one exemplar per verdict)
// lives in tests/corpus/snapshot/, with MANIFEST mapping file -> expected
// verdict. CI replays the corpus on every run, so a codec change can never
// silently reclassify (or worse, accept) a known-bad frame.

TEST(SnapshotFuzzTest, RegressionCorpusVerdictsAreStable) {
  const std::string dir = HD_SNAPSHOT_CORPUS_DIR;
  std::ifstream manifest(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.is_open()) << "missing corpus manifest in " << dir;

  std::size_t entries = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string file, verdict;
    ASSERT_TRUE(fields >> file >> verdict) << "bad manifest line: " << line;
    ++entries;

    std::ifstream in(dir + "/" + file, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "corpus file missing: " << file;
    std::vector<std::uint8_t> image((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    const auto ex = SnapshotCodec::decode_ex(image);
    if (verdict == "ok") {
      EXPECT_TRUE(ex.state.has_value()) << file;
    } else {
      ASSERT_TRUE(ex.error.has_value()) << file << ": decoded but expected " << verdict;
      EXPECT_STREQ(to_string(*ex.error), verdict.c_str()) << file;
    }
  }
  EXPECT_GE(entries, 10u) << "corpus unexpectedly small — MANIFEST truncated?";
}

}  // namespace
}  // namespace hyperdrive::cluster
