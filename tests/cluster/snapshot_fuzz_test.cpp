// Fuzz / round-trip battery for the snapshot codec (§5.1 byte-level
// suspend/resume). Three properties, each over many random seeds:
//   * any randomly generated snapshot state encodes and decodes back to
//     equality (round-trip);
//   * truncating the image anywhere yields a clean nullopt, never UB;
//   * flipping any single bit yields either nullopt (the CRC catches it) or
//     — never — a silently different state. The cluster's crash-recovery
//     path relies on this: a corrupt stored snapshot must be *rejected* so
//     resume can fall back to an older snapshot or an AppStatDb replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/snapshot_codec.hpp"
#include "util/rng.hpp"

namespace hyperdrive::cluster {
namespace {

JobSnapshotState random_state(util::Rng& rng) {
  JobSnapshotState state;
  state.job_id = rng.next();
  state.epoch = static_cast<std::size_t>(rng.uniform_int(0, 500));

  const auto n_params = static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < n_params; ++i) {
    const std::string name = "param_" + std::to_string(i);
    switch (rng.uniform_int(0, 2)) {
      case 0: state.config.set(name, rng.uniform(-10.0, 10.0)); break;
      case 1: state.config.set(name, rng.uniform_int(-1000, 1000)); break;
      default: {
        std::string value;
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 12));
        for (std::size_t c = 0; c < len; ++c) {
          value.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
        }
        state.config.set(name, value);
      }
    }
  }

  const auto n_history = static_cast<std::size_t>(rng.uniform_int(0, 64));
  for (std::size_t i = 0; i < n_history; ++i) state.history.push_back(rng.uniform());
  if (rng.bernoulli(0.3)) {
    const auto n_secondary = static_cast<std::size_t>(rng.uniform_int(1, 16));
    for (std::size_t i = 0; i < n_secondary; ++i) state.secondary.push_back(rng.uniform());
  }
  return state;
}

void expect_equal(const JobSnapshotState& a, const JobSnapshotState& b,
                  std::uint64_t seed) {
  EXPECT_EQ(a.job_id, b.job_id) << "seed " << seed;
  EXPECT_EQ(a.epoch, b.epoch) << "seed " << seed;
  EXPECT_EQ(a.history, b.history) << "seed " << seed;
  EXPECT_EQ(a.secondary, b.secondary) << "seed " << seed;
  EXPECT_EQ(a.config.values(), b.config.values()) << "seed " << seed;
}

TEST(SnapshotFuzzTest, RandomStatesRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    util::Rng rng(seed);
    const JobSnapshotState state = random_state(rng);
    const std::size_t min_bytes =
        rng.bernoulli(0.5) ? static_cast<std::size_t>(rng.uniform_int(0, 4096)) : 0;
    const auto image = SnapshotCodec::encode(state, min_bytes);
    EXPECT_GE(image.size(), min_bytes) << "seed " << seed;
    const auto decoded = SnapshotCodec::decode(image);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    expect_equal(state, *decoded, seed);
  }
}

TEST(SnapshotFuzzTest, TruncatedImagesAreRejectedCleanly) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(seed);
    const auto image = SnapshotCodec::encode(random_state(rng));
    // Every possible truncation point for small images; a random sample of
    // points for large ones (padding makes some images span kilobytes).
    const std::size_t step = image.size() > 512 ? image.size() / 256 : 1;
    for (std::size_t len = 0; len < image.size(); len += step) {
      const std::vector<std::uint8_t> truncated(image.begin(),
                                                image.begin() + static_cast<long>(len));
      EXPECT_FALSE(SnapshotCodec::decode(truncated).has_value())
          << "seed " << seed << " truncated to " << len << "/" << image.size();
    }
  }
}

TEST(SnapshotFuzzTest, BitFlipsNeverYieldSilentlyWrongState) {
  std::size_t rejected = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(seed);
    const JobSnapshotState state = random_state(rng);
    const auto image = SnapshotCodec::encode(state);
    // Flip a random bit in each of many random positions.
    for (int trial = 0; trial < 64; ++trial) {
      auto corrupted = image;
      const auto byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(image.size()) - 1));
      const auto bit = static_cast<int>(rng.uniform_int(0, 7));
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      ++total;
      const auto decoded = SnapshotCodec::decode(corrupted);
      if (!decoded.has_value()) {
        ++rejected;
        continue;
      }
      // A decode that "succeeds" on a corrupted image would be a CRC bug.
      ADD_FAILURE() << "seed " << seed << ": single-bit flip at byte " << byte << " bit "
                    << bit << " decoded successfully";
    }
  }
  EXPECT_EQ(rejected, total);
}

TEST(SnapshotFuzzTest, EmptyAndGarbageBuffersAreRejected) {
  EXPECT_FALSE(SnapshotCodec::decode({}).has_value());
  util::Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> garbage(static_cast<std::size_t>(rng.uniform_int(1, 256)));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_FALSE(SnapshotCodec::decode(garbage).has_value()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hyperdrive::cluster
