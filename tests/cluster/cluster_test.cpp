#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/policies/default_policy.hpp"
#include "sim/trace_replay.hpp"
#include "workload/cifar_model.hpp"

namespace hyperdrive::cluster {
namespace {

using core::JobDecision;
using core::JobEvent;
using core::JobStatus;
using util::SimTime;

workload::Trace linear_trace(std::size_t jobs, std::size_t epochs, double target = 0.99) {
  workload::Trace trace;
  trace.workload_name = "linear";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(0.5 * static_cast<double>(e) / static_cast<double>(epochs));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

ClusterOptions ideal_options(std::size_t machines) {
  ClusterOptions options;
  options.machines = machines;
  options.overheads = zero_overhead_model();
  options.epoch_jitter_sigma = 0.0;
  return options;
}

TEST(ClusterTest, ZeroOverheadClusterMatchesTraceReplay) {
  const auto trace = linear_trace(6, 8);
  core::DefaultPolicy p1, p2;

  const auto cluster_result =
      run_cluster_experiment(trace, p1, ideal_options(2));
  sim::ReplayOptions replay;
  replay.machines = 2;
  const auto replay_result = sim::replay_experiment(trace, p2, replay);

  EXPECT_EQ(cluster_result.total_time, replay_result.total_time);
  EXPECT_EQ(cluster_result.total_machine_time, replay_result.total_machine_time);
  EXPECT_EQ(cluster_result.jobs_started, replay_result.jobs_started);
}

TEST(ClusterTest, JitterAndOverheadsSlowThingsDown) {
  const auto trace = linear_trace(6, 8);
  core::DefaultPolicy p1, p2;

  ClusterOptions realistic = ideal_options(2);
  realistic.overheads = cifar_overhead_model();
  realistic.epoch_jitter_sigma = 0.05;
  const auto real_result = run_cluster_experiment(trace, p1, realistic);
  const auto ideal_result = run_cluster_experiment(trace, p2, ideal_options(2));

  EXPECT_GT(real_result.total_time, ideal_result.total_time);
  // But within a small factor: these are overheads, not workload changes.
  EXPECT_LT(real_result.total_time.to_seconds(),
            ideal_result.total_time.to_seconds() * 1.2);
}

TEST(ClusterTest, DeterministicGivenSeed) {
  const auto trace = linear_trace(4, 6);
  ClusterOptions options = ideal_options(2);
  options.overheads = cifar_overhead_model();
  options.epoch_jitter_sigma = 0.05;
  options.seed = 123;
  core::DefaultPolicy p1, p2;
  const auto a = run_cluster_experiment(trace, p1, options);
  const auto b = run_cluster_experiment(trace, p2, options);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_machine_time, b.total_machine_time);
}

class SuspendOncePolicy final : public core::DefaultPolicy {
 public:
  JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
    if (event.epoch == 2 && suspended_.insert(event.job_id).second) {
      return JobDecision::Suspend;
    }
    return core::DefaultPolicy::on_iteration_finish(ops, event);
  }

 private:
  std::set<core::JobId> suspended_;
};

TEST(ClusterTest, SuspendRecordsOverheadSamples) {
  const auto trace = linear_trace(3, 6);
  SuspendOncePolicy policy;
  ClusterOptions options = ideal_options(1);
  options.overheads = cifar_overhead_model();
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_EQ(result.suspends, 3u);
  ASSERT_EQ(result.suspend_samples.size(), 3u);
  for (const auto& s : result.suspend_samples) {
    EXPECT_GT(s.latency, SimTime::zero());
    EXPECT_LE(s.latency.to_seconds(), 1.12);
    EXPECT_GT(s.snapshot_bytes, 0.0);
    EXPECT_LE(s.snapshot_bytes, 686.06e3);
  }
  // Snapshots were stored in the AppStatDB for resume.
  EXPECT_TRUE(cluster.app_stat_db().latest_snapshot(1).has_value());
  // All jobs finished despite the suspends.
  for (const auto& js : result.job_stats) {
    EXPECT_EQ(js.final_status, JobStatus::Completed);
    EXPECT_EQ(js.epochs_completed, 6u);
    EXPECT_EQ(js.times_suspended, 1u);
  }
}

TEST(ClusterTest, NodeAgentsAccumulateBusyTime) {
  const auto trace = linear_trace(4, 5);
  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, ideal_options(2));
  const auto result = cluster.run(policy);

  SimTime agent_total = SimTime::zero();
  std::size_t epochs = 0;
  for (const auto& agent : cluster.node_agents()) {
    agent_total += agent.busy_time();
    epochs += agent.epochs_run();
  }
  EXPECT_EQ(epochs, 4u * 5u);
  EXPECT_NEAR(agent_total.to_seconds(), result.total_machine_time.to_seconds(), 1.0);
}

TEST(ClusterTest, StatReportLatencyDelaysTargetDetection) {
  auto trace = linear_trace(1, 4, /*target=*/0.5);  // reached at final epoch
  core::DefaultPolicy p1, p2;

  const auto ideal = run_cluster_experiment(trace, p1, ideal_options(1));
  ClusterOptions with_latency = ideal_options(1);
  with_latency.overheads.stat_latency_s = {std::log(0.5), 0.0, 0.5, 0.5};  // fixed 500 ms
  const auto delayed = run_cluster_experiment(trace, p2, with_latency);

  ASSERT_TRUE(ideal.reached_target);
  ASSERT_TRUE(delayed.reached_target);
  EXPECT_NEAR((delayed.time_to_target - ideal.time_to_target).to_seconds(), 0.5, 1e-6);
}

TEST(ClusterTest, DecisionLatencyOverlapsTraining) {
  // A terminate decision at the boundary (epoch 2) arrives 90 s late; the
  // job keeps training meanwhile (overlap, §5.2) and is interrupted
  // mid-epoch-3, wasting partial work.
  const auto trace = linear_trace(1, 10, /*target=*/0.99);

  class KillAtBoundary final : public core::DefaultPolicy {
   public:
    JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
      if (event.epoch % ops.evaluation_boundary() == 0) return JobDecision::Terminate;
      return JobDecision::Continue;
    }
  };

  KillAtBoundary p1;
  ClusterOptions options = ideal_options(1);
  options.decision_latency = [](core::JobId, std::size_t, util::Rng&) {
    return SimTime::seconds(90);
  };
  const auto result = run_cluster_experiment(trace, p1, options);
  ASSERT_EQ(result.job_stats.size(), 1u);
  // The epoch-2 kill decision lands at t=210 s. By then epoch 3 has also
  // completed (t=180 s) and epoch 4 is 30 s in; that partial epoch is
  // discarded but its machine time is charged.
  EXPECT_EQ(result.job_stats[0].epochs_completed, 3u);
  EXPECT_NEAR(result.job_stats[0].execution_time.to_seconds(), 210.0, 1e-6);
  EXPECT_EQ(result.job_stats[0].final_status, JobStatus::Terminated);
}

TEST(ClusterTest, ResumeMovesHistoryToNewAgent) {
  const auto trace = linear_trace(2, 6);
  SuspendOncePolicy policy;
  ClusterOptions options = ideal_options(1);
  options.overheads = cifar_overhead_model();
  HyperDriveCluster cluster(trace, options);
  (void)cluster.run(policy);
  // After the run, the (single) agent holds the resumed jobs' histories.
  std::size_t with_history = 0;
  for (core::JobId id = 1; id <= 2; ++id) {
    if (cluster.node_agents()[0].hosts_history(id)) ++with_history;
  }
  EXPECT_EQ(with_history, 2u);
}

TEST(ClusterTest, MaxExperimentTimeEnforced) {
  const auto trace = linear_trace(10, 100);
  core::DefaultPolicy policy;
  ClusterOptions options = ideal_options(1);
  options.max_experiment_time = SimTime::minutes(10);
  const auto result = run_cluster_experiment(trace, policy, options);
  EXPECT_FALSE(result.reached_target);
  EXPECT_LE(result.total_time, SimTime::minutes(10));
}

}  // namespace
}  // namespace hyperdrive::cluster
