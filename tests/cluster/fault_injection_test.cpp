// The fault-injection + reliability battery. Covers, in order:
//   * FaultInjector: decisions are a pure function of (plan seed, run seed);
//   * MessageBus reliability: ack/retransmit delivers exactly once through
//     heavy drop/duplication, endpoint-down handling, give-up callbacks;
//   * HyperDriveCluster crash recovery: requeue, capacity shrink/grow,
//     snapshot-loss and corruption fallbacks, no hung experiments;
//   * golden-trace determinism: same seed + same fault plan => byte-identical
//     event logs and identical recovery counters; different seed diverges;
//   * the acceptance scenario: a CIFAR sweep under 5% message drop plus a
//     mid-run node crash still reaches the target with bounded degradation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/experiment_runner.hpp"
#include "core/policies/default_policy.hpp"
#include "core/policies/pop_policy.hpp"
#include "workload/cifar_model.hpp"

namespace hyperdrive::cluster {
namespace {

using core::JobDecision;
using core::JobEvent;
using core::JobStatus;
using util::SimTime;

workload::Trace linear_trace(std::size_t jobs, std::size_t epochs, double target = 0.99) {
  workload::Trace trace;
  trace.workload_name = "linear";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(0.5 * static_cast<double>(e) / static_cast<double>(epochs));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

ClusterOptions base_options(std::size_t machines) {
  ClusterOptions options;
  options.machines = machines;
  options.overheads = cifar_overhead_model();
  options.epoch_jitter_sigma = 0.05;
  options.seed = 7;
  return options;
}

/// Suspends every job at epoch 2 once — exercises the snapshot path.
class SuspendOncePolicy final : public core::DefaultPolicy {
 public:
  JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
    if (event.epoch == 2 && suspended_.insert(event.job_id).second) {
      return JobDecision::Suspend;
    }
    return core::DefaultPolicy::on_iteration_finish(ops, event);
  }

 private:
  std::set<core::JobId> suspended_;
};

// ------------------------------------------------------------ FaultInjector --

TEST(FaultInjectorTest, DecisionStreamIsPureFunctionOfSeeds) {
  FaultPlan plan;
  plan.seed = 99;
  MessageFaultProfile faults;
  faults.drop_prob = 0.3;
  faults.duplicate_prob = 0.2;
  faults.delay_prob = 0.25;
  plan.set_uniform_message_faults(faults);
  plan.snapshot_upload_fail_prob = 0.4;
  plan.snapshot_corrupt_prob = 0.4;

  FaultInjector a(plan, 1), b(plan, 1), c(plan, 2);
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    const bool drop_a = a.should_drop(MessageType::ReportStat);
    const bool drop_b = b.should_drop(MessageType::ReportStat);
    EXPECT_EQ(drop_a, drop_b);
    EXPECT_EQ(a.should_duplicate(MessageType::SnapshotUpload),
              b.should_duplicate(MessageType::SnapshotUpload));
    EXPECT_EQ(a.extra_delay(MessageType::ReportStat), b.extra_delay(MessageType::ReportStat));
    EXPECT_EQ(a.should_fail_upload(), b.should_fail_upload());
    EXPECT_EQ(a.should_corrupt_snapshot(), b.should_corrupt_snapshot());
    if (drop_a != c.should_drop(MessageType::ReportStat)) diverged = true;
  }
  EXPECT_TRUE(diverged) << "a different run seed must produce a different stream";
  EXPECT_EQ(a.stats().messages_dropped, b.stats().messages_dropped);
  EXPECT_GT(a.stats().messages_dropped, 0u);
}

TEST(FaultInjectorTest, ZeroProbabilityClassesConsumeNoRandomness) {
  // Enabling only drops must not perturb the duplicate/delay streams: the
  // same drop decisions appear whether or not other classes are queried.
  FaultPlan plan;
  plan.seed = 5;
  MessageFaultProfile faults;
  faults.drop_prob = 0.5;
  plan.set_uniform_message_faults(faults);

  FaultInjector only_drops(plan, 1), interleaved(plan, 1);
  for (int i = 0; i < 100; ++i) {
    const bool a = only_drops.should_drop(MessageType::ReportStat);
    // These three return immediately (probability zero) without draws.
    (void)interleaved.should_duplicate(MessageType::ReportStat);
    (void)interleaved.extra_delay(MessageType::ReportStat);
    (void)interleaved.should_fail_upload();
    EXPECT_EQ(a, interleaved.should_drop(MessageType::ReportStat)) << "draw " << i;
  }
}

TEST(FaultInjectorTest, CorruptFlipsExactlyOneBit) {
  FaultPlan plan;
  plan.seed = 3;
  plan.snapshot_corrupt_prob = 1.0;
  FaultInjector injector(plan, 1);
  std::vector<std::uint8_t> image(64, 0);
  injector.corrupt(image);
  int bits = 0;
  for (const auto byte : image) bits += __builtin_popcount(byte);
  EXPECT_EQ(bits, 1);
  std::vector<std::uint8_t> empty;
  injector.corrupt(empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

// ------------------------------------------------- MessageBus reliability --

MessageBusOptions reliable_bus(double latency_s) {
  MessageBusOptions options;
  options.latency_mu = 0.0;
  options.latency_sigma = 0.0;
  options.latency_min_s = latency_s;
  options.latency_max_s = latency_s;
  options.bandwidth_bps = 0.0;
  options.reliability.enabled = true;
  options.reliability.ack_timeout_s = 0.5;
  options.reliability.max_attempts = 32;
  return options;
}

TEST(ReliableBusTest, DeliversExactlyOnceThroughHeavyDropAndDuplication) {
  sim::Simulation simulation;
  MessageBus bus(simulation, reliable_bus(0.01), 1);
  FaultPlan plan;
  plan.seed = 11;
  MessageFaultProfile faults;
  faults.drop_prob = 0.4;
  faults.duplicate_prob = 0.3;
  faults.delay_prob = 0.2;
  faults.delay_mean_s = 0.05;
  plan.set_uniform_message_faults(faults);
  FaultInjector injector(plan, 1);
  bus.set_fault_injector(&injector);

  std::map<std::uint64_t, int> deliveries;  // job_id -> handler invocations
  const auto scheduler = bus.register_endpoint("scheduler", [&](const Message& m) {
    ++deliveries[m.job_id];
  });

  constexpr int kMessages = 200;
  int failures = 0;
  for (int i = 0; i < kMessages; ++i) {
    Message m;
    m.type = MessageType::ReportStat;
    m.to = scheduler;
    m.job_id = static_cast<std::uint64_t>(i);
    bus.send(m, [&](const Message&) { ++failures; });
  }
  simulation.run();

  // At-least-once + receiver dedup = exactly once, for every single message.
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(bus.in_flight(), 0u);
  ASSERT_EQ(deliveries.size(), static_cast<std::size_t>(kMessages));
  for (const auto& [job, count] : deliveries) {
    EXPECT_EQ(count, 1) << "message " << job << " delivered " << count << " times";
  }
  // The fault plan really was active, and recovery really was exercised.
  const auto& stats = bus.stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.retransmissions, 0u);
  EXPECT_GT(stats.duplicates_suppressed, 0u);
  EXPECT_GT(stats.acks_sent, 0u);
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(kMessages));
}

TEST(ReliableBusTest, GivesUpAfterMaxAttemptsAndReportsFailure) {
  sim::Simulation simulation;
  auto options = reliable_bus(0.01);
  options.reliability.max_attempts = 4;
  MessageBus bus(simulation, options, 1);
  FaultPlan plan;
  plan.seed = 1;
  MessageFaultProfile faults;
  faults.drop_prob = 1.0;  // the network eats everything
  plan.set_uniform_message_faults(faults);
  FaultInjector injector(plan, 1);
  bus.set_fault_injector(&injector);

  int handled = 0, failed = 0;
  const auto scheduler =
      bus.register_endpoint("scheduler", [&](const Message&) { ++handled; });
  Message m;
  m.type = MessageType::ReportStat;
  m.to = scheduler;
  bus.send(m, [&](const Message& lost) {
    ++failed;
    EXPECT_EQ(lost.type, MessageType::ReportStat);
  });
  simulation.run();

  EXPECT_EQ(handled, 0);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(bus.stats().undeliverable, 1u);
  EXPECT_EQ(bus.stats().retransmissions, 3u);  // attempts 2..4
  EXPECT_EQ(bus.in_flight(), 0u);
}

TEST(ReliableBusTest, RetriesRideOutADownEndpoint) {
  sim::Simulation simulation;
  MessageBus bus(simulation, reliable_bus(0.01), 1);
  int handled = 0;
  const auto scheduler =
      bus.register_endpoint("scheduler", [&](const Message&) { ++handled; });

  bus.set_endpoint_up(scheduler, false);
  // Bring the endpoint back after a few retransmission windows.
  simulation.schedule_at(SimTime::seconds(2.0),
                         [&] { bus.set_endpoint_up(scheduler, true); });
  Message m;
  m.type = MessageType::ReportStat;
  m.to = scheduler;
  bus.send(m);
  simulation.run();

  EXPECT_EQ(handled, 1);
  EXPECT_GT(bus.stats().dropped_endpoint_down, 0u);
  EXPECT_GT(bus.stats().retransmissions, 0u);
  EXPECT_EQ(bus.in_flight(), 0u);
}

// ----------------------------------------------------- cluster crash paths --

TEST(ClusterFaultTest, CrashedNodeJobIsRequeuedAndExperimentCompletes) {
  const auto trace = linear_trace(4, 8);
  auto options = base_options(2);
  NodeCrashEvent crash;
  crash.machine = 0;
  crash.at = SimTime::seconds(150);  // mid-epoch 3 of whoever runs on node 0
  options.fault_plan.crashes.push_back(crash);

  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_EQ(result.recovery.node_crashes, 1u);
  EXPECT_EQ(result.recovery.node_restarts, 0u);
  EXPECT_GE(result.recovery.jobs_requeued, 1u);
  EXPECT_GT(result.recovery.epochs_lost, 0u);  // no snapshot existed yet
  EXPECT_EQ(cluster.fault_stats().node_crashes, 1u);
  // Permanent capacity loss: the survivor machine finishes everything.
  EXPECT_EQ(cluster.total_machines(), 1u);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 8u) << "job " << job.job_id;
  }
}

TEST(ClusterFaultTest, RestartRestoresCapacity) {
  const auto trace = linear_trace(6, 10);
  auto options = base_options(3);
  NodeCrashEvent crash;
  crash.machine = 1;
  crash.at = SimTime::seconds(200);
  crash.restart_after = SimTime::seconds(120);
  options.fault_plan.crashes.push_back(crash);

  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_EQ(result.recovery.node_crashes, 1u);
  EXPECT_EQ(result.recovery.node_restarts, 1u);
  EXPECT_EQ(cluster.total_machines(), 3u);  // back to full membership
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
  }
}

TEST(ClusterFaultTest, PopCapacityChangeUpcallFires) {
  const auto trace = linear_trace(4, 12, /*target=*/0.99);
  auto options = base_options(2);
  NodeCrashEvent crash;
  crash.machine = 0;
  crash.at = SimTime::seconds(200);
  crash.restart_after = SimTime::seconds(200);
  options.fault_plan.crashes.push_back(crash);

  core::PopConfig config;
  config.tmax = SimTime::hours(96);
  config.predictor = core::make_default_predictor(3);
  core::PopPolicy policy(std::move(config));
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_EQ(policy.capacity_changes(), 2u);  // crash + restart
  EXPECT_EQ(result.recovery.node_crashes, 1u);
  EXPECT_EQ(result.recovery.node_restarts, 1u);
}

TEST(ClusterFaultTest, CrashAfterSnapshotRollsBackOnlyToSnapshotEpoch) {
  // Jobs suspend at epoch 2 (=> durable snapshot at epoch 2), resume, then a
  // late crash kills one mid-flight: it must restart from epoch 2, not 0.
  const auto trace = linear_trace(2, 10);
  auto options = base_options(1);
  NodeCrashEvent crash;
  crash.machine = 0;
  crash.at = SimTime::seconds(400);
  crash.restart_after = SimTime::seconds(60);
  options.fault_plan.crashes.push_back(crash);

  SuspendOncePolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_EQ(result.recovery.node_crashes, 1u);
  EXPECT_GE(result.recovery.jobs_requeued, 1u);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
  }
  // Re-trained epochs reported duplicate stats which the AppStatDb absorbed;
  // the history still has exactly one entry per epoch.
  for (const auto& job : trace.jobs) {
    EXPECT_EQ(cluster.app_stat_db().perf_history(job.job_id).size(), 10u);
  }
}

TEST(ClusterFaultTest, SnapshotUploadFailureRollsBackAndRetrains) {
  const auto trace = linear_trace(3, 8);
  auto options = base_options(2);
  options.fault_plan.seed = 21;
  options.fault_plan.snapshot_upload_fail_prob = 1.0;  // every capture fails

  SuspendOncePolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_GT(result.recovery.snapshots_lost, 0u);
  EXPECT_GE(result.recovery.jobs_requeued, 3u);
  EXPECT_GT(result.recovery.epochs_lost, 0u);  // suspended at 2 with no durable state
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 8u);
  }
}

TEST(ClusterFaultTest, CorruptSnapshotFallsBackToHistoryReplay) {
  const auto trace = linear_trace(3, 8);
  auto options = base_options(2);
  options.fault_plan.seed = 22;
  options.fault_plan.snapshot_corrupt_prob = 1.0;  // every stored image is bad

  SuspendOncePolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  EXPECT_GT(result.recovery.snapshot_restore_failures, 0u);
  EXPECT_GT(cluster.fault_stats().snapshots_corrupted, 0u);
  EXPECT_GT(result.recovery.epochs_lost, 0u);  // restarted from scratch
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 8u);
  }
  for (const auto& job : trace.jobs) {
    EXPECT_EQ(cluster.app_stat_db().perf_history(job.job_id).size(), 8u);
  }
}

TEST(ClusterFaultTest, MessageDropsAreSurvivedByRetransmission) {
  const auto trace = linear_trace(4, 8, /*target=*/0.49);  // reachable at last epoch
  auto options = base_options(2);
  options.fault_plan.seed = 23;
  MessageFaultProfile faults;
  faults.drop_prob = 0.10;
  faults.duplicate_prob = 0.05;
  faults.delay_prob = 0.05;
  options.fault_plan.set_uniform_message_faults(faults);

  core::DefaultPolicy policy;
  HyperDriveCluster cluster(trace, options);
  const auto result = cluster.run(policy);

  // Despite 10% drops the winning stat arrives and the experiment ends.
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(cluster.message_stats().retransmissions, 0u);
  EXPECT_EQ(result.recovery.stat_reports_lost, 0u);  // retries saved every one
}

TEST(ClusterFaultTest, FarFutureCrashDoesNotExtendAFinishedExperiment) {
  const auto trace = linear_trace(4, 6);
  core::DefaultPolicy p1, p2;

  // The crash plan auto-enables the ack/retransmit layer, which shifts
  // timings by ack round-trips; enable it on the baseline too so the only
  // difference between the runs is the scheduled crash itself.
  auto clean = base_options(2);
  clean.reliability.enabled = true;
  const auto baseline = run_cluster_experiment(trace, p1, clean);

  auto faulty = base_options(2);
  NodeCrashEvent crash;
  crash.machine = 0;
  crash.at = SimTime::hours(1000);  // long after all work is done
  faulty.fault_plan.crashes.push_back(crash);
  const auto result = run_cluster_experiment(trace, p2, faulty);

  EXPECT_EQ(result.recovery.node_crashes, 0u);
  EXPECT_EQ(result.total_time, baseline.total_time);
}

// ------------------------------------------------ golden-trace determinism --

FaultPlan stress_plan() {
  FaultPlan plan;
  plan.seed = 77;
  MessageFaultProfile faults;
  faults.drop_prob = 0.08;
  faults.duplicate_prob = 0.05;
  faults.delay_prob = 0.05;
  plan.set_uniform_message_faults(faults);
  plan.snapshot_upload_fail_prob = 0.2;
  plan.snapshot_corrupt_prob = 0.2;
  NodeCrashEvent crash;
  crash.machine = 1;
  crash.at = SimTime::seconds(300);
  crash.restart_after = SimTime::seconds(150);
  plan.crashes.push_back(crash);
  return plan;
}

TEST(GoldenTraceTest, SameSeedSameFaultPlanIsByteIdentical) {
  const auto trace = linear_trace(5, 10);
  auto options = base_options(2);
  options.fault_plan = stress_plan();
  options.record_event_log = true;
  options.seed = 99;

  SuspendOncePolicy p1, p2;
  HyperDriveCluster a(trace, options), b(trace, options);
  const auto ra = a.run(p1);
  const auto rb = b.run(p2);

  // Byte-identical event/decision logs...
  ASSERT_FALSE(a.event_log().empty());
  EXPECT_EQ(a.event_log(), b.event_log());
  // ...identical final results...
  EXPECT_EQ(ra.total_time, rb.total_time);
  EXPECT_EQ(ra.total_machine_time, rb.total_machine_time);
  EXPECT_EQ(ra.best_perf, rb.best_perf);
  EXPECT_EQ(ra.suspends, rb.suspends);
  // ...and identical recovery counters.
  EXPECT_EQ(ra.recovery, rb.recovery);
  EXPECT_EQ(a.fault_stats().messages_dropped, b.fault_stats().messages_dropped);
  EXPECT_EQ(a.fault_stats().snapshots_corrupted, b.fault_stats().snapshots_corrupted);
  EXPECT_EQ(a.message_stats().retransmissions, b.message_stats().retransmissions);
  EXPECT_EQ(a.message_stats().acks_sent, b.message_stats().acks_sent);
}

TEST(GoldenTraceTest, DifferentSeedDiverges) {
  const auto trace = linear_trace(5, 10);
  auto options = base_options(2);
  options.fault_plan = stress_plan();
  options.record_event_log = true;

  options.seed = 99;
  SuspendOncePolicy p1;
  HyperDriveCluster a(trace, options);
  (void)a.run(p1);

  options.seed = 100;  // different run seed, same plan
  SuspendOncePolicy p2;
  HyperDriveCluster b(trace, options);
  (void)b.run(p2);

  EXPECT_NE(a.event_log(), b.event_log());
}

// --------------------------------------------------- acceptance: CIFAR+POP --

workload::Trace reachable_cifar_trace(std::size_t configs, std::uint64_t seed) {
  workload::CifarWorkloadModel model;
  auto trace = workload::generate_trace(model, configs, seed);
  while (!trace.target_reachable()) {
    trace = workload::generate_trace(model, configs, ++seed);
  }
  return trace;
}

core::PopPolicy cifar_pop_policy(std::uint64_t seed) {
  core::PopConfig config;
  config.tmax = SimTime::hours(96);
  config.predictor = core::make_default_predictor(seed);
  return core::PopPolicy(std::move(config));
}

TEST(FaultToleranceAcceptanceTest, CifarSweepSurvivesDropsAndMidRunCrash) {
  const auto trace = reachable_cifar_trace(40, 404);
  ClusterOptions options;
  options.machines = 4;
  options.max_experiment_time = SimTime::hours(96);
  options.seed = 404;

  // Fault-free baseline.
  auto pop_clean = cifar_pop_policy(404);
  const auto baseline = run_cluster_experiment(trace, pop_clean, options);
  ASSERT_TRUE(baseline.reached_target);

  // 5% message drop everywhere + one node crash in the thick of the sweep
  // (restarting 30 simulated minutes later).
  auto faulty = options;
  faulty.fault_plan.seed = 1;
  MessageFaultProfile faults;
  faults.drop_prob = 0.05;
  faulty.fault_plan.set_uniform_message_faults(faults);
  NodeCrashEvent crash;
  crash.machine = 2;
  crash.at = baseline.time_to_target * 0.5;
  crash.restart_after = SimTime::minutes(30);
  faulty.fault_plan.crashes.push_back(crash);

  auto pop_faulty = cifar_pop_policy(404);
  const auto result = run_cluster_experiment(trace, pop_faulty, faulty);

  // Still reaches the paper's accuracy target: no hung jobs, no histories
  // lost forever.
  EXPECT_TRUE(result.reached_target);
  EXPECT_GE(result.best_perf, trace.target_performance);
  EXPECT_EQ(result.recovery.node_crashes, 1u);

  // Bounded, reported degradation versus the fault-free run.
  const double clean_s = baseline.time_to_target.to_seconds();
  const double faulty_s = result.time_to_target.to_seconds();
  RecordProperty("time_to_target_clean_s", static_cast<int>(clean_s));
  RecordProperty("time_to_target_faulty_s", static_cast<int>(faulty_s));
  EXPECT_LT(faulty_s, clean_s * 2.0 + 3600.0)
      << "faults degraded time-to-target unboundedly: " << clean_s << "s -> " << faulty_s
      << "s";

  // Replayability of the acceptance scenario itself.
  auto pop_again = cifar_pop_policy(404);
  const auto again = run_cluster_experiment(trace, pop_again, faulty);
  EXPECT_EQ(again.time_to_target, result.time_to_target);
  EXPECT_EQ(again.recovery, result.recovery);
  EXPECT_EQ(again.best_perf, result.best_perf);
}

}  // namespace
}  // namespace hyperdrive::cluster
