// Lease-layer tests (multi-study arbitration, DESIGN.md §9):
//   * ResourceManager park/unpark state machine edge cases;
//   * tenant-mode HyperDriveCluster reclaim semantics — same-tick reclaim +
//     re-grant, mid-epoch reclaim of a busy slot (clean snapshot migration,
//     never a kill), and reclaiming crashed / quarantined slots (absorbed
//     sick, ungrantable until a restart or probation heals them).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cluster/cluster.hpp"
#include "core/policies/default_policy.hpp"
#include "sim/simulation.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::cluster {
namespace {

using core::JobStatus;
using util::SimTime;

workload::Trace linear_trace(std::size_t jobs, std::size_t epochs) {
  workload::Trace trace;
  trace.workload_name = "linear";
  trace.target_performance = 0.99;  // unreachable: every job runs to the end
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(0.5 * static_cast<double>(e) / static_cast<double>(epochs));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

ClusterOptions tenant_options(std::size_t machines) {
  ClusterOptions options;
  options.machines = machines;
  options.overheads = cifar_overhead_model();
  options.epoch_jitter_sigma = 0.0;
  options.seed = 11;
  options.record_event_log = true;
  return options;
}

bool log_contains(const HyperDriveCluster& cluster, const std::string& needle) {
  return std::any_of(cluster.event_log().begin(), cluster.event_log().end(),
                     [&](const std::string& line) {
                       return line.find(needle) != std::string::npos;
                     });
}

// ---------------------------------------------- ResourceManager lease layer

TEST(ResourceManagerLeaseTest, ParkAndUnparkMoveSlotsInAndOutOfMembership) {
  ResourceManager rm(4);
  EXPECT_EQ(rm.total(), 4u);
  EXPECT_EQ(rm.parked(), 0u);

  rm.park_machine(3);
  EXPECT_TRUE(rm.is_parked(3));
  EXPECT_FALSE(rm.is_online(3));
  EXPECT_EQ(rm.total(), 3u);
  EXPECT_EQ(rm.idle(), 3u);
  EXPECT_EQ(rm.parked(), 1u);
  // Parked slots are never reserved.
  for (int i = 0; i < 3; ++i) {
    const auto m = rm.reserve_idle_machine();
    ASSERT_TRUE(m.has_value());
    EXPECT_NE(*m, 3u);
  }
  EXPECT_FALSE(rm.reserve_idle_machine().has_value());

  rm.release_machine(0);
  rm.unpark_machine(3);
  EXPECT_FALSE(rm.is_parked(3));
  EXPECT_TRUE(rm.is_online(3));
  EXPECT_EQ(rm.total(), 4u);
  EXPECT_EQ(rm.idle(), 2u);
}

TEST(ResourceManagerLeaseTest, EdgeCasesThrowOrAbsorb) {
  ResourceManager rm(3);
  const auto m = rm.reserve_idle_machine();
  ASSERT_TRUE(m.has_value());
  EXPECT_THROW(rm.park_machine(*m), std::logic_error);     // busy
  EXPECT_THROW(rm.unpark_machine(1), std::logic_error);    // not parked
  EXPECT_THROW((void)rm.is_parked(7), std::out_of_range);

  // Parking an offline (crashed) machine absorbs it without touching counts
  // of the online membership.
  rm.set_offline(1);
  EXPECT_EQ(rm.total(), 2u);
  rm.park_machine(1);
  EXPECT_TRUE(rm.is_parked(1));
  EXPECT_EQ(rm.total(), 2u);
  EXPECT_EQ(rm.parked(), 1u);
  rm.park_machine(1);  // idempotent
  EXPECT_EQ(rm.parked(), 1u);
  // A lease grant re-admits it online + idle.
  rm.unpark_machine(1);
  EXPECT_TRUE(rm.is_online(1));
  EXPECT_EQ(rm.total(), 3u);
}

// ------------------------------------------------- tenant cluster reclaim

TEST(TenantLeaseTest, SameTickReclaimAndRegrant) {
  sim::Simulation sim;
  const auto trace = linear_trace(2, 8);
  HyperDriveCluster cluster(trace, tenant_options(4), sim);
  core::DefaultPolicy policy;
  std::size_t released = 0;
  cluster.on_slot_released = [&] { ++released; };
  cluster.start(policy);
  // Jobs occupy machines 0 and 1; 2 and 3 idle online.
  EXPECT_EQ(cluster.held_slots(), 4u);

  cluster.set_lease_target(CapacityView::single(2));  // idle slots park immediately
  EXPECT_EQ(cluster.held_slots(), 2u);
  EXPECT_EQ(released, 2u);

  cluster.set_lease_target(CapacityView::single(3));  // same-tick re-grant of a just-parked slot
  EXPECT_TRUE(cluster.grant_one(0));
  EXPECT_EQ(cluster.held_slots(), 3u);
  EXPECT_FALSE(cluster.grant_one(0));  // at target
  EXPECT_TRUE(log_contains(cluster, "lease-park machine=3 reason=reclaim"));
  EXPECT_TRUE(log_contains(cluster, "lease-grant machine=2"));

  sim.run_until(SimTime::hours(10));
  ASSERT_TRUE(cluster.finished());
  const auto result = cluster.collect();
  EXPECT_EQ(result.jobs_started, 2u);
  EXPECT_EQ(result.terminations, 0u);
  EXPECT_EQ(result.recovery.epochs_lost, 0u);
  EXPECT_EQ(result.lease_reclaims, 2u);
  EXPECT_EQ(result.lease_grants, 1u);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed);
    EXPECT_EQ(job.epochs_completed, 8u);
  }
}

TEST(TenantLeaseTest, MidEpochReclaimMigratesInsteadOfKilling) {
  sim::Simulation sim;
  const auto trace = linear_trace(4, 6);
  HyperDriveCluster cluster(trace, tenant_options(4), sim);
  core::DefaultPolicy policy;
  cluster.start(policy);
  sim.run_until(SimTime::seconds(90));  // every job is mid epoch 2

  cluster.set_lease_target(CapacityView::single(2));
  // All four machines are busy: nothing parks synchronously; the two
  // reclaimed slots drain via clean suspend.
  EXPECT_EQ(cluster.held_slots(), 4u);
  EXPECT_TRUE(log_contains(cluster, "lease-migrate"));

  sim.run_until(SimTime::hours(10));
  ASSERT_TRUE(cluster.finished());
  const auto result = cluster.collect();
  EXPECT_GE(result.recovery.jobs_migrated, 2u);
  EXPECT_GE(result.suspends, 2u);
  EXPECT_EQ(result.terminations, 0u);
  EXPECT_EQ(result.recovery.epochs_lost, 0u);  // migration is a clean suspend
  EXPECT_EQ(result.lease_reclaims, 2u);
  EXPECT_TRUE(log_contains(cluster, "lease-park machine=3 reason=reclaim"));
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 6u) << "job " << job.job_id;
  }
}

TEST(TenantLeaseTest, ReclaimAbsorbsCrashedSlotUntilRestartHealsIt) {
  sim::Simulation sim;
  const auto trace = linear_trace(2, 8);
  auto options = tenant_options(4);
  NodeCrashEvent crash;  // machine 0 dies at 100 s, restarts at 300 s
  crash.machine = 0;
  crash.at = SimTime::seconds(100);
  crash.restart_after = SimTime::seconds(200);
  options.fault_plan.crashes.push_back(crash);
  HyperDriveCluster cluster(trace, options, sim);
  core::DefaultPolicy policy;
  cluster.start(policy);
  sim.run_until(SimTime::seconds(150));
  // Machine 0 is a corpse but still charged to the tenant's lease.
  EXPECT_EQ(cluster.held_slots(), 4u);

  cluster.set_lease_target(CapacityView::single(3));  // parks the idle online slot
  EXPECT_EQ(cluster.held_slots(), 3u);
  cluster.set_lease_target(CapacityView::single(2));  // no idle slot left: absorbs the corpse
  EXPECT_EQ(cluster.held_slots(), 2u);
  EXPECT_TRUE(log_contains(cluster, "lease-park machine=0 reason=reclaim-offline"));

  // The absorbed slot is sick: raising the target can only re-grant the
  // healthy parked slot.
  cluster.set_lease_target(CapacityView::single(4));
  EXPECT_TRUE(cluster.grant_one(0));
  EXPECT_EQ(cluster.held_slots(), 3u);
  EXPECT_FALSE(cluster.grant_one(0));  // only the sick slot remains

  sim.run_until(SimTime::seconds(350));  // restart heals the parked corpse
  EXPECT_TRUE(log_contains(cluster, "restart machine=0 parked"));
  EXPECT_TRUE(cluster.grant_one(0));
  EXPECT_EQ(cluster.held_slots(), 4u);

  sim.run_until(SimTime::hours(10));
  ASSERT_TRUE(cluster.finished());
  const auto result = cluster.collect();
  EXPECT_EQ(result.recovery.node_crashes, 1u);
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 8u) << "job " << job.job_id;
  }
}

TEST(TenantLeaseTest, ReclaimFromQuarantinedNodeHealsThroughProbation) {
  sim::Simulation sim;
  const auto trace = linear_trace(4, 12);
  auto options = tenant_options(2);
  options.epoch_jitter_sigma = 0.05;
  NodeSlowdownEvent slow;  // machine 0 runs 4x slow until 2000 s
  slow.machine = 0;
  slow.factor = 4.0;
  slow.until = SimTime::seconds(2000);
  options.fault_plan.slowdowns.push_back(slow);
  options.health.enabled = true;
  options.health.heartbeat_interval = SimTime::seconds(10);
  options.health.probation_after = SimTime::minutes(15);
  HyperDriveCluster cluster(trace, options, sim);
  core::DefaultPolicy policy;
  cluster.start(policy);

  sim.run_until(SimTime::seconds(1500));
  ASSERT_GE(cluster.health_monitor().stats().quarantines, 1u);

  // Reclaim while machine 0 sits quarantined: the sick slot is absorbed in
  // place and the tenant keeps only its healthy machine.
  cluster.set_lease_target(CapacityView::single(1));
  EXPECT_EQ(cluster.held_slots(), 1u);
  EXPECT_TRUE(log_contains(cluster, "reason=reclaim-offline") ||
              log_contains(cluster, "reason=reclaim-quarantine"));

  sim.run_until(SimTime::hours(10));
  ASSERT_TRUE(cluster.finished());
  const auto result = cluster.collect();
  EXPECT_EQ(result.recovery.nodes_quarantined, 1u);
  // Probation cleared the parked slot without re-admitting it (only a lease
  // grant does that).
  EXPECT_TRUE(log_contains(cluster, "probation machine=0 parked"));
  EXPECT_EQ(result.recovery.epochs_lost, 0u);  // quarantine migration is clean
  for (const auto& job : result.job_stats) {
    EXPECT_EQ(job.final_status, JobStatus::Completed) << "job " << job.job_id;
    EXPECT_EQ(job.epochs_completed, 12u) << "job " << job.job_id;
  }
}

}  // namespace
}  // namespace hyperdrive::cluster
