// Round-trip and error-reporting tests for the fault-plan text format
// (README "Fault-plan files"): save_fault_plan(load_fault_plan(text))
// reproduces the text exactly, loaded plans drive the FaultInjector the same
// as the originals, and malformed input fails with a line number.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/fault_injector.hpp"
#include "cluster/messaging.hpp"

namespace hyperdrive::cluster {
namespace {

using util::SimTime;

/// A plan exercising every directive, including the gray-failure ones.
FaultPlan full_plan() {
  FaultPlan plan;
  plan.seed = 42;
  MessageFaultProfile def;
  def.drop_prob = 0.125;
  def.duplicate_prob = 0.0625;
  def.delay_prob = 0.25;
  def.delay_mean_s = 0.5;
  plan.set_uniform_message_faults(def);
  MessageFaultProfile stats;
  stats.drop_prob = 0.3;
  plan.message_faults[MessageType::ReportStat] = stats;

  NodeCrashEvent crash;
  crash.machine = 2;
  crash.at = SimTime::seconds(300.5);
  crash.restart_after = SimTime::seconds(120);
  plan.crashes.push_back(crash);
  NodeCrashEvent permanent;
  permanent.machine = 3;
  permanent.at = SimTime::hours(2);
  plan.crashes.push_back(permanent);  // restart_after stays infinity

  NodeSlowdownEvent slow;
  slow.machine = 0;
  slow.from = SimTime::seconds(10);
  slow.until = SimTime::seconds(500);
  slow.factor = 4.0;
  plan.slowdowns.push_back(slow);
  NodeSlowdownEvent flap;  // unbounded, flapping
  flap.machine = 1;
  flap.factor = 2.5;
  flap.period = SimTime::seconds(60);
  flap.duty = 0.25;
  plan.slowdowns.push_back(flap);

  HungJobEvent hang;
  hang.machine = 1;
  hang.at = SimTime::seconds(700);
  hang.clear_after = SimTime::seconds(90);
  plan.hangs.push_back(hang);
  HungJobEvent dead;  // clear_after stays infinity
  dead.machine = 2;
  dead.at = SimTime::hours(1);
  plan.hangs.push_back(dead);

  CoordinatorCrashEvent coord;
  coord.at = SimTime::seconds(1234.5);
  plan.coordinator_crashes.push_back(coord);

  plan.snapshot_upload_fail_prob = 0.05;
  plan.snapshot_corrupt_prob = 0.01;
  return plan;
}

std::string save(const FaultPlan& plan) {
  std::ostringstream out;
  save_fault_plan(plan, out);
  return out.str();
}

FaultPlan load(const std::string& text) {
  std::istringstream in(text);
  return load_fault_plan(in);
}

TEST(FaultPlanIoTest, SaveLoadSaveIsAFixedPoint) {
  const auto plan = full_plan();
  const std::string once = save(plan);
  const FaultPlan reloaded = load(once);
  EXPECT_EQ(save(reloaded), once);

  // Spot-check the loaded fields (text equality alone would also pass if
  // both serializations dropped the same directive).
  EXPECT_EQ(reloaded.seed, 42u);
  EXPECT_DOUBLE_EQ(reloaded.default_message_faults.drop_prob, 0.125);
  EXPECT_DOUBLE_EQ(reloaded.default_message_faults.delay_mean_s, 0.5);
  ASSERT_EQ(reloaded.message_faults.count(MessageType::ReportStat), 1u);
  EXPECT_DOUBLE_EQ(reloaded.message_faults.at(MessageType::ReportStat).drop_prob, 0.3);
  ASSERT_EQ(reloaded.crashes.size(), 2u);
  EXPECT_EQ(reloaded.crashes[0].machine, 2u);
  EXPECT_EQ(reloaded.crashes[0].restart_after, SimTime::seconds(120));
  EXPECT_EQ(reloaded.crashes[1].restart_after, SimTime::infinity());
  ASSERT_EQ(reloaded.slowdowns.size(), 2u);
  EXPECT_EQ(reloaded.slowdowns[1].until, SimTime::infinity());
  EXPECT_EQ(reloaded.slowdowns[1].period, SimTime::seconds(60));
  EXPECT_DOUBLE_EQ(reloaded.slowdowns[1].duty, 0.25);
  ASSERT_EQ(reloaded.hangs.size(), 2u);
  EXPECT_EQ(reloaded.hangs[0].clear_after, SimTime::seconds(90));
  EXPECT_EQ(reloaded.hangs[1].clear_after, SimTime::infinity());
  ASSERT_EQ(reloaded.coordinator_crashes.size(), 1u);
  EXPECT_EQ(reloaded.coordinator_crashes[0].at, SimTime::seconds(1234.5));
  EXPECT_DOUBLE_EQ(reloaded.snapshot_corrupt_prob, 0.01);
}

TEST(FaultPlanIoTest, LoadedPlanDrivesTheInjectorIdentically) {
  const auto plan = full_plan();
  const FaultPlan reloaded = load(save(plan));
  FaultInjector a(plan, 9), b(reloaded, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.should_drop(MessageType::ReportStat), b.should_drop(MessageType::ReportStat));
    EXPECT_EQ(a.should_duplicate(MessageType::StartJob),
              b.should_duplicate(MessageType::StartJob));
    EXPECT_EQ(a.should_fail_upload(), b.should_fail_upload());
    const auto t = SimTime::seconds(7.0 * i);
    EXPECT_EQ(a.slowdown_factor(0, t), b.slowdown_factor(0, t));
    EXPECT_EQ(a.slowdown_factor(1, t), b.slowdown_factor(1, t));
    EXPECT_EQ(a.is_hung(1, t), b.is_hung(1, t));
    EXPECT_EQ(a.hang_stall(2, t, SimTime::seconds(30)),
              b.hang_stall(2, t, SimTime::seconds(30)));
  }
}

TEST(FaultPlanIoTest, ParsesCommentsBlankLinesAndInf) {
  const FaultPlan plan = load(
      "# a comment line\n"
      "\n"
      "seed 7   # trailing comment\n"
      "drop * 0.1\n"
      "delay ReportStat 0.2 0.05\n"
      "slowdown 3 0 inf 2.0\n"
      "hang 1 60\n");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.default_message_faults.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.message_faults.at(MessageType::ReportStat).delay_mean_s, 0.05);
  ASSERT_EQ(plan.slowdowns.size(), 1u);
  EXPECT_EQ(plan.slowdowns[0].until, SimTime::infinity());
  ASSERT_EQ(plan.hangs.size(), 1u);
  EXPECT_EQ(plan.hangs[0].clear_after, SimTime::infinity());
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.any_gray());
}

TEST(FaultPlanIoTest, EmptyInputIsAFaultFreePlan) {
  EXPECT_FALSE(load("").any());
  EXPECT_FALSE(load("# only comments\n\n").any());
}

TEST(FaultPlanIoTest, CoordinatorCrashesStayOutOfAny) {
  // any() gates cluster-side fault machinery (and flips the MessageBus into
  // reliable mode); a coordinator-only plan must leave the tenants byte-
  // identical to a fault-free run, so it reports through any_coordinator().
  const FaultPlan plan = load("coordinator-crash 3600\n");
  ASSERT_EQ(plan.coordinator_crashes.size(), 1u);
  EXPECT_EQ(plan.coordinator_crashes[0].at, SimTime::seconds(3600));
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.any_gray());
  EXPECT_TRUE(plan.any_coordinator());
  EXPECT_FALSE(FaultPlan{}.any_coordinator());

  // Pre-recovery plan files (no coordinator-crash directive) keep loading
  // byte-compatibly and leave the new list empty.
  const FaultPlan legacy = load("seed 7\ndrop * 0.1\n");
  EXPECT_TRUE(legacy.coordinator_crashes.empty());
  EXPECT_FALSE(legacy.any_coordinator());
}

void expect_error(const std::string& text, const std::string& needle) {
  try {
    (void)load(text);
    FAIL() << "expected invalid_argument for: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(FaultPlanIoTest, ErrorsCarryLineNumbers) {
  expect_error("seed 1\nwobble 3\n", "line 2");
  expect_error("drop Nonsense 0.5\n", "unknown message type");
  expect_error("drop * banana\n", "bad probability");
  expect_error("crash 0\n", "missing crash time");
  expect_error("slowdown 0 0 100 2.0 60\n", "missing duty");  // period without duty
  expect_error("hang 0 10 20 30\n", "trailing token");
  expect_error("coordinator-crash\n", "crash time");
  expect_error("coordinator-crash 10 20\n", "trailing token");
}

}  // namespace
}  // namespace hyperdrive::cluster
