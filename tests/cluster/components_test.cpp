#include <gtest/gtest.h>

#include <cmath>

#include "cluster/app_stat_db.hpp"
#include "cluster/job_manager.hpp"
#include "cluster/node_agent.hpp"
#include "cluster/overhead_model.hpp"
#include "cluster/resource_manager.hpp"
#include "util/stats.hpp"
#include "workload/cifar_model.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::cluster {
namespace {

using util::SimTime;

TEST(ResourceManagerTest, ReserveAndRelease) {
  ResourceManager rm(3);
  EXPECT_EQ(rm.total(), 3u);
  EXPECT_EQ(rm.idle(), 3u);
  const auto a = rm.reserve_idle_machine();
  const auto b = rm.reserve_idle_machine();
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(rm.idle(), 1u);
  EXPECT_TRUE(rm.is_busy(*a));
  rm.release_machine(*a);
  EXPECT_FALSE(rm.is_busy(*a));
  EXPECT_EQ(rm.idle(), 2u);
}

TEST(ResourceManagerTest, ExhaustionReturnsNullopt) {
  ResourceManager rm(1);
  ASSERT_TRUE(rm.reserve_idle_machine().has_value());
  EXPECT_FALSE(rm.reserve_idle_machine().has_value());
}

TEST(ResourceManagerTest, DoubleReleaseThrows) {
  ResourceManager rm(1);
  const auto m = rm.reserve_idle_machine();
  rm.release_machine(*m);
  EXPECT_THROW(rm.release_machine(*m), std::logic_error);
}

TEST(ResourceManagerTest, InvalidIdsThrow) {
  ResourceManager rm(2);
  EXPECT_THROW(rm.release_machine(99), std::out_of_range);
  EXPECT_THROW((void)rm.is_busy(99), std::out_of_range);
  EXPECT_THROW(ResourceManager(0), std::invalid_argument);
}

TEST(AppStatDbTest, RecordsStatsInOrder) {
  AppStatDb db;
  auto make_stat = [](core::JobId job, std::size_t epoch, double perf, double secs,
                      MachineId node) {
    AppStat stat;
    stat.job_id = job;
    stat.epoch = epoch;
    stat.perf = perf;
    stat.epoch_duration = SimTime::seconds(secs);
    stat.node = node;
    stat.reported_at = SimTime::seconds(secs * static_cast<double>(epoch));
    return stat;
  };
  db.record_stat(make_stat(1, 1, 0.2, 60, 0));
  db.record_stat(make_stat(1, 2, 0.3, 60, 0));
  db.record_stat(make_stat(2, 1, 0.1, 30, 1));
  EXPECT_EQ(db.stats(1).size(), 2u);
  EXPECT_EQ(db.perf_history(1), (std::vector<double>{0.2, 0.3}));
  EXPECT_EQ(db.perf_history(2), (std::vector<double>{0.1}));
  EXPECT_TRUE(db.perf_history(42).empty());
  EXPECT_TRUE(db.stats(42).empty());
}

TEST(AppStatDbTest, SnapshotsLatestWins) {
  AppStatDb db;
  EXPECT_FALSE(db.latest_snapshot(1).has_value());
  ModelSnapshot first;
  first.job_id = 1;
  first.epoch = 10;
  first.size_bytes = 1000.0;
  first.stored_at = SimTime::seconds(600);
  db.store_snapshot(first);
  ModelSnapshot second = first;
  second.epoch = 20;
  second.size_bytes = 2000.0;
  second.stored_at = SimTime::seconds(1200);
  db.store_snapshot(second);
  const auto snap = db.latest_snapshot(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->epoch, 20u);
  EXPECT_DOUBLE_EQ(snap->size_bytes, 2000.0);
}

TEST(AppStatDbTest, SuspendSamplesAccumulate) {
  AppStatDb db;
  db.record_suspend_sample({1, SimTime::milliseconds(150), 300e3});
  db.record_suspend_sample({2, SimTime::milliseconds(200), 400e3});
  EXPECT_EQ(db.suspend_samples().size(), 2u);
}

workload::Trace small_trace() {
  workload::CifarWorkloadModel model;
  return workload::generate_trace(model, 5, 77);
}

TEST(JobManagerTest, FifoByDefault) {
  const auto trace = small_trace();
  JobManager jm(trace);
  EXPECT_EQ(jm.get_idle_job(), std::optional<core::JobId>(1));
  jm.dequeue_idle(1);
  EXPECT_EQ(jm.get_idle_job(), std::optional<core::JobId>(2));
}

TEST(JobManagerTest, PriorityBeatsFifo) {
  const auto trace = small_trace();
  JobManager jm(trace);
  jm.label_job(4, 0.8);
  EXPECT_EQ(jm.get_idle_job(), std::optional<core::JobId>(4));
  jm.label_job(2, 0.9);
  EXPECT_EQ(jm.get_idle_job(), std::optional<core::JobId>(2));
}

TEST(JobManagerTest, ReEnqueueGoesToFifoTail) {
  const auto trace = small_trace();
  JobManager jm(trace);
  jm.dequeue_idle(1);
  jm.job(1).status = core::JobStatus::Suspended;
  jm.enqueue_idle(1);
  // Jobs 2..5 were enqueued earlier; job 1 is now behind them.
  EXPECT_EQ(jm.get_idle_job(), std::optional<core::JobId>(2));
}

TEST(JobManagerTest, TerminatedJobsNeverIdle) {
  const auto trace = small_trace();
  JobManager jm(trace);
  for (core::JobId id = 1; id <= 5; ++id) {
    jm.job(id).status = core::JobStatus::Terminated;
  }
  EXPECT_FALSE(jm.get_idle_job().has_value());
}

TEST(JobManagerTest, ActiveJobsExcludesFinished) {
  const auto trace = small_trace();
  JobManager jm(trace);
  jm.job(1).status = core::JobStatus::Completed;
  jm.job(2).status = core::JobStatus::Terminated;
  const auto active = jm.active_jobs();
  EXPECT_EQ(active.size(), 3u);
}

TEST(JobManagerTest, UnknownJobThrows) {
  const auto trace = small_trace();
  JobManager jm(trace);
  EXPECT_THROW((void)jm.job(99), std::out_of_range);
}

TEST(NodeAgentTest, AccountingAccumulates) {
  NodeAgent agent(3);
  EXPECT_EQ(agent.id(), 3u);
  agent.note_busy(SimTime::seconds(10));
  agent.note_busy(SimTime::seconds(5));
  agent.note_epoch();
  agent.note_prediction();
  EXPECT_EQ(agent.busy_time(), SimTime::seconds(15));
  EXPECT_EQ(agent.epochs_run(), 1u);
  EXPECT_EQ(agent.predictions_run(), 1u);
}

TEST(NodeAgentTest, HistoryHandoffAcrossMachines) {
  NodeAgent a(0), b(1);
  a.append_history(7, 0.1);
  a.append_history(7, 0.2);
  EXPECT_TRUE(a.hosts_history(7));
  auto history = a.take_history(7);
  EXPECT_FALSE(a.hosts_history(7));
  b.install_history(7, std::move(history));
  EXPECT_EQ(b.history(7), (std::vector<double>{0.1, 0.2}));
}

// A silent empty history for an unhosted job would quietly wreck the new
// host's curve predictions after a migration; the agent must fail loudly.
TEST(NodeAgentTest, HistoryAccessForUnhostedJobThrows) {
  NodeAgent a(0);
  a.append_history(7, 0.1);
  EXPECT_FALSE(a.hosts_history(99));
  EXPECT_THROW((void)a.history(99), std::out_of_range);
  EXPECT_THROW((void)a.take_history(99), std::out_of_range);
  // A taken-away history is gone: a second take must also fail loudly.
  (void)a.take_history(7);
  EXPECT_THROW((void)a.take_history(7), std::out_of_range);
  // Crash cleanup drops everything the agent hosted.
  a.install_history(7, {0.1, 0.2});
  a.clear_histories();
  EXPECT_FALSE(a.hosts_history(7));
  EXPECT_THROW((void)a.history(7), std::out_of_range);
}

TEST(ClampedLognormalTest, RespectsClamp) {
  ClampedLognormal dist{0.0, 2.0, 0.5, 2.0};
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = dist.sample(rng);
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 2.0);
  }
}

TEST(OverheadModelTest, CifarSuspendsMatchPaperStatistics) {
  // §6.2.3: avg 157.69 ms (sigma 72 ms), max 1.12 s; snapshots avg 357.67 KB,
  // max 686.06 KB.
  const auto model = cifar_overhead_model();
  util::Rng rng(2);
  util::OnlineStats latency, size;
  for (int i = 0; i < 20000; ++i) {
    const auto s = model.sample_suspend(rng);
    latency.add(s.latency.to_seconds());
    size.add(s.snapshot_bytes);
  }
  EXPECT_NEAR(latency.mean(), 0.158, 0.03);
  EXPECT_LE(latency.max(), 1.12);
  EXPECT_NEAR(size.mean(), 357.67e3, 50e3);
  EXPECT_LE(size.max(), 686.06e3);
}

TEST(OverheadModelTest, LunarCriuSnapshotsAreHeavier) {
  // Fig. 10: latency up to 22.36 s, snapshots up to 43.75 MB.
  const auto model = lunar_criu_overhead_model();
  util::Rng rng(3);
  util::OnlineStats latency, size;
  for (int i = 0; i < 20000; ++i) {
    const auto s = model.sample_suspend(rng);
    latency.add(s.latency.to_seconds());
    size.add(s.snapshot_bytes);
  }
  EXPECT_LE(latency.max(), 22.36);
  EXPECT_GT(latency.mean(), 1.0);
  EXPECT_LE(size.max(), 43.75e6);
  EXPECT_GT(size.mean(), 10e6);
  // CRIU snapshots dwarf framework-level ones.
  EXPECT_GT(size.mean(), 10.0 * 686.06e3);
}

TEST(OverheadModelTest, ResumeCostScalesWithSnapshotSize) {
  // Fix the restore latency (zero-variance distribution) so the transfer
  // term is isolated: the cost difference must be exactly size / bandwidth.
  auto model = cifar_overhead_model();
  model.suspend_latency_s = {std::log(0.1), 0.0, 0.1, 0.1};
  util::Rng rng(4);
  SuspendOverheadSample small{SimTime::milliseconds(100), 1e3};
  SuspendOverheadSample big{SimTime::milliseconds(100), 686e3};
  const double small_cost = model.resume_cost(small, rng).to_seconds();
  const double big_cost = model.resume_cost(big, rng).to_seconds();
  EXPECT_NEAR(big_cost - small_cost, (686e3 - 1e3) / model.resume_bandwidth_bps, 1e-9);
}

TEST(OverheadModelTest, ZeroModelIsFree) {
  const auto model = zero_overhead_model();
  util::Rng rng(5);
  const auto s = model.sample_suspend(rng);
  EXPECT_EQ(s.latency, SimTime::zero());
  EXPECT_DOUBLE_EQ(s.snapshot_bytes, 0.0);
  EXPECT_EQ(model.resume_cost(s, rng), SimTime::zero());
  EXPECT_EQ(model.sample_stat_latency(rng), SimTime::zero());
  EXPECT_EQ(model.job_start_cost, SimTime::zero());
}

TEST(OverheadModelTest, StatLatencyIsMilliseconds) {
  const auto model = cifar_overhead_model();
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto l = model.sample_stat_latency(rng);
    EXPECT_GE(l.to_seconds(), 2e-4);
    EXPECT_LE(l.to_seconds(), 0.01);
  }
}

}  // namespace
}  // namespace hyperdrive::cluster
