#include "cluster/snapshot_codec.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/policies/default_policy.hpp"
#include "workload/cifar_model.hpp"

namespace hyperdrive::cluster {
namespace {

JobSnapshotState sample_state() {
  JobSnapshotState state;
  state.job_id = 42;
  state.epoch = 17;
  state.config.set("lr", 0.003);
  state.config.set("batch", std::int64_t{128});
  state.config.set("optimizer", std::string("sgd"));
  state.history = {0.1, 0.2, 0.35, 0.42};
  state.secondary = {0.0, 0.05};
  return state;
}

TEST(Crc32Test, MatchesKnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(SnapshotCodecTest, RoundTripsAllFields) {
  const auto state = sample_state();
  const auto image = SnapshotCodec::encode(state);
  const auto decoded = SnapshotCodec::decode(image);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->job_id, 42u);
  EXPECT_EQ(decoded->epoch, 17u);
  EXPECT_DOUBLE_EQ(decoded->config.get_double("lr"), 0.003);
  EXPECT_EQ(decoded->config.get_int("batch"), 128);
  EXPECT_EQ(decoded->config.get_categorical("optimizer"), "sgd");
  EXPECT_EQ(decoded->history, state.history);
  EXPECT_EQ(decoded->secondary, state.secondary);
}

TEST(SnapshotCodecTest, EmptyStateRoundTrips) {
  JobSnapshotState state;
  state.job_id = 1;
  const auto decoded = SnapshotCodec::decode(SnapshotCodec::encode(state));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->history.empty());
  EXPECT_EQ(decoded->config.size(), 0u);
}

TEST(SnapshotCodecTest, PaddingGrowsImageAndStillDecodes) {
  const auto state = sample_state();
  const auto small = SnapshotCodec::encode(state);
  const auto padded = SnapshotCodec::encode(state, 100000);
  EXPECT_GE(padded.size(), 100000u);
  EXPECT_LT(small.size(), 1000u);
  const auto decoded = SnapshotCodec::decode(padded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->history, state.history);
}

TEST(SnapshotCodecTest, DetectsBitFlips) {
  const auto image = SnapshotCodec::encode(sample_state());
  // Flip one bit anywhere in the body: the checksum must catch it.
  for (std::size_t pos : {std::size_t{4}, image.size() / 2, image.size() - 5}) {
    auto corrupted = image;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(SnapshotCodec::decode(corrupted).has_value()) << "pos " << pos;
  }
}

TEST(SnapshotCodecTest, DetectsTruncation) {
  const auto image = SnapshotCodec::encode(sample_state());
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, image.size() / 2}) {
    std::vector<std::uint8_t> truncated(image.begin(),
                                        image.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(SnapshotCodec::decode(truncated).has_value());
  }
}

TEST(SnapshotCodecTest, RejectsWrongMagic) {
  auto image = SnapshotCodec::encode(sample_state());
  image[0] ^= 0xFF;
  EXPECT_FALSE(SnapshotCodec::decode(image).has_value());
}

TEST(SnapshotCodecTest, ClusterSuspendStoresDecodableImages) {
  // Drive a real suspend through the cluster and verify the stored image
  // restores to the job's exact observed history.
  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 2, 99);

  class SuspendAtTwo final : public core::DefaultPolicy {
   public:
    core::JobDecision on_iteration_finish(core::SchedulerOps& ops,
                                          const core::JobEvent& event) override {
      if (event.epoch == 2 && event.job_id == 1 && !done_) {
        done_ = true;
        return core::JobDecision::Suspend;
      }
      return core::DefaultPolicy::on_iteration_finish(ops, event);
    }

   private:
    bool done_ = false;
  };

  SuspendAtTwo policy;
  ClusterOptions options;
  options.machines = 1;
  options.stop_on_target = false;
  options.epoch_jitter_sigma = 0.0;
  HyperDriveCluster cluster(trace, options);
  (void)cluster.run(policy);

  const auto snapshot = cluster.app_stat_db().latest_snapshot(1);
  ASSERT_TRUE(snapshot.has_value());
  const auto state = SnapshotCodec::decode(snapshot->image);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->job_id, 1u);
  EXPECT_EQ(state->epoch, 2u);
  ASSERT_EQ(state->history.size(), 2u);
  EXPECT_DOUBLE_EQ(state->history[0], trace.jobs[0].curve.perf[0]);
  EXPECT_DOUBLE_EQ(state->history[1], trace.jobs[0].curve.perf[1]);
  EXPECT_EQ(state->config.stable_hash(), trace.jobs[0].config.stable_hash());
}

}  // namespace
}  // namespace hyperdrive::cluster
