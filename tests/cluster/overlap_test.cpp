// Tests for the §5.2 overlapped-vs-blocking decision modes of the cluster.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "core/policies/default_policy.hpp"

namespace hyperdrive::cluster {
namespace {

using core::JobDecision;
using core::JobEvent;
using core::JobStatus;
using util::SimTime;

workload::Trace one_job_trace(std::size_t epochs) {
  workload::Trace trace;
  trace.workload_name = "one";
  trace.target_performance = 0.99;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  workload::TraceJob job;
  job.job_id = 1;
  job.curve.epoch_duration = SimTime::seconds(60);
  for (std::size_t e = 1; e <= epochs; ++e) {
    job.curve.perf.push_back(0.5 * static_cast<double>(e) / static_cast<double>(epochs));
  }
  trace.jobs.push_back(std::move(job));
  return trace;
}

ClusterOptions base_options() {
  ClusterOptions options;
  options.machines = 1;
  options.overheads = zero_overhead_model();
  options.epoch_jitter_sigma = 0.0;
  options.decision_latency = [](core::JobId, std::size_t, util::Rng&) {
    return SimTime::seconds(30);
  };
  return options;
}

TEST(OverlapDecisionTest, BlockingModePausesTrainingAtBoundaries) {
  // 6 epochs, boundaries at 2/4 block for 30 s each (the epoch-6 decision
  // arrives after the job has already completed). Blocking wall time:
  // 6*60 + 2*30 = 420 s; overlapped: 360 s.
  const auto trace = one_job_trace(6);

  core::DefaultPolicy p1, p2;
  auto blocking = base_options();
  blocking.overlap_decisions = false;
  const auto blocked = run_cluster_experiment(trace, p1, blocking);

  auto overlapped = base_options();
  const auto overlap = run_cluster_experiment(trace, p2, overlapped);

  EXPECT_NEAR(blocked.total_time.to_seconds(), 420.0, 1e-6);
  EXPECT_NEAR(overlap.total_time.to_seconds(), 360.0, 1e-6);
  // The blocked machine time includes the idle waits.
  EXPECT_NEAR(blocked.job_stats[0].execution_time.to_seconds(), 420.0, 1e-6);
  EXPECT_NEAR(overlap.job_stats[0].execution_time.to_seconds(), 360.0, 1e-6);
}

TEST(OverlapDecisionTest, BlockingTerminationWastesNoPartialEpoch) {
  class KillAtFirstBoundary final : public core::DefaultPolicy {
   public:
    JobDecision on_iteration_finish(core::SchedulerOps& ops,
                                    const JobEvent& event) override {
      if (event.epoch % ops.evaluation_boundary() == 0) return JobDecision::Terminate;
      return JobDecision::Continue;
    }
  };

  const auto trace = one_job_trace(10);
  KillAtFirstBoundary policy;
  auto options = base_options();
  options.overlap_decisions = false;
  const auto result = run_cluster_experiment(trace, policy, options);
  ASSERT_EQ(result.job_stats.size(), 1u);
  // Exactly 2 epochs + one 30 s decision wait; no discarded partial epoch.
  EXPECT_EQ(result.job_stats[0].epochs_completed, 2u);
  EXPECT_NEAR(result.job_stats[0].execution_time.to_seconds(), 150.0, 1e-6);
  EXPECT_EQ(result.job_stats[0].final_status, JobStatus::Terminated);
}

TEST(OverlapDecisionTest, OverlappedTerminationDiscardsPartialEpoch) {
  class KillAtFirstBoundary final : public core::DefaultPolicy {
   public:
    JobDecision on_iteration_finish(core::SchedulerOps& ops,
                                    const JobEvent& event) override {
      if (event.epoch % ops.evaluation_boundary() == 0) return JobDecision::Terminate;
      return JobDecision::Continue;
    }
  };

  const auto trace = one_job_trace(10);
  KillAtFirstBoundary policy;
  const auto result = run_cluster_experiment(trace, policy, base_options());
  ASSERT_EQ(result.job_stats.size(), 1u);
  // 2 epochs complete; the decision lands at t = 150 s, 30 s into epoch 3,
  // whose partial work is charged but produced nothing.
  EXPECT_EQ(result.job_stats[0].epochs_completed, 2u);
  EXPECT_NEAR(result.job_stats[0].execution_time.to_seconds(), 150.0, 1e-6);
}

TEST(OverlapDecisionTest, NoLatencyModelMeansNoBlocking) {
  const auto trace = one_job_trace(4);
  core::DefaultPolicy policy;
  auto options = base_options();
  options.decision_latency = nullptr;
  options.overlap_decisions = false;  // irrelevant without a latency model
  const auto result = run_cluster_experiment(trace, policy, options);
  EXPECT_NEAR(result.total_time.to_seconds(), 240.0, 1e-6);
}

}  // namespace
}  // namespace hyperdrive::cluster
