#include "curve/parametric_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hyperdrive::curve {
namespace {

// A plausible learning-curve prefix used to seed initial guesses.
std::vector<double> sample_prefix() {
  return {0.12, 0.20, 0.28, 0.34, 0.40, 0.45, 0.48, 0.51, 0.53, 0.55};
}

TEST(ModelRegistryTest, AllElevenFamiliesPresent) {
  EXPECT_EQ(all_model_names().size(), 11u);
  const auto models = make_all_models();
  EXPECT_EQ(models.size(), 11u);
}

TEST(ModelRegistryTest, UnknownNameThrows) {
  EXPECT_THROW(make_models({"pow3", "not_a_model"}), std::invalid_argument);
}

TEST(ModelRegistryTest, SubsetSelection) {
  const auto models = make_models({"weibull", "janoschek"});
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0]->name(), "weibull");
  EXPECT_EQ(models[1]->name(), "janoschek");
}

/// Parameterized over all 11 families: shared structural properties.
class FamilyTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<ParametricModel> model_ = std::move(make_models({GetParam()})[0]);
};

TEST_P(FamilyTest, BoundsMatchParameterCount) {
  EXPECT_EQ(model_->bounds().size(), model_->num_params());
  EXPECT_GT(model_->num_params(), 0u);
  for (const auto& b : model_->bounds()) EXPECT_LT(b.lo, b.hi);
}

TEST_P(FamilyTest, InitialGuessIsInBounds) {
  const auto guess = model_->initial_guess(sample_prefix());
  ASSERT_EQ(guess.size(), model_->num_params());
  EXPECT_TRUE(model_->in_bounds(guess));
}

TEST_P(FamilyTest, InitialGuessEvaluatesFinite) {
  const auto guess = model_->initial_guess(sample_prefix());
  for (double x : {1.0, 2.0, 10.0, 60.0, 120.0}) {
    const double y = model_->eval(x, guess);
    EXPECT_TRUE(std::isfinite(y)) << model_->name() << " at x=" << x;
  }
}

TEST_P(FamilyTest, InitialGuessRoughlyIncreasing) {
  // Learning-curve families seeded from an increasing prefix should predict
  // later-epoch performance at or above the very first epoch's.
  const auto guess = model_->initial_guess(sample_prefix());
  const double early = model_->eval(1.0, guess);
  const double late = model_->eval(120.0, guess);
  EXPECT_GE(late, early - 0.05) << model_->name();
}

TEST_P(FamilyTest, RandomParamsStayInBounds) {
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(model_->in_bounds(model_->random_params(rng)));
  }
}

TEST_P(FamilyTest, InBoundsRejectsOutliersAndWrongArity) {
  auto theta = model_->initial_guess(sample_prefix());
  theta[0] = model_->bounds()[0].hi + 1.0;
  EXPECT_FALSE(model_->in_bounds(theta));
  theta.pop_back();
  EXPECT_FALSE(model_->in_bounds(theta));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyTest,
                         ::testing::ValuesIn(all_model_names()),
                         [](const auto& info) { return info.param; });

TEST(FamilySemanticsTest, Pow3ApproachesAsymptote) {
  const auto models = make_models({"pow3"});
  const std::vector<double> theta = {0.8, 0.7, 0.5};  // c - a x^-alpha
  EXPECT_NEAR(models[0]->eval(1e9, theta), 0.8, 1e-3);
  EXPECT_LT(models[0]->eval(1.0, theta), models[0]->eval(100.0, theta));
}

TEST(FamilySemanticsTest, WeibullInterpolatesBetaToAlpha) {
  const auto models = make_models({"weibull"});
  const std::vector<double> theta = {0.8, 0.1, 0.05, 1.0};
  EXPECT_NEAR(models[0]->eval(1e-9, theta), 0.1, 1e-3);
  EXPECT_NEAR(models[0]->eval(1e6, theta), 0.8, 1e-3);
}

TEST(FamilySemanticsTest, VaporPressureMatchesClosedForm) {
  const auto models = make_models({"vapor_pressure"});
  const std::vector<double> theta = {-0.5, -1.0, 0.1};
  const double x = 7.0;
  EXPECT_NEAR(models[0]->eval(x, theta),
              std::exp(-0.5 - 1.0 / x + 0.1 * std::log(x)), 1e-12);
}

TEST(FamilySemanticsTest, Pow4RejectsNegativeBase) {
  const auto models = make_models({"pow4"});
  // a*x + b <= 0 must yield NaN, not a crash.
  const std::vector<double> theta = {0.8, 0.01, 0.01, 0.5};
  EXPECT_TRUE(std::isfinite(models[0]->eval(1.0, theta)));
}

}  // namespace
}  // namespace hyperdrive::curve
