// Bit-identity of the fused BatchEvaluator kernels against the scalar
// CurveEnsemble reference path (DESIGN.md §11). The batched kernel is only
// allowed to ship as the default because every test here demands *exact*
// bit equality — same expressions, same operand order, same NaN/inf
// propagation — not approximate agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "curve/batch_evaluator.hpp"
#include "curve/ensemble.hpp"
#include "curve/parametric_models.hpp"
#include "curve/predictor.hpp"
#include "util/rng.hpp"

namespace hyperdrive::curve {
namespace {

/// Compare two doubles by bit pattern: distinguishes -0.0 from 0.0 and
/// treats equal infinities as equal (NaN payloads would differ, but neither
/// path may return NaN — log probabilities collapse to -inf).
void expect_bits_eq(double a, double b, const std::string& what) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

/// Deterministic noisy saturating curve, the shape of the CIFAR workload's
/// validation accuracy; varied per seed so every seed fits different data.
std::vector<double> make_history(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed * 7919 + 13);
  const double asymptote = rng.uniform(0.55, 0.9);
  const double rate = rng.uniform(0.05, 0.25);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i + 1);
    double y = asymptote * (1.0 - std::exp(-rate * x)) + rng.normal(0.0, 0.015);
    ys[i] = std::min(0.99, std::max(0.01, y));
  }
  return ys;
}

/// Draw a packed theta for `ensemble`: mostly valid (in-box parameters,
/// weights in [0,1], log_sigma in its box), with a controlled fraction of
/// adversarial vectors (out-of-box coordinates, negative/NaN weights) so the
/// -inf and poisoning paths are compared too.
std::vector<double> random_theta(const CurveEnsemble& ensemble, util::Rng& rng,
                                 bool adversarial) {
  std::vector<double> theta(ensemble.dim());
  for (std::size_t k = 0; k < ensemble.num_models(); ++k) {
    const auto p = ensemble.model(k).random_params(rng);
    std::copy(p.begin(), p.end(), theta.begin() + ensemble.param_offset(k));
  }
  for (std::size_t k = 0; k < ensemble.num_models(); ++k) {
    theta[ensemble.weight_offset() + k] = rng.uniform(0.0, 1.0);
  }
  theta[ensemble.sigma_offset()] =
      rng.uniform(ensemble.prior().log_sigma_lo, ensemble.prior().log_sigma_hi);
  if (adversarial) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(ensemble.dim()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0: theta[i] = 1e9; break;                                   // out of box
      case 1: theta[i] = -1e9; break;                                  // out of box
      case 2: theta[ensemble.weight_offset()] = std::nan(""); break;   // poison
      case 3:                                                          // all dead
        for (std::size_t k = 0; k < ensemble.num_models(); ++k) {
          theta[ensemble.weight_offset() + k] = 0.0;
        }
        break;
    }
  }
  return theta;
}

void check_family_bit_identity(const std::vector<std::string>& names, std::uint64_t seed) {
  const auto history = make_history(seed, 10 + seed % 6);
  const double horizon = 40.0;
  CurveEnsemble ensemble(make_models(names), horizon);
  BatchEvaluator eval(ensemble);
  eval.bind(history);

  util::Rng rng(seed);
  std::vector<std::vector<double>> thetas;
  thetas.push_back(ensemble.initial_theta(history));
  for (int i = 0; i < 40; ++i) {
    thetas.push_back(ensemble.jitter(thetas.front(), rng));
    thetas.push_back(random_theta(ensemble, rng, /*adversarial=*/i % 3 == 0));
  }

  // Scalar fused path vs two-pass reference.
  for (const auto& theta : thetas) {
    expect_bits_eq(eval.log_prob(theta), ensemble.log_posterior(theta, history),
                   "log_prob[" + names.front() + "]");
  }

  // SoA batch path vs the scalar fused path (and thus the reference).
  std::vector<double> flat;
  for (const auto& theta : thetas) flat.insert(flat.end(), theta.begin(), theta.end());
  std::vector<double> out(thetas.size());
  eval.log_prob_batch(flat, thetas.size(), out);
  for (std::size_t r = 0; r < thetas.size(); ++r) {
    expect_bits_eq(out[r], ensemble.log_posterior(thetas[r], history),
                   "log_prob_batch[" + names.front() + "]");
  }

  // Curve evaluation used by the posterior-predictive stage.
  for (const auto& theta : thetas) {
    for (double x : {1.0, 3.5, 12.0, horizon}) {
      const double a = eval.eval_curve(x, theta);
      const double b = ensemble.eval(x, theta);
      if (std::isnan(a) && std::isnan(b)) continue;
      expect_bits_eq(a, b, "eval_curve[" + names.front() + "]");
    }
  }
}

TEST(BatchEvaluatorTest, EveryFamilyMatchesReferenceBitForBit) {
  for (const auto& name : all_model_names()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      check_family_bit_identity({name}, seed);
    }
  }
}

TEST(BatchEvaluatorTest, FullElevenFamilyEnsembleMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    check_family_bit_identity(all_model_names(), seed);
  }
}

TEST(BatchEvaluatorTest, RebindingToNewHistoryStaysExact) {
  // The scratch arenas are reused across bind() calls (zero steady-state
  // allocation); reuse must never leak state from the previous history.
  CurveEnsemble ensemble(make_all_models(), 40.0);
  BatchEvaluator eval(ensemble);
  util::Rng rng(77);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto history = make_history(seed, 6 + (seed * 3) % 20);
    eval.bind(history);
    for (int i = 0; i < 10; ++i) {
      const auto theta = random_theta(ensemble, rng, i % 4 == 0);
      expect_bits_eq(eval.log_prob(theta), ensemble.log_posterior(theta, history),
                     "rebind");
    }
  }
}

TEST(BatchEvaluatorTest, UnknownFamilyIsRejected) {
  // A custom ParametricModel has no fused kernel; the evaluator must refuse
  // (callers fall back to the scalar path via batched_kernel = false).
  class CustomModel final : public ParametricModel {
   public:
    [[nodiscard]] std::string_view name() const noexcept override { return "custom"; }
    [[nodiscard]] std::size_t num_params() const noexcept override { return 1; }
    [[nodiscard]] const std::vector<ParamBounds>& bounds() const noexcept override {
      static const std::vector<ParamBounds> b = {{0.0, 1.0}};
      return b;
    }
    [[nodiscard]] double eval(double, std::span<const double> theta) const noexcept override {
      return theta[0];
    }
    [[nodiscard]] std::vector<double> initial_guess(
        std::span<const double>) const override {
      return {0.5};
    }
  };
  std::vector<std::unique_ptr<ParametricModel>> models;
  models.push_back(std::make_unique<CustomModel>());
  CurveEnsemble ensemble(std::move(models), 40.0);
  BatchEvaluator eval;
  EXPECT_THROW(eval.reset(ensemble), std::invalid_argument);
}

/// Full-pipeline check: the batched predictor must reproduce the scalar
/// predictor's sampled curves byte for byte (same RNG draw sequence, same
/// accept/reject decisions, same posterior-predictive noise).
CurvePrediction run_predictor(const std::vector<std::string>& names, std::uint64_t seed,
                              bool batched) {
  PredictorConfig config;
  config.model_names = names;
  config.batched_kernel = batched;
  config.seed = seed;
  config.mcmc.nwalkers = names.size() == 1 ? 16 : 100;
  config.mcmc.nsamples = names.size() == 1 ? 60 : 40;
  config.mcmc.burn_in = 20;
  config.mcmc.thin = 2;
  const auto predictor = make_mcmc_predictor(config);
  const auto history = make_history(seed, 8 + seed % 7);
  const std::vector<double> future = {static_cast<double>(history.size() + 5), 40.0};
  return predictor->predict(history, future, 40.0);
}

void expect_predictions_identical(const CurvePrediction& a, const CurvePrediction& b,
                                  const std::string& what) {
  ASSERT_EQ(a.num_samples(), b.num_samples()) << what;
  ASSERT_EQ(a.epochs(), b.epochs()) << what;
  ASSERT_EQ(a.samples().size(), b.samples().size()) << what;
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    expect_bits_eq(a.samples()[i], b.samples()[i], what);
  }
}

TEST(BatchedPredictorTest, BitIdenticalToScalarPathPerFamilyOver30Seeds) {
  std::size_t compared = 0;
  for (const auto& name : all_model_names()) {
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      // A lone family may legitimately fail to fit a history (every walker
      // start outside its support). Equivalence then means both paths throw;
      // otherwise both must produce byte-identical predictions.
      CurvePrediction batched, scalar;
      bool batched_threw = false, scalar_threw = false;
      try {
        batched = run_predictor({name}, seed, /*batched=*/true);
      } catch (const std::runtime_error&) {
        batched_threw = true;
      }
      try {
        scalar = run_predictor({name}, seed, /*batched=*/false);
      } catch (const std::runtime_error&) {
        scalar_threw = true;
      }
      ASSERT_EQ(batched_threw, scalar_threw) << name << " seed " << seed;
      if (batched_threw) continue;
      expect_predictions_identical(batched, scalar, name + " seed " + std::to_string(seed));
      ++compared;
    }
  }
  // The throw escape hatch must not hollow the test out.
  EXPECT_GT(compared, 250u);
}

TEST(BatchedPredictorTest, BitIdenticalToScalarPathFullEnsemble) {
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    const auto batched = run_predictor(all_model_names(), seed, /*batched=*/true);
    const auto scalar = run_predictor(all_model_names(), seed, /*batched=*/false);
    expect_predictions_identical(batched, scalar, "all-families");
  }
}

TEST(BatchedPredictorTest, ConcurrentPredictsMatchSerial) {
  // The fused path keeps one thread_local evaluator per thread; concurrent
  // predicts through independent predictors must neither race (TSan job
  // filter includes |Batch) nor perturb determinism.
  const std::vector<std::string> names = {"pow3", "weibull", "janoschek"};
  std::vector<CurvePrediction> serial;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    serial.push_back(run_predictor(names, seed, /*batched=*/true));
  }
  std::vector<CurvePrediction> parallel(4);
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] { parallel[t] = run_predictor(names, t + 1, true); });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < 4; ++t) {
    expect_predictions_identical(parallel[t], serial[t], "thread " + std::to_string(t));
  }
}

}  // namespace
}  // namespace hyperdrive::curve
