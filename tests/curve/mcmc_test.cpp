#include "curve/mcmc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace hyperdrive::curve {
namespace {

McmcOptions quick_options() {
  McmcOptions opts;
  opts.nwalkers = 32;
  opts.nsamples = 400;
  opts.burn_in = 100;
  opts.thin = 2;
  return opts;
}

TEST(EnsembleMcmcTest, Samples1dGaussian) {
  auto log_prob = [](const std::vector<double>& x) { return -0.5 * x[0] * x[0]; };
  util::Rng rng(1);
  std::vector<std::vector<double>> walkers;
  for (int i = 0; i < 32; ++i) walkers.push_back({rng.normal(0.0, 0.5)});
  const auto result = run_ensemble_mcmc(log_prob, walkers, quick_options(), rng);

  std::vector<double> xs;
  for (std::size_t i = 0; i < result.num_samples(); ++i) xs.push_back(result.sample(i)[0]);
  ASSERT_GT(xs.size(), 1000u);
  EXPECT_NEAR(util::mean(xs), 0.0, 0.1);
  EXPECT_NEAR(util::stddev(xs), 1.0, 0.15);
}

TEST(EnsembleMcmcTest, Samples2dGaussianWithDifferentScales) {
  auto log_prob = [](const std::vector<double>& x) {
    return -0.5 * (x[0] * x[0] + (x[1] - 3.0) * (x[1] - 3.0) / (0.5 * 0.5));
  };
  util::Rng rng(2);
  std::vector<std::vector<double>> walkers;
  for (int i = 0; i < 40; ++i) walkers.push_back({rng.normal(0, 1), rng.normal(3, 1)});
  McmcOptions opts = quick_options();
  opts.nwalkers = 40;
  opts.nsamples = 600;
  const auto result = run_ensemble_mcmc(log_prob, walkers, opts, rng);

  std::vector<double> x0s, x1s;
  for (std::size_t i = 0; i < result.num_samples(); ++i) {
    x0s.push_back(result.sample(i)[0]);
    x1s.push_back(result.sample(i)[1]);
  }
  EXPECT_NEAR(util::mean(x0s), 0.0, 0.15);
  EXPECT_NEAR(util::mean(x1s), 3.0, 0.1);
  EXPECT_NEAR(util::stddev(x1s), 0.5, 0.12);
}

TEST(EnsembleMcmcTest, AcceptanceRateReasonable) {
  auto log_prob = [](const std::vector<double>& x) { return -0.5 * x[0] * x[0]; };
  util::Rng rng(3);
  std::vector<std::vector<double>> walkers;
  for (int i = 0; i < 32; ++i) walkers.push_back({rng.normal(0.0, 1.0)});
  const auto result = run_ensemble_mcmc(log_prob, walkers, quick_options(), rng);
  EXPECT_GT(result.acceptance_rate, 0.2);
  EXPECT_LT(result.acceptance_rate, 0.95);
}

TEST(EnsembleMcmcTest, RespectsHardSupportBoundary) {
  // Uniform on [0, 1]: all samples must stay inside.
  auto log_prob = [](const std::vector<double>& x) {
    if (x[0] < 0.0 || x[0] > 1.0) return -std::numeric_limits<double>::infinity();
    return 0.0;
  };
  util::Rng rng(4);
  std::vector<std::vector<double>> walkers;
  for (int i = 0; i < 32; ++i) walkers.push_back({rng.uniform(0.3, 0.7)});
  const auto result = run_ensemble_mcmc(log_prob, walkers, quick_options(), rng);
  for (const double x : result.samples) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  // And it should actually spread over the support.
  EXPECT_LT(util::min_of(result.samples), 0.15);
  EXPECT_GT(util::max_of(result.samples), 0.85);
}

TEST(EnsembleMcmcTest, InvalidStartsAreNudgedOntoValidOne) {
  auto log_prob = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return -std::numeric_limits<double>::infinity();
    return -x[0];
  };
  util::Rng rng(5);
  std::vector<std::vector<double>> walkers;
  walkers.push_back({0.5});  // the only valid start
  for (int i = 1; i < 16; ++i) walkers.push_back({-1.0});
  const auto result = run_ensemble_mcmc(log_prob, walkers, quick_options(), rng);
  EXPECT_FALSE(result.samples.empty());
  for (const double x : result.samples) EXPECT_GE(x, 0.0);
}

TEST(EnsembleMcmcTest, ThrowsWhenNoValidStart) {
  auto log_prob = [](const std::vector<double>&) {
    return -std::numeric_limits<double>::infinity();
  };
  util::Rng rng(6);
  std::vector<std::vector<double>> walkers(8, std::vector<double>{0.0});
  EXPECT_THROW(run_ensemble_mcmc(log_prob, walkers, quick_options(), rng),
               std::runtime_error);
}

TEST(EnsembleMcmcTest, ValidatesWalkerSetup) {
  auto log_prob = [](const std::vector<double>&) { return 0.0; };
  util::Rng rng(7);
  std::vector<std::vector<double>> too_few(2, std::vector<double>{0.0});
  EXPECT_THROW(run_ensemble_mcmc(log_prob, too_few, quick_options(), rng),
               std::invalid_argument);
  std::vector<std::vector<double>> ragged = {{0.0}, {0.0}, {0.0, 1.0}, {0.0}};
  EXPECT_THROW(run_ensemble_mcmc(log_prob, ragged, quick_options(), rng),
               std::invalid_argument);
}

TEST(EnsembleMcmcTest, RejectsOddWalkerCount) {
  // The documented Goodman–Weare constraint: even and >= max(4, 2 * dim).
  auto log_prob = [](const std::vector<double>&) { return 0.0; };
  util::Rng rng(7);
  std::vector<std::vector<double>> odd(5, std::vector<double>{0.0});
  EXPECT_THROW(run_ensemble_mcmc(log_prob, odd, quick_options(), rng),
               std::invalid_argument);
}

TEST(EnsembleMcmcTest, RejectsFewerWalkersThanTwiceDim) {
  // 4 walkers are fine in 1-2 dims but cannot span a 3-dim space with
  // stretch moves (the mcmc.hpp contract the old code under-enforced).
  auto log_prob = [](const std::vector<double>&) { return 0.0; };
  util::Rng rng(7);
  std::vector<std::vector<double>> narrow(4, std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_THROW(run_ensemble_mcmc(log_prob, narrow, quick_options(), rng),
               std::invalid_argument);
  // 6 walkers satisfy the constraint at dim 3.
  std::vector<std::vector<double>> enough(6, std::vector<double>{0.0, 0.0, 0.0});
  McmcOptions opts = quick_options();
  opts.nsamples = 20;
  opts.burn_in = 5;
  EXPECT_NO_THROW((void)run_ensemble_mcmc(log_prob, enough, opts, rng));
}

TEST(EnsembleMcmcTest, SampleCountMatchesSchedule) {
  auto log_prob = [](const std::vector<double>& x) { return -0.5 * x[0] * x[0]; };
  util::Rng rng(8);
  std::vector<std::vector<double>> walkers(16, std::vector<double>{0.0});
  for (auto& w : walkers) w[0] = rng.normal(0.0, 1.0);
  McmcOptions opts;
  opts.nwalkers = 16;
  opts.nsamples = 100;
  opts.burn_in = 40;
  opts.thin = 10;
  const auto result = run_ensemble_mcmc(log_prob, walkers, opts, rng);
  // Kept steps: ceil((100-40)/10) = 6 -> 6 * 16 walkers.
  EXPECT_EQ(result.num_samples(), 6u * 16u);
  EXPECT_EQ(result.samples.size(), 6u * 16u * result.dim);
  EXPECT_EQ(result.final_walkers.size(), 16u * result.dim);
}

TEST(EnsembleMcmcTest, DeterministicGivenSeed) {
  auto log_prob = [](const std::vector<double>& x) { return -0.5 * x[0] * x[0]; };
  auto run = [&] {
    util::Rng rng(99);
    std::vector<std::vector<double>> walkers;
    for (int i = 0; i < 16; ++i) walkers.push_back({rng.normal(0.0, 1.0)});
    McmcOptions opts = quick_options();
    opts.nwalkers = 16;
    return run_ensemble_mcmc(log_prob, walkers, opts, rng);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]);
  }
}

TEST(EnsembleMcmcTest, FlatOverloadMatchesFunctionOverload) {
  // The LogProbFn overload must be draw-for-draw identical to the
  // std::function overload when the evaluators agree.
  class Gauss final : public LogProbFn {
   public:
    [[nodiscard]] double log_prob(std::span<const double> x) override {
      return -0.5 * x[0] * x[0];
    }
  };
  auto fn = [](const std::vector<double>& x) { return -0.5 * x[0] * x[0]; };

  util::Rng rng_a(17);
  std::vector<std::vector<double>> nested;
  for (int i = 0; i < 16; ++i) nested.push_back({rng_a.normal(0.0, 1.0)});
  McmcOptions opts = quick_options();
  opts.nwalkers = 16;
  const auto a = run_ensemble_mcmc(fn, nested, opts, rng_a);

  util::Rng rng_b(17);
  std::vector<double> flat;
  for (int i = 0; i < 16; ++i) flat.push_back(rng_b.normal(0.0, 1.0));
  Gauss gauss;
  const auto b = run_ensemble_mcmc(gauss, flat, 1, opts, rng_b);

  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]);
  }
  EXPECT_EQ(a.final_walkers, b.final_walkers);
}

}  // namespace
}  // namespace hyperdrive::curve
