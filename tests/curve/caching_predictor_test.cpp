#include "curve/caching_predictor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace hyperdrive::curve {
namespace {

/// A predictor that counts invocations and returns a deterministic flat
/// posterior derived from the request.
class CountingPredictor final : public CurvePredictor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "counting"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double /*horizon*/) const override {
    ++calls;
    std::vector<std::vector<double>> samples(
        4, std::vector<double>(future_epochs.size(), history.back()));
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(samples));
  }

  mutable int calls = 0;
};

TEST(CachingPredictorTest, ValidatesConstruction) {
  EXPECT_THROW(CachingPredictor(nullptr, 4), std::invalid_argument);
  EXPECT_THROW(CachingPredictor(std::make_shared<CountingPredictor>(), 0),
               std::invalid_argument);
}

TEST(CachingPredictorTest, RepeatedRequestsHitTheCache) {
  auto inner = std::make_shared<CountingPredictor>();
  CachingPredictor cached(inner, 8);
  const std::vector<double> history = {0.1, 0.2, 0.3};
  const std::vector<double> future = {10.0, 20.0};

  const auto a = cached.predict(history, future, 120.0);
  const auto b = cached.predict(history, future, 120.0);
  EXPECT_EQ(inner->calls, 1);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(a.mean_at(0), b.mean_at(0));
}

TEST(CachingPredictorTest, DifferentRequestsMiss) {
  auto inner = std::make_shared<CountingPredictor>();
  CachingPredictor cached(inner, 8);
  const std::vector<double> history = {0.1, 0.2, 0.3};
  (void)cached.predict(history, std::vector<double>{10.0}, 120.0);
  (void)cached.predict(history, std::vector<double>{11.0}, 120.0);  // future differs
  (void)cached.predict(history, std::vector<double>{10.0}, 100.0);  // horizon differs
  (void)cached.predict(std::vector<double>{0.1, 0.2}, std::vector<double>{10.0},
                       120.0);  // history differs
  EXPECT_EQ(inner->calls, 4);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST(CachingPredictorTest, LruEvictsOldestEntry) {
  auto inner = std::make_shared<CountingPredictor>();
  CachingPredictor cached(inner, 2);
  const std::vector<double> h1 = {0.1}, h2 = {0.2}, h3 = {0.3};
  const std::vector<double> future = {5.0};
  (void)cached.predict(h1, future, 120.0);  // miss (h1 cached)
  (void)cached.predict(h2, future, 120.0);  // miss (h2 cached)
  (void)cached.predict(h1, future, 120.0);  // hit, promotes h1
  (void)cached.predict(h3, future, 120.0);  // miss, evicts h2 (LRU)
  (void)cached.predict(h1, future, 120.0);  // hit
  (void)cached.predict(h2, future, 120.0);  // miss (was evicted)
  EXPECT_EQ(inner->calls, 4);
  EXPECT_EQ(cached.hits(), 2u);
  EXPECT_EQ(cached.size(), 2u);
}

/// Thread-safe variant of CountingPredictor for the concurrency hammer.
class AtomicCountingPredictor final : public CurvePredictor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "atomic-counting"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double /*horizon*/) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::vector<double>> samples(
        4, std::vector<double>(future_epochs.size(), history.back()));
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(samples));
  }

  mutable std::atomic<int> calls{0};
};

// N threads hammer one shared instance with overlapping keys. Run under
// TSan in CI (the sweep layer shares a CachingPredictor across worker
// threads whenever one PolicySpec is reused, so this must be data-race
// free, not just crash-free).
TEST(CachingPredictorTest, ConcurrentHammerStaysConsistent) {
  auto inner = std::make_shared<AtomicCountingPredictor>();
  CachingPredictor cached(inner, 16);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 200;
  const std::vector<double> future = {5.0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cached, &future, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        // 32 distinct keys against a 16-entry cache: constant hit/miss/evict
        // churn from every thread.
        const std::vector<double> history = {0.1 + 0.01 * ((t * 7 + i) % 32)};
        const auto prediction = cached.predict(history, future, 120.0);
        // The cached posterior must always be the one for *this* key.
        ASSERT_DOUBLE_EQ(prediction.mean_at(0), history.back());
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every request either hit the cache or went to the inner predictor.
  EXPECT_EQ(cached.hits() + cached.misses(),
            static_cast<std::size_t>(kThreads) * kCallsPerThread);
  // The inner predictor ran at most once per miss (double-insert races may
  // compute a value twice but never corrupt the counters past misses).
  EXPECT_LE(static_cast<std::size_t>(inner->calls.load()), cached.misses());
  EXPECT_LE(cached.size(), 16u);
}

TEST(CachingPredictorTest, WrapHelperSharesSemantics) {
  auto inner = std::make_shared<CountingPredictor>();
  const auto cached = with_cache(inner, 4);
  const std::vector<double> history = {0.5};
  (void)cached->predict(history, std::vector<double>{3.0}, 10.0);
  (void)cached->predict(history, std::vector<double>{3.0}, 10.0);
  EXPECT_EQ(inner->calls, 1);
}

}  // namespace
}  // namespace hyperdrive::curve
