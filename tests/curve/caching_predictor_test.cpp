#include "curve/caching_predictor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/cluster.hpp"
#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"
#include "workload/trace.hpp"

namespace hyperdrive::curve {
namespace {

/// A predictor that counts invocations and returns a deterministic flat
/// posterior derived from the request.
class CountingPredictor final : public CurvePredictor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "counting"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double /*horizon*/) const override {
    ++calls;
    std::vector<std::vector<double>> samples(
        4, std::vector<double>(future_epochs.size(), history.back()));
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(samples));
  }

  mutable int calls = 0;
};

TEST(CachingPredictorTest, ValidatesConstruction) {
  EXPECT_THROW(CachingPredictor(nullptr, 4), std::invalid_argument);
  EXPECT_THROW(CachingPredictor(std::make_shared<CountingPredictor>(), 0),
               std::invalid_argument);
}

TEST(CachingPredictorTest, RepeatedRequestsHitTheCache) {
  auto inner = std::make_shared<CountingPredictor>();
  CachingPredictor cached(inner, 8);
  const std::vector<double> history = {0.1, 0.2, 0.3};
  const std::vector<double> future = {10.0, 20.0};

  const auto a = cached.predict(history, future, 120.0);
  const auto b = cached.predict(history, future, 120.0);
  EXPECT_EQ(inner->calls, 1);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(a.mean_at(0), b.mean_at(0));
}

TEST(CachingPredictorTest, DifferentRequestsMiss) {
  auto inner = std::make_shared<CountingPredictor>();
  CachingPredictor cached(inner, 8);
  const std::vector<double> history = {0.1, 0.2, 0.3};
  (void)cached.predict(history, std::vector<double>{10.0}, 120.0);
  (void)cached.predict(history, std::vector<double>{11.0}, 120.0);  // future differs
  (void)cached.predict(history, std::vector<double>{10.0}, 100.0);  // horizon differs
  (void)cached.predict(std::vector<double>{0.1, 0.2}, std::vector<double>{10.0},
                       120.0);  // history differs
  EXPECT_EQ(inner->calls, 4);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST(CachingPredictorTest, LruEvictsOldestEntry) {
  auto inner = std::make_shared<CountingPredictor>();
  CachingPredictor cached(inner, 2);
  const std::vector<double> h1 = {0.1}, h2 = {0.2}, h3 = {0.3};
  const std::vector<double> future = {5.0};
  (void)cached.predict(h1, future, 120.0);  // miss (h1 cached)
  (void)cached.predict(h2, future, 120.0);  // miss (h2 cached)
  (void)cached.predict(h1, future, 120.0);  // hit, promotes h1
  (void)cached.predict(h3, future, 120.0);  // miss, evicts h2 (LRU)
  (void)cached.predict(h1, future, 120.0);  // hit
  (void)cached.predict(h2, future, 120.0);  // miss (was evicted)
  EXPECT_EQ(inner->calls, 4);
  EXPECT_EQ(cached.hits(), 2u);
  EXPECT_EQ(cached.size(), 2u);
}

/// Thread-safe variant of CountingPredictor for the concurrency hammer.
class AtomicCountingPredictor final : public CurvePredictor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "atomic-counting"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double /*horizon*/) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::vector<double>> samples(
        4, std::vector<double>(future_epochs.size(), history.back()));
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(samples));
  }

  mutable std::atomic<int> calls{0};
};

// N threads hammer one shared instance with overlapping keys. Run under
// TSan in CI (the sweep layer shares a CachingPredictor across worker
// threads whenever one PolicySpec is reused, so this must be data-race
// free, not just crash-free).
TEST(CachingPredictorTest, ConcurrentHammerStaysConsistent) {
  auto inner = std::make_shared<AtomicCountingPredictor>();
  CachingPredictor cached(inner, 16);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 200;
  const std::vector<double> future = {5.0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cached, &future, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        // 32 distinct keys against a 16-entry cache: constant hit/miss/evict
        // churn from every thread.
        const std::vector<double> history = {0.1 + 0.01 * ((t * 7 + i) % 32)};
        const auto prediction = cached.predict(history, future, 120.0);
        // The cached posterior must always be the one for *this* key.
        ASSERT_DOUBLE_EQ(prediction.mean_at(0), history.back());
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every request either hit the cache or went to the inner predictor.
  EXPECT_EQ(cached.hits() + cached.misses(),
            static_cast<std::size_t>(kThreads) * kCallsPerThread);
  // The inner predictor ran at most once per miss (double-insert races may
  // compute a value twice but never corrupt the counters past misses).
  EXPECT_LE(static_cast<std::size_t>(inner->calls.load()), cached.misses());
  EXPECT_LE(cached.size(), 16u);
}

TEST(CachingPredictorTest, WrapHelperSharesSemantics) {
  auto inner = std::make_shared<CountingPredictor>();
  const auto cached = with_cache(inner, 4);
  const std::vector<double> history = {0.5};
  (void)cached->predict(history, std::vector<double>{3.0}, 10.0);
  (void)cached->predict(history, std::vector<double>{3.0}, 10.0);
  EXPECT_EQ(inner->calls, 1);
}

// ---------------------------------------------------------------------------
// Warm-start mode (CachingOptions::warm_start, DESIGN.md §11)
// ---------------------------------------------------------------------------

/// A warm-startable predictor that records whether (and from which prefix)
/// each fit was seeded. Exported warm states are tagged with the history
/// length they were fitted on, so tests can assert exactly which stored
/// posterior seeded a later fit.
class RecordingWarmPredictor final : public CurvePredictor, public WarmStartPredictor {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "recording-warm"; }

  [[nodiscard]] CurvePrediction predict(std::span<const double> history,
                                        std::span<const double> future_epochs,
                                        double horizon) const override {
    return predict_warm(history, future_epochs, horizon, nullptr, nullptr);
  }

  [[nodiscard]] CurvePrediction predict_warm(std::span<const double> history,
                                             std::span<const double> future_epochs,
                                             double /*horizon*/,
                                             const WarmPosterior* warm,
                                             WarmPosterior* out) const override {
    ++fits;
    seeded_from.push_back(warm != nullptr && !warm->empty()
                              ? static_cast<long>(warm->walkers.front())
                              : -1L);
    if (out != nullptr) {
      out->dim = 2;
      out->walkers = {static_cast<double>(history.size()), 0.0};
    }
    std::vector<std::vector<double>> samples(
        4, std::vector<double>(future_epochs.size(), history.back()));
    return CurvePrediction(std::vector<double>(future_epochs.begin(), future_epochs.end()),
                           std::move(samples));
  }

  mutable int fits = 0;
  /// Per fit: history length of the seeding posterior, or -1 for cold.
  mutable std::vector<long> seeded_from;
};

TEST(WarmStartTest, GrownPrefixIsSeededFromStoredPosterior) {
  auto inner = std::make_shared<RecordingWarmPredictor>();
  CachingOptions options;
  options.warm_start = true;
  CachingPredictor cached(inner, options);
  const std::vector<double> future = {50.0};

  const std::vector<double> h3 = {0.1, 0.2, 0.3};
  std::vector<double> h5 = h3;
  h5.insert(h5.end(), {0.35, 0.4});

  (void)cached.predict(h3, future, 120.0);  // cold: nothing stored yet
  (void)cached.predict(h5, future, 120.0);  // grown prefix of the same curve
  ASSERT_EQ(inner->seeded_from.size(), 2u);
  EXPECT_EQ(inner->seeded_from[0], -1);  // cold
  EXPECT_EQ(inner->seeded_from[1], 3);   // seeded from the 3-epoch fit
  EXPECT_EQ(cached.warm_hits(), 1u);
  EXPECT_EQ(cached.warm_size(), 2u);  // both fits exported their state
}

TEST(WarmStartTest, LongestStoredPrefixWins) {
  auto inner = std::make_shared<RecordingWarmPredictor>();
  CachingOptions options;
  options.warm_start = true;
  CachingPredictor cached(inner, options);
  const std::vector<double> future = {50.0};

  std::vector<double> history = {0.1, 0.2};
  (void)cached.predict(history, future, 120.0);
  history.insert(history.end(), {0.3, 0.4});
  (void)cached.predict(history, future, 120.0);
  history.insert(history.end(), {0.5, 0.6});
  (void)cached.predict(history, future, 120.0);
  ASSERT_EQ(inner->seeded_from.size(), 3u);
  EXPECT_EQ(inner->seeded_from[2], 4);  // the 4-epoch state, not the 2-epoch one
}

TEST(WarmStartTest, OnByDefaultAndColdForNonPrefixHistories) {
  auto inner = std::make_shared<RecordingWarmPredictor>();
  // Default options (including the legacy capacity-only constructor): warm
  // seeding engages for a warm-startable inner — the 30-seed property test
  // below is what licenses this default.
  CachingPredictor defaulted(inner, 8);
  const std::vector<double> future = {50.0};
  (void)defaulted.predict(std::vector<double>{0.1, 0.2}, future, 120.0);
  (void)defaulted.predict(std::vector<double>{0.1, 0.2, 0.3}, future, 120.0);
  EXPECT_EQ(inner->seeded_from, (std::vector<long>{-1, 2}));
  EXPECT_EQ(defaulted.warm_hits(), 1u);

  // Opting out still yields a plain cache.
  inner->seeded_from.clear();
  CachingOptions off;
  off.warm_start = false;
  CachingPredictor plain(inner, off);
  (void)plain.predict(std::vector<double>{0.1, 0.2}, future, 120.0);
  (void)plain.predict(std::vector<double>{0.1, 0.2, 0.3}, future, 120.0);
  EXPECT_EQ(inner->seeded_from, (std::vector<long>{-1, -1}));
  EXPECT_EQ(plain.warm_hits(), 0u);
  EXPECT_EQ(plain.warm_size(), 0u);

  // Warm mode, but a history that is not a grown prefix of anything stored
  // (different first epoch) must fit cold.
  inner->seeded_from.clear();
  CachingOptions options;
  options.warm_start = true;
  CachingPredictor cached(inner, options);
  (void)cached.predict(std::vector<double>{0.1, 0.2}, future, 120.0);
  (void)cached.predict(std::vector<double>{0.15, 0.2, 0.3}, future, 120.0);
  EXPECT_EQ(inner->seeded_from, (std::vector<long>{-1, -1}));
}

TEST(WarmStartTest, PlainPredictorUnderWarmModeIsSafe) {
  // warm_start against a non-warm-startable inner silently degrades to a
  // plain cache (dynamic_cast gate).
  auto inner = std::make_shared<CountingPredictor>();
  CachingOptions options;
  options.warm_start = true;
  CachingPredictor cached(inner, options);
  const std::vector<double> future = {5.0};
  (void)cached.predict(std::vector<double>{0.1}, future, 120.0);
  (void)cached.predict(std::vector<double>{0.1, 0.2}, future, 120.0);
  EXPECT_EQ(inner->calls, 2);
  EXPECT_EQ(cached.warm_hits(), 0u);
  EXPECT_EQ(cached.warm_size(), 0u);
}

// ---------------------------------------------------------------------------
// The config-default gate (ISSUE 6): across 30 seeds, warm-posterior reuse
// must yield the same kill/keep decisions and a byte-identical golden event
// log as cold start on the fig07 CIFAR workload. Warm posteriors are NOT
// bit-identical to cold ones (different walker initialization); the property
// is that POP's *decisions* — and hence the deterministic cluster trace —
// do not change.
// ---------------------------------------------------------------------------

struct Fig07Cell {
  std::vector<std::string> event_log;
  std::vector<std::size_t> epochs_completed;  ///< per job: the kill/keep outcome
  std::size_t warm_hits = 0;
};

Fig07Cell run_fig07_cell(std::uint64_t seed, bool warm_start) {
  // Full 120-epoch fig07 curves, curated the way the warm-start contract
  // demands (DESIGN.md §11): the property "warm and cold chains take the
  // same kill/keep decisions" holds for decisive configs — a clear winner
  // (reaches the target early) plus clear losers (flat well below it). A
  // mid-quality config whose P(reach) hovers at the prune threshold gets a
  // fresh coin flip at every boundary from either chain's sampling noise;
  // such configs are exactly what fig07's suitable_trace curation avoids.
  workload::CifarWorkloadModel model;
  const auto pool = workload::generate_trace(model, 120, /*seed=*/9000 + seed);
  workload::Trace trace = pool;
  trace.jobs.clear();
  for (const auto& job : pool.jobs) {  // one early winner
    const auto reached = job.curve.first_epoch_reaching(pool.target_performance);
    if (reached > 0 && reached <= 80) {
      trace.jobs.push_back(job);
      break;
    }
  }
  if (trace.jobs.empty()) {  // surfaces as a test failure via gtest
    throw std::runtime_error("pool seed has no early winner");
  }
  for (const auto& job : pool.jobs) {  // four clear losers
    if (trace.jobs.size() >= 5) break;
    if (job.curve.best_perf() <= 0.45) trace.jobs.push_back(job);
  }

  PredictorConfig config;
  config.model_names = {"pow3", "weibull", "janoschek"};
  // Enough samples that warm and cold chains agree on every threshold
  // decision: the gate property is empirical, and thin posteriors sit jobs
  // right on POP's prune threshold.
  config.mcmc.nwalkers = 32;
  config.mcmc.nsamples = 800;
  config.mcmc.burn_in = 200;
  config.mcmc.thin = 5;
  config.seed = 0xCAFE ^ seed;
  CachingOptions options;
  options.capacity = 64;
  options.warm_start = warm_start;
  auto cached = std::make_shared<CachingPredictor>(make_mcmc_predictor(config), options);

  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Pop;
  spec.pop.predictor = cached;
  spec.pop.tmax = util::SimTime::hours(48);
  // Decide every 20 epochs: enough history per decision that the posterior
  // is decisive for the curated winner/loser split above.
  spec.pop.boundary = 20;
  // The gate property is about kill/keep decisions. Opportunistic rotation
  // is a scheduling *preference* derived from promising-set membership,
  // which rounds S * p at 0.5 — a knife-edge any sampler's noise (warm or
  // cold vs a second cold run with another seed) can land either side of.
  // DESIGN.md §11 scopes the warm-start determinism contract accordingly.
  spec.pop.rotate_opportunistic = false;
  const auto policy = core::make_policy(spec);

  cluster::ClusterOptions copts;
  copts.machines = 2;
  copts.seed = seed;
  copts.record_event_log = true;
  cluster::HyperDriveCluster cluster(trace, copts);
  const auto result = cluster.run(*policy);

  Fig07Cell out;
  out.event_log = cluster.event_log();
  for (const auto& js : result.job_stats) out.epochs_completed.push_back(js.epochs_completed);
  out.warm_hits = cached->warm_hits();
  return out;
}

TEST(WarmStartPropertyTest, SameDecisionsAndGoldenTraceAcross30Seeds) {
  std::size_t total_warm_hits = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto cold = run_fig07_cell(seed, /*warm_start=*/false);
    const auto warm = run_fig07_cell(seed, /*warm_start=*/true);
    ASSERT_FALSE(cold.event_log.empty()) << "seed " << seed;
    EXPECT_EQ(cold.epochs_completed, warm.epochs_completed) << "seed " << seed;
    const bool logs_equal = cold.event_log == warm.event_log;
    EXPECT_TRUE(logs_equal) << "seed " << seed;
    if (!logs_equal) {  // surface the first divergence, not a truncated dump
      const std::size_t n = std::min(cold.event_log.size(), warm.event_log.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (cold.event_log[i] != warm.event_log[i]) {
          ADD_FAILURE() << "seed " << seed << " line " << i << ":\n  cold: "
                        << cold.event_log[i] << "\n  warm: " << warm.event_log[i];
          break;
        }
      }
    }
    EXPECT_EQ(cold.warm_hits, 0u) << "seed " << seed;
    total_warm_hits += warm.warm_hits;
  }
  // The property is vacuous unless warm seeding actually engaged.
  EXPECT_GT(total_warm_hits, 0u);
}

}  // namespace
}  // namespace hyperdrive::curve
