#include "curve/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hyperdrive::curve {
namespace {

/// Ground truth: a Weibull-style curve rising from 0.1 toward 0.8.
double truth(double x) { return 0.8 - 0.7 * std::exp(-std::pow(0.05 * x, 1.2)); }

std::vector<double> noisy_prefix(std::size_t n, double sigma, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = truth(static_cast<double>(i + 1)) + rng.normal(0.0, sigma);
  }
  return ys;
}

PredictorConfig small_config() {
  PredictorConfig config;
  // Keep the MCMC variant fast for tests: a 3-family ensemble with few
  // walkers. Production uses the full 11 families and 100x700.
  config.model_names = {"pow3", "weibull", "janoschek"};
  config.mcmc.nwalkers = 40;
  config.mcmc.nsamples = 250;
  config.mcmc.burn_in = 100;
  config.mcmc.thin = 5;
  config.lsq_samples = 150;
  config.seed = 0xabc;
  return config;
}

enum class Kind { Mcmc, Lsq, LastValue };

std::unique_ptr<CurvePredictor> make(Kind kind) {
  switch (kind) {
    case Kind::Mcmc: return make_mcmc_predictor(small_config());
    case Kind::Lsq: return make_lsq_predictor(small_config());
    case Kind::LastValue: return make_last_value_predictor(small_config());
  }
  return nullptr;
}

class PredictorContractTest : public ::testing::TestWithParam<Kind> {};

TEST_P(PredictorContractTest, ValidatesRequests) {
  const auto p = make(GetParam());
  const auto history = noisy_prefix(10, 0.01, 1);
  const std::vector<double> future = {20.0};
  EXPECT_THROW((void)p->predict({}, future, 120.0), std::invalid_argument);
  EXPECT_THROW((void)p->predict(history, {}, 120.0), std::invalid_argument);
  EXPECT_THROW((void)p->predict(history, std::vector<double>{5.0}, 120.0), std::invalid_argument);
  EXPECT_THROW((void)p->predict(history, future, 0.0), std::invalid_argument);
}

TEST_P(PredictorContractTest, DeterministicPerHistory) {
  const auto p = make(GetParam());
  const auto history = noisy_prefix(12, 0.01, 2);
  const std::vector<double> future = {20.0, 40.0};
  const auto a = p->predict(history, future, 120.0);
  const auto b = p->predict(history, future, 120.0);
  ASSERT_EQ(a.num_samples(), b.num_samples());
  for (std::size_t s = 0; s < a.samples().size(); ++s) {
    EXPECT_EQ(a.samples()[s], b.samples()[s]);
  }
}

TEST_P(PredictorContractTest, ProbAtLeastIsMonotoneInThreshold) {
  const auto p = make(GetParam());
  const auto history = noisy_prefix(15, 0.01, 3);
  const std::vector<double> future = {60.0};
  const auto pred = p->predict(history, future, 120.0);
  double prev = 1.0;
  for (double y = 0.0; y <= 1.0; y += 0.05) {
    const double prob = pred.prob_at_least(0, y);
    EXPECT_LE(prob, prev + 1e-12);
    prev = prob;
  }
}

TEST_P(PredictorContractTest, ProbReachedByIsMonotoneInEpoch) {
  const auto p = make(GetParam());
  const auto history = noisy_prefix(15, 0.01, 4);
  std::vector<double> future;
  for (double e = 16.0; e <= 116.0; e += 10.0) future.push_back(e);
  const auto pred = p->predict(history, future, 120.0);
  double prev = 0.0;
  for (std::size_t i = 0; i < future.size(); ++i) {
    const double prob = pred.prob_reached_by(i, 0.6);
    EXPECT_GE(prob, prev - 1e-12);
    prev = prob;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PredictorContractTest,
                         ::testing::Values(Kind::Mcmc, Kind::Lsq, Kind::LastValue),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::Mcmc: return "mcmc";
                             case Kind::Lsq: return "lsq";
                             case Kind::LastValue: return "last_value";
                           }
                           return "?";
                         });

class ExtrapolationTest : public ::testing::TestWithParam<Kind> {};

TEST_P(ExtrapolationTest, MeanTracksGroundTruthLoosely) {
  const auto p = make(GetParam());
  const auto history = noisy_prefix(40, 0.008, 5);
  const std::vector<double> future = {80.0, 120.0};
  const auto pred = p->predict(history, future, 120.0);
  ASSERT_FALSE(pred.empty());
  EXPECT_NEAR(pred.mean_at(0), truth(80.0), 0.12);
  EXPECT_NEAR(pred.mean_at(1), truth(120.0), 0.15);
}

TEST_P(ExtrapolationTest, HighTargetHasLowProbability) {
  const auto p = make(GetParam());
  const auto history = noisy_prefix(40, 0.008, 6);
  const auto pred = p->predict(history, std::vector<double>{120.0}, 120.0);
  // Truth tops out near 0.78; reaching 0.95 should look very unlikely.
  EXPECT_LT(pred.prob_at_least(0, 0.95), 0.2);
}

INSTANTIATE_TEST_SUITE_P(CurveFitKinds, ExtrapolationTest,
                         ::testing::Values(Kind::Mcmc, Kind::Lsq),
                         [](const auto& info) {
                           return info.param == Kind::Mcmc ? "mcmc" : "lsq";
                         });

TEST(McmcPredictorTest, UncertaintyGrowsWithExtrapolationDistance) {
  const auto p = make_mcmc_predictor(small_config());
  const auto history = noisy_prefix(10, 0.01, 7);
  const auto pred = p->predict(history, std::vector<double>{12.0, 60.0, 120.0}, 120.0);
  ASSERT_FALSE(pred.empty());
  // PA (posterior stddev) at one epoch ahead should be <= far extrapolation.
  EXPECT_LE(pred.stddev_at(0), pred.stddev_at(2) + 0.02);
}

TEST(McmcPredictorTest, ConfidenceSharpensWithMoreHistory) {
  const auto p = make_mcmc_predictor(small_config());
  const auto short_pred = p->predict(noisy_prefix(8, 0.01, 8), std::vector<double>{120.0}, 120.0);
  const auto long_pred = p->predict(noisy_prefix(60, 0.01, 8), std::vector<double>{120.0}, 120.0);
  ASSERT_FALSE(short_pred.empty());
  ASSERT_FALSE(long_pred.empty());
  EXPECT_LT(long_pred.stddev_at(0), short_pred.stddev_at(0) + 0.02);
}

TEST(LastValuePredictorTest, ExtrapolatesFlat) {
  const auto p = make_last_value_predictor(small_config());
  const std::vector<double> history = {0.2, 0.3, 0.4, 0.5};
  const auto pred = p->predict(history, std::vector<double>{10.0, 50.0}, 120.0);
  // Means at both horizons should equal the last value (no trend).
  EXPECT_NEAR(pred.mean_at(0), 0.5, 0.05);
  EXPECT_NEAR(pred.mean_at(0), pred.mean_at(1), 1e-9);
}

TEST(CurvePredictionTest, RejectsRaggedSamples) {
  EXPECT_THROW(CurvePrediction({1.0, 2.0}, {{0.1}}), std::invalid_argument);
}

TEST(CurvePredictionTest, EmptyPredictionIsSafe) {
  CurvePrediction pred({10.0}, {});
  EXPECT_TRUE(pred.empty());
  EXPECT_DOUBLE_EQ(pred.mean_at(0), 0.0);
  EXPECT_DOUBLE_EQ(pred.prob_at_least(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(pred.prob_reached_by(0, 0.5), 0.0);
}

TEST(CurvePredictionTest, StatisticsMatchHandComputation) {
  CurvePrediction pred({10.0, 20.0}, {{0.2, 0.6}, {0.4, 0.2}, {0.6, 0.8}});
  EXPECT_NEAR(pred.mean_at(0), 0.4, 1e-12);
  EXPECT_NEAR(pred.prob_at_least(0, 0.4), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pred.prob_at_least(1, 0.5), 2.0 / 3.0, 1e-12);
  // reached-by uses the running max: curve 2 reaches 0.4 at idx 0 and stays.
  EXPECT_NEAR(pred.prob_reached_by(1, 0.4), 1.0, 1e-12);
  EXPECT_NEAR(pred.prob_reached_by(0, 0.5), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace hyperdrive::curve
