#include "curve/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hyperdrive::curve {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::vector<double> increasing_prefix() {
  return {0.15, 0.25, 0.33, 0.40, 0.46, 0.50, 0.54, 0.57, 0.59, 0.61};
}

CurveEnsemble make_small_ensemble() {
  return CurveEnsemble(make_models({"pow3", "weibull"}), /*horizon=*/120.0);
}

TEST(CurveEnsembleTest, DimensionPacksParamsWeightsSigma) {
  const auto e = make_small_ensemble();
  // pow3 has 3 params, weibull 4, + 2 weights + log_sigma.
  EXPECT_EQ(e.dim(), 3u + 4u + 2u + 1u);
  EXPECT_EQ(e.param_offset(0), 0u);
  EXPECT_EQ(e.param_offset(1), 3u);
  EXPECT_EQ(e.weight_offset(), 7u);
  EXPECT_EQ(e.sigma_offset(), 9u);
}

TEST(CurveEnsembleTest, ConstructionValidation) {
  EXPECT_THROW(CurveEnsemble({}, 120.0), std::invalid_argument);
  EXPECT_THROW(CurveEnsemble(make_models({"pow3"}), 0.5), std::invalid_argument);
}

TEST(CurveEnsembleTest, EvalIsNormalizedWeightedMix) {
  const auto e = make_small_ensemble();
  const auto models = make_models({"pow3", "weibull"});
  std::vector<double> theta(e.dim(), 0.0);
  const std::vector<double> pow3 = {0.8, 0.6, 0.5};
  const std::vector<double> weibull = {0.7, 0.1, 0.05, 1.0};
  std::copy(pow3.begin(), pow3.end(), theta.begin());
  std::copy(weibull.begin(), weibull.end(), theta.begin() + 3);
  theta[e.weight_offset()] = 0.75;
  theta[e.weight_offset() + 1] = 0.25;
  theta[e.sigma_offset()] = std::log(0.05);

  const double x = 20.0;
  const double expected =
      0.75 * models[0]->eval(x, pow3) + 0.25 * models[1]->eval(x, weibull);
  EXPECT_NEAR(e.eval(x, theta), expected, 1e-12);
}

TEST(CurveEnsembleTest, ZeroWeightModelIgnored) {
  const auto e = make_small_ensemble();
  std::vector<double> theta(e.dim(), 0.0);
  // weibull params deliberately garbage; its weight is zero.
  const std::vector<double> pow3 = {0.8, 0.6, 0.5};
  std::copy(pow3.begin(), pow3.end(), theta.begin());
  theta[e.weight_offset()] = 1.0;
  theta[e.weight_offset() + 1] = 0.0;
  theta[e.sigma_offset()] = std::log(0.05);
  const auto models = make_models({"pow3"});
  EXPECT_NEAR(e.eval(10.0, theta), models[0]->eval(10.0, pow3), 1e-12);
}

TEST(CurveEnsembleTest, AllZeroWeightsGiveNan) {
  const auto e = make_small_ensemble();
  std::vector<double> theta(e.dim(), 0.0);
  EXPECT_TRUE(std::isnan(e.eval(10.0, theta)));
}

class EnsemblePriorTest : public ::testing::Test {
 protected:
  CurveEnsemble e_ = make_small_ensemble();
  std::vector<double> ys_ = increasing_prefix();
  std::vector<double> valid_theta_ = e_.initial_theta(ys_);
};

TEST_F(EnsemblePriorTest, InitialThetaIsInsideSupport) {
  EXPECT_EQ(e_.log_prior(valid_theta_, ys_), 0.0);
  EXPECT_TRUE(std::isfinite(e_.log_posterior(valid_theta_, ys_)));
}

TEST_F(EnsemblePriorTest, RejectsWrongDimension) {
  std::vector<double> theta(valid_theta_.begin(), valid_theta_.end() - 1);
  EXPECT_EQ(e_.log_prior(theta, ys_), kNegInf);
}

TEST_F(EnsemblePriorTest, RejectsOutOfBoundsModelParam) {
  auto theta = valid_theta_;
  theta[0] = 100.0;  // far outside pow3's c bound
  EXPECT_EQ(e_.log_prior(theta, ys_), kNegInf);
}

TEST_F(EnsemblePriorTest, RejectsNegativeWeight) {
  auto theta = valid_theta_;
  theta[e_.weight_offset()] = -0.1;
  EXPECT_EQ(e_.log_prior(theta, ys_), kNegInf);
}

TEST_F(EnsemblePriorTest, RejectsAllZeroWeights) {
  auto theta = valid_theta_;
  theta[e_.weight_offset()] = 0.0;
  theta[e_.weight_offset() + 1] = 0.0;
  EXPECT_EQ(e_.log_prior(theta, ys_), kNegInf);
}

TEST_F(EnsemblePriorTest, RejectsSigmaOutsideRange) {
  auto theta = valid_theta_;
  theta[e_.sigma_offset()] = std::log(10.0);
  EXPECT_EQ(e_.log_prior(theta, ys_), kNegInf);
  theta[e_.sigma_offset()] = std::log(1e-9);
  EXPECT_EQ(e_.log_prior(theta, ys_), kNegInf);
}

TEST_F(EnsemblePriorTest, LikelihoodMatchesGaussianByHand) {
  // Single-model ensemble with known parameters: check the Gaussian formula.
  CurveEnsemble e(make_models({"pow3"}), 120.0);
  const std::vector<double> ys = {0.2, 0.3};
  std::vector<double> theta(e.dim());
  theta[0] = 0.5;  // c
  theta[1] = 0.3;  // a
  theta[2] = 1.0;  // alpha
  theta[e.weight_offset()] = 1.0;
  const double sigma = 0.1;
  theta[e.sigma_offset()] = std::log(sigma);

  const auto models = make_models({"pow3"});
  double expected = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double f =
        models[0]->eval(static_cast<double>(i + 1), std::vector<double>{0.5, 0.3, 1.0});
    const double r = ys[i] - f;
    expected += -0.5 * std::log(2.0 * M_PI * sigma * sigma) - 0.5 * r * r / (sigma * sigma);
  }
  EXPECT_NEAR(e.log_likelihood(theta, ys), expected, 1e-9);
}

TEST_F(EnsemblePriorTest, NonCollapsingPriorRejectsCrashPredictions) {
  // Force the ensemble to predict far below the last observation.
  CurveEnsemble e(make_models({"ilog2"}), 120.0);
  const std::vector<double> ys = {0.5, 0.6, 0.7};
  std::vector<double> theta(e.dim());
  theta[0] = 0.2;  // c: asymptote way below the last observation (0.7)
  theta[1] = 0.0;  // a
  theta[e.weight_offset()] = 1.0;
  theta[e.sigma_offset()] = std::log(0.05);
  EXPECT_EQ(e.log_prior(theta, ys), kNegInf);
}

TEST_F(EnsemblePriorTest, JitterStaysInSupport) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto jittered = e_.jitter(valid_theta_, rng);
    // Components must respect their boxes (curve-shape priors may still
    // reject, but the box constraints are guaranteed).
    for (std::size_t k = 0; k < e_.num_models(); ++k) {
      const auto& box = e_.model(k).bounds();
      for (std::size_t d = 0; d < box.size(); ++d) {
        const double v = jittered[e_.param_offset(k) + d];
        EXPECT_GE(v, box[d].lo);
        EXPECT_LE(v, box[d].hi);
      }
    }
    EXPECT_GE(jittered[e_.sigma_offset()], e_.prior().log_sigma_lo);
    EXPECT_LE(jittered[e_.sigma_offset()], e_.prior().log_sigma_hi);
  }
}

TEST_F(EnsemblePriorTest, InitialThetaFitsPrefixWell) {
  // The least-squares initialization should track the observed prefix.
  for (std::size_t i = 0; i < ys_.size(); ++i) {
    const double f = e_.eval(static_cast<double>(i + 1), valid_theta_);
    EXPECT_NEAR(f, ys_[i], 0.12);
  }
}

}  // namespace
}  // namespace hyperdrive::curve
