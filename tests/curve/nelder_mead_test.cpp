#include "curve/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hyperdrive::curve {
namespace {

TEST(NelderMeadTest, MinimizesShiftedQuadratic) {
  auto fn = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  const auto r = nelder_mead(fn, {0.0, 0.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-3);
  EXPECT_NEAR(r.x[1], -1.0, 1e-3);
  EXPECT_NEAR(r.fx, 0.0, 1e-6);
}

TEST(NelderMeadTest, HandlesRosenbrockReasonably) {
  auto fn = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 2000;
  const auto r = nelder_mead(fn, {-1.0, 1.0}, opts);
  EXPECT_LT(r.fx, 1e-2);
}

TEST(NelderMeadTest, OneDimensional) {
  auto fn = [](const std::vector<double>& x) { return std::cosh(x[0] - 2.0); };
  const auto r = nelder_mead(fn, {10.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-2);
}

TEST(NelderMeadTest, TreatsNonFiniteAsInfinity) {
  // Objective undefined for x < 0; optimum at x = 1.
  auto fn = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::nan("");
    return (std::sqrt(x[0]) - 1.0) * (std::sqrt(x[0]) - 1.0);
  };
  const auto r = nelder_mead(fn, {4.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-2);
}

TEST(NelderMeadTest, EmptyInputReturnsImmediately) {
  auto fn = [](const std::vector<double>&) { return 5.0; };
  const auto r = nelder_mead(fn, {});
  EXPECT_TRUE(r.x.empty());
  EXPECT_DOUBLE_EQ(r.fx, 5.0);
}

TEST(NelderMeadTest, RespectsIterationBudget) {
  auto fn = [](const std::vector<double>& x) { return x[0] * x[0]; };
  NelderMeadOptions opts;
  opts.max_iterations = 5;
  const auto r = nelder_mead(fn, {100.0}, opts);
  EXPECT_LE(r.iterations, 5u);
}

TEST(NelderMeadTest, StartingAtOptimumStaysThere) {
  auto fn = [](const std::vector<double>& x) { return x[0] * x[0] + x[1] * x[1]; };
  const auto r = nelder_mead(fn, {0.0, 0.0});
  EXPECT_NEAR(r.fx, 0.0, 1e-9);
}

TEST(NelderMeadTest, NeverReturnsWorseThanStart) {
  auto fn = [](const std::vector<double>& x) {
    return std::sin(x[0] * 5.0) + 0.1 * x[0] * x[0];
  };
  const std::vector<double> x0 = {1.3};
  const auto r = nelder_mead(fn, x0);
  EXPECT_LE(r.fx, fn(x0) + 1e-12);
}

}  // namespace
}  // namespace hyperdrive::curve
