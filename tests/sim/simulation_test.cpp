#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hyperdrive::sim {
namespace {

using util::SimTime;

TEST(SimulationTest, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulationTest, SameTimePriorityThenInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  const auto t = SimTime::seconds(1);
  sim.schedule_at(t, [&] { order.push_back(1); }, /*priority=*/5);
  sim.schedule_at(t, [&] { order.push_back(2); }, /*priority=*/0);
  sim.schedule_at(t, [&] { order.push_back(3); }, /*priority=*/0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(SimulationTest, NowAdvancesWithEvents) {
  Simulation sim;
  SimTime seen;
  sim.schedule_at(SimTime::seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::seconds(5));
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  SimTime inner;
  sim.schedule_at(SimTime::seconds(10), [&] {
    sim.schedule_after(SimTime::seconds(5), [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, SimTime::seconds(15));
}

TEST(SimulationTest, PastTimesClampToNow) {
  Simulation sim;
  SimTime fired;
  sim.schedule_at(SimTime::seconds(10), [&] {
    sim.schedule_at(SimTime::seconds(1), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime::seconds(10));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const auto handle = sim.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulationTest, CancelFromWithinEvent) {
  Simulation sim;
  bool fired = false;
  const auto victim = sim.schedule_at(SimTime::seconds(2), [&] { fired = true; });
  sim.schedule_at(SimTime::seconds(1), [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime::seconds(1), [&] { fired.push_back(1); });
  sim.schedule_at(SimTime::seconds(2), [&] { fired.push_back(2); });
  sim.schedule_at(SimTime::seconds(3), [&] { fired.push_back(3); });
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(SimulationTest, RunUntilAdvancesClockWhenQueueDrains) {
  Simulation sim;
  sim.schedule_at(SimTime::seconds(1), [] {});
  sim.run_until(SimTime::seconds(100));
  EXPECT_EQ(sim.now(), SimTime::seconds(100));
}

TEST(SimulationTest, StopHaltsProcessing) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime::seconds(1), [&] {
    fired.push_back(1);
    sim.stop();
  });
  sim.schedule_at(SimTime::seconds(2), [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.events_pending(), 1u);
}

TEST(SimulationTest, CascadingEventsAllRun) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.schedule_after(SimTime::seconds(1), chain);
  };
  sim.schedule_at(SimTime::seconds(0), chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), SimTime::seconds(99));
}

}  // namespace
}  // namespace hyperdrive::sim
