#include "sim/trace_replay.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/policies/default_policy.hpp"

namespace hyperdrive::sim {
namespace {

using core::JobDecision;
using core::JobEvent;
using core::JobStatus;
using util::SimTime;

/// Handcrafted trace: every job has a constant 60 s epoch and a linear ramp
/// to `final` over `epochs` epochs.
workload::Trace tiny_trace(const std::vector<double>& finals, std::size_t epochs,
                           double target = 0.9) {
  workload::Trace trace;
  trace.workload_name = "tiny";
  trace.target_performance = target;
  trace.kill_threshold = 0.0;
  trace.evaluation_boundary = 2;
  trace.max_epochs = epochs;
  for (std::size_t i = 0; i < finals.size(); ++i) {
    workload::TraceJob job;
    job.job_id = i + 1;
    job.curve.epoch_duration = SimTime::seconds(60);
    for (std::size_t e = 1; e <= epochs; ++e) {
      job.curve.perf.push_back(finals[i] * static_cast<double>(e) /
                               static_cast<double>(epochs));
    }
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

TEST(TraceReplayTest, DefaultPolicyRunsEverythingToCompletion) {
  const auto trace = tiny_trace({0.5, 0.6, 0.4}, 10, /*target=*/0.99);
  core::DefaultPolicy policy;
  ReplayOptions options;
  options.machines = 2;
  const auto result = replay_experiment(trace, policy, options);

  EXPECT_FALSE(result.reached_target);
  EXPECT_EQ(result.jobs_started, 3u);
  EXPECT_EQ(result.terminations, 0u);
  EXPECT_EQ(result.suspends, 0u);
  for (const auto& js : result.job_stats) {
    EXPECT_EQ(js.final_status, JobStatus::Completed);
    EXPECT_EQ(js.epochs_completed, 10u);
    EXPECT_EQ(js.execution_time, SimTime::seconds(600));
  }
  // 3 jobs x 10 epochs x 60 s of machine time.
  EXPECT_EQ(result.total_machine_time, SimTime::seconds(1800));
  // 2 machines: jobs 1+2 run [0, 600); job 3 runs [600, 1200).
  EXPECT_EQ(result.total_time, SimTime::seconds(1200));
}

TEST(TraceReplayTest, StopsExactlyWhenTargetReached) {
  // Job 1 ramps to 1.0 over 10 epochs: hits 0.9 at epoch 9 = 540 s.
  const auto trace = tiny_trace({1.0}, 10, 0.9);
  core::DefaultPolicy policy;
  ReplayOptions options;
  options.machines = 1;
  const auto result = replay_experiment(trace, policy, options);
  EXPECT_TRUE(result.reached_target);
  EXPECT_EQ(result.time_to_target, SimTime::seconds(540));
  EXPECT_EQ(result.winning_job, 1u);
  EXPECT_DOUBLE_EQ(result.best_perf, 0.9);
}

TEST(TraceReplayTest, StopOnTargetFalseRunsToCompletion) {
  const auto trace = tiny_trace({1.0}, 10, 0.9);
  core::DefaultPolicy policy;
  ReplayOptions options;
  options.machines = 1;
  options.stop_on_target = false;
  const auto result = replay_experiment(trace, policy, options);
  EXPECT_FALSE(result.reached_target);
  EXPECT_DOUBLE_EQ(result.best_perf, 1.0);
  EXPECT_EQ(result.total_time, SimTime::seconds(600));
}

TEST(TraceReplayTest, MaxExperimentTimeCapsTheRun) {
  const auto trace = tiny_trace({0.5, 0.5, 0.5, 0.5}, 100, 0.99);
  core::DefaultPolicy policy;
  ReplayOptions options;
  options.machines = 1;
  options.max_experiment_time = SimTime::seconds(250);
  const auto result = replay_experiment(trace, policy, options);
  EXPECT_FALSE(result.reached_target);
  EXPECT_LE(result.total_time, SimTime::seconds(250));
}

/// Policy that terminates every job at its first boundary.
class KillAllPolicy final : public core::DefaultPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "kill_all"; }
  JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
    if (event.epoch % ops.evaluation_boundary() == 0) return JobDecision::Terminate;
    return JobDecision::Continue;
  }
};

TEST(TraceReplayTest, TerminationFreesMachinesForLaterJobs) {
  const auto trace = tiny_trace({0.5, 0.5, 0.5, 0.5}, 10, 0.99);
  KillAllPolicy policy;
  ReplayOptions options;
  options.machines = 1;
  const auto result = replay_experiment(trace, policy, options);
  EXPECT_EQ(result.terminations, 4u);
  EXPECT_EQ(result.jobs_started, 4u);
  // Each job runs exactly 2 epochs (boundary) on the single machine.
  EXPECT_EQ(result.total_time, SimTime::seconds(4 * 2 * 60));
  for (const auto& js : result.job_stats) {
    EXPECT_EQ(js.final_status, JobStatus::Terminated);
    EXPECT_EQ(js.epochs_completed, 2u);
  }
}

/// Policy that suspends the running job at every boundary (barrier-like
/// epoch scheduling from §4.2).
class SuspendEveryBoundaryPolicy final : public core::DefaultPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "suspender"; }
  JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
    if (event.epoch % ops.evaluation_boundary() == 0) return JobDecision::Suspend;
    return JobDecision::Continue;
  }
};

TEST(TraceReplayTest, SuspendRotatesJobsRoundRobin) {
  const auto trace = tiny_trace({0.5, 0.5}, 4, 0.99);  // boundary = 2
  SuspendEveryBoundaryPolicy policy;
  ReplayOptions options;
  options.machines = 1;
  const auto result = replay_experiment(trace, policy, options);
  // Each job is suspended once mid-way (at epoch 2) and the final "suspend"
  // at epoch 4 completes it instead.
  EXPECT_EQ(result.suspends, 2u);
  for (const auto& js : result.job_stats) {
    EXPECT_EQ(js.final_status, JobStatus::Completed);
    EXPECT_EQ(js.epochs_completed, 4u);
    EXPECT_EQ(js.times_suspended, 1u);
  }
  // Total serialized work unchanged by rotation.
  EXPECT_EQ(result.total_time, SimTime::seconds(2 * 4 * 60));
}

/// Policy whose allocation prefers the labeled job.
class PriorityProbePolicy final : public core::DefaultPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "probe"; }
  void on_allocate(core::SchedulerOps& ops) override {
    if (!labeled_ && ops.now() == SimTime::zero()) {
      ops.label_job(3, 1.0);  // boost job 3 above FIFO order
      labeled_ = true;
    }
    core::DefaultPolicy::on_allocate(ops);
  }
  std::vector<core::JobId> started_order;
  JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
    if (event.epoch == 1 &&
        std::find(started_order.begin(), started_order.end(), event.job_id) ==
            started_order.end()) {
      started_order.push_back(event.job_id);
    }
    return core::DefaultPolicy::on_iteration_finish(ops, event);
  }

 private:
  bool labeled_ = false;
};

TEST(TraceReplayTest, LabelJobOrdersIdleQueueByPriority) {
  const auto trace = tiny_trace({0.5, 0.5, 0.5}, 2, 0.99);
  PriorityProbePolicy policy;
  ReplayOptions options;
  options.machines = 1;
  (void)replay_experiment(trace, policy, options);
  ASSERT_EQ(policy.started_order.size(), 3u);
  EXPECT_EQ(policy.started_order[0], 3u);  // labeled job first
  EXPECT_EQ(policy.started_order[1], 1u);  // then FIFO
  EXPECT_EQ(policy.started_order[2], 2u);
}

TEST(TraceReplayTest, SchedulerOpsExposesConsistentState) {
  const auto trace = tiny_trace({0.5, 0.6}, 4, 0.99);

  class InspectingPolicy final : public core::DefaultPolicy {
   public:
    JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
      EXPECT_EQ(ops.total_machines(), 2u);
      EXPECT_EQ(ops.max_epochs(), 4u);
      EXPECT_DOUBLE_EQ(ops.target_performance(), 0.99);
      EXPECT_EQ(ops.epochs_done(event.job_id), event.epoch);
      const auto& history = ops.perf_history(event.job_id);
      EXPECT_EQ(history.size(), event.epoch);
      EXPECT_DOUBLE_EQ(history.back(), event.perf);
      EXPECT_EQ(ops.avg_epoch_duration(event.job_id), SimTime::seconds(60));
      EXPECT_EQ(ops.job_status(event.job_id), JobStatus::Running);
      ++checks;
      return JobDecision::Continue;
    }
    int checks = 0;
  };

  InspectingPolicy policy;
  ReplayOptions options;
  options.machines = 2;
  (void)replay_experiment(trace, policy, options);
  EXPECT_EQ(policy.checks, 8);  // 2 jobs x 4 epochs
}

TEST(TraceReplayTest, ZeroMachinesRejected) {
  const auto trace = tiny_trace({0.5}, 2);
  ReplayOptions options;
  options.machines = 0;
  EXPECT_THROW(TraceReplaySimulator(trace, options), std::invalid_argument);
}

TEST(TraceReplayTest, ActiveJobsShrinkAsJobsFinish) {
  const auto trace = tiny_trace({0.5, 0.5}, 2, 0.99);
  class CountingPolicy final : public core::DefaultPolicy {
   public:
    JobDecision on_iteration_finish(core::SchedulerOps& ops, const JobEvent& event) override {
      last_active = ops.active_jobs().size();
      return core::DefaultPolicy::on_iteration_finish(ops, event);
    }
    std::size_t last_active = 99;
  };
  CountingPolicy policy;
  ReplayOptions options;
  options.machines = 2;
  (void)replay_experiment(trace, policy, options);
  // At the very last iteration event, one job already completed.
  EXPECT_LE(policy.last_active, 2u);
}

}  // namespace
}  // namespace hyperdrive::sim
