// Supervised-learning scenario (paper §6.2): compare all four scheduling
// policies on the same CIFAR-10-like candidate set and show where the time
// goes — the motivating workload from the paper's introduction, where only a
// few of hundreds of configurations are worth training to completion.
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "util/stats.hpp"
#include "workload/cifar_model.hpp"

using namespace hyperdrive;

int main() {
  workload::CifarWorkloadModel model;

  // One candidate set for every policy (fair comparison, §6.1); re-rolled
  // until the winning configuration is not in the very first wave.
  workload::Trace trace;
  for (std::uint64_t seed = 20171211;; ++seed) {
    trace = workload::generate_trace(model, 100, seed);
    if (!trace.target_reachable()) continue;
    std::size_t winner_index = 0;
    while (trace.jobs[winner_index].curve.first_epoch_reaching(
               trace.target_performance) == 0) {
      ++winner_index;
    }
    if (winner_index >= 8) break;
  }

  std::size_t non_learners = 0;
  for (const auto& job : trace.jobs) {
    if (job.curve.final_perf() <= model.kill_threshold()) ++non_learners;
  }
  std::printf("candidate set: %zu configs, %zu of them never escape random accuracy\n\n",
              trace.jobs.size(), non_learners);

  std::printf("%-10s %14s %12s %12s %14s\n", "policy", "time-to-77%", "terminated",
              "suspends", "machine-hours");
  for (const auto kind : {core::PolicyKind::Pop, core::PolicyKind::Bandit,
                          core::PolicyKind::EarlyTerm, core::PolicyKind::Default}) {
    core::PolicySpec spec;
    spec.kind = kind;
    const auto predictor = core::make_default_predictor(3);
    spec.pop.predictor = predictor;
    spec.pop.tmax = util::SimTime::hours(48);
    spec.earlyterm.predictor = predictor;

    core::RunnerOptions options;
    options.substrate = core::Substrate::Cluster;
    options.machines = 4;
    options.overheads = cluster::cifar_overhead_model();
    options.max_experiment_time = util::SimTime::hours(48);

    const auto result = core::run_experiment(trace, spec, options);
    std::printf("%-10s %14s %12zu %12zu %14.1f\n",
                std::string(core::to_string(kind)).c_str(),
                result.reached_target
                    ? util::format_duration(result.time_to_target).c_str()
                    : "not reached",
                result.terminations, result.suspends,
                result.total_machine_time.to_hours());
  }

  std::printf("\nPOP reaches the target fastest because it terminates non-learners at\n"
              "the first evaluation boundary, prunes low-confidence stragglers, and\n"
              "gives dedicated machines to the configurations whose learning curves\n"
              "predict the target with high confidence. Bandit's instantaneous-best\n"
              "rule can eliminate a slow-starting winner outright (the overtake\n"
              "problem of Fig. 2b) — when that happens it never reaches the target.\n");
  return 0;
}
