// Reinforcement-learning scenario (paper §6.3): LunarLander-like DQN sweep.
// Demonstrates the domain-knowledge hooks the SAP API exposes for RL tasks:
//   * min-max reward normalization (Eq. 4, rewards in [-500, 300]),
//   * a "solved" target (sustained average reward of 200),
//   * a non-learning kill threshold at the crash reward (-100),
//   * learning-crash dynamics that make instantaneous-best policies unsafe.
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "workload/lunar_model.hpp"

using namespace hyperdrive;

int main() {
  workload::LunarWorkloadModel model;
  std::printf("LunarLander domain knowledge:\n");
  std::printf("  reward range [-500, 300] -> normalized [0, 1] (Eq. 4)\n");
  std::printf("  solved   = reward %.0f sustained  -> normalized target %.3f\n",
              200.0, model.target_performance());
  std::printf("  crash    = reward %.0f             -> kill threshold %.3f\n", -100.0,
              model.kill_threshold());
  std::printf("  boundary = %zu epochs (2000 episode trials)\n\n",
              model.evaluation_boundary());

  auto trace = workload::generate_trace(model, 100, /*seed=*/17);
  std::uint64_t seed = 17;
  while (!trace.target_reachable()) {
    trace = workload::generate_trace(model, 100, ++seed);
  }

  std::size_t crashes = 0;
  for (const auto& job : trace.jobs) {
    const double best = job.curve.denormalize(job.curve.best_perf());
    const double last = job.curve.denormalize(job.curve.final_perf());
    if (best > -20.0 && last <= -100.0) ++crashes;
  }
  std::printf("candidate set: %zu configs, %zu of them learning-crash mid-training\n\n",
              trace.jobs.size(), crashes);

  for (const auto kind : {core::PolicyKind::Pop, core::PolicyKind::Bandit}) {
    core::PolicySpec spec;
    spec.kind = kind;
    spec.pop.predictor = core::make_default_predictor(5);
    spec.pop.tmax = util::SimTime::hours(24);

    core::RunnerOptions options;
    options.substrate = core::Substrate::Cluster;
    options.machines = 15;
    // RL suspend/resume goes through whole-process CRIU snapshots.
    options.overheads = cluster::lunar_criu_overhead_model();
    options.max_experiment_time = util::SimTime::hours(24);

    const auto result = core::run_experiment(trace, spec, options);
    std::printf("%-8s: ", std::string(core::to_string(kind)).c_str());
    if (result.reached_target) {
      std::printf("solved in %s (config #%llu), %zu early terminations\n",
                  util::format_duration(result.time_to_target).c_str(),
                  static_cast<unsigned long long>(result.winning_job),
                  result.terminations);
    } else {
      std::printf("not solved; best sustained reward %.0f\n",
                  trace.jobs.front().curve.denormalize(result.best_perf));
    }
    if (!result.suspend_samples.empty()) {
      double max_latency = 0.0, max_size = 0.0;
      for (const auto& s : result.suspend_samples) {
        max_latency = std::max(max_latency, s.latency.to_seconds());
        max_size = std::max(max_size, s.snapshot_bytes);
      }
      std::printf("          CRIU snapshots: %zu, max latency %.1f s, max size %.1f MB\n",
                  result.suspend_samples.size(), max_latency, max_size / 1e6);
    }
  }

  std::printf("\nBandit trusts a job's best-so-far reward, so a configuration that\n"
              "peaked before a learning-crash keeps its machine; POP's kill threshold\n"
              "reclaims it as soon as the reward falls back into the crash range.\n");
  return 0;
}
