// Dynamic-target exploration (§9 "User inputs"): when no y_target is known
// a priori, POP can "automatically adjust ytarget by gradually increasing
// the target once it is reached" — best-model-within-budget search instead
// of time-to-fixed-target.
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "core/policies/pop_policy.hpp"
#include "sim/trace_replay.hpp"
#include "workload/cifar_model.hpp"

using namespace hyperdrive;

int main() {
  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 100, /*seed=*/31);

  // Best-within-budget: no stop-at-target, a 6-hour budget, and a dynamic
  // target that starts low and ratchets upward as configurations clear it.
  core::PopConfig config;
  config.tmax = util::SimTime::hours(6);
  config.target = 0.30;                    // deliberately modest initial bar
  config.dynamic_target_increment = 0.05;  // raise by 5 points when cleared
  config.predictor = core::make_default_predictor(1);
  core::PopPolicy policy(config);

  sim::ReplayOptions options;
  options.machines = 4;
  options.max_experiment_time = util::SimTime::hours(6);
  options.stop_on_target = false;
  const auto result = sim::replay_experiment(trace, policy, options);

  std::printf("budget:               6h on 4 machines, 100 candidates\n");
  std::printf("initial target:       0.30 accuracy\n");
  std::printf("target raises:        %zu (final bar %.3f)\n", policy.target_raises(),
              policy.current_target());
  std::printf("best model found:     %.3f accuracy\n", result.best_perf);
  std::printf("jobs terminated:      %zu of %zu started\n", result.terminations,
              result.jobs_started);
  std::printf("\nthe rising bar keeps POP pruning relative to the best-seen model\n"
              "instead of an arbitrary fixed goal — no domain estimate required.\n");
  return 0;
}
