// Writing your own Scheduling Algorithm Policy (§4.2's design goal: "support
// and enable reuse of existing and future search and scheduling algorithms").
//
// This example implements Successive Halving — a budget-doubling elimination
// scheme in the Hyperband family [21] — purely against the public SAP
// surface: the three up-calls plus SchedulerOps. Nothing inside the
// framework changes; the same policy object runs on either execution
// substrate. It also plugs in a custom Hyperparameter Generator (the
// adaptive one) to show the ➀→➁ path of Fig. 5.
#include <cstdio>
#include <map>

#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"

using namespace hyperdrive;

namespace {

/// Successive Halving as a SAP: rungs at epochs r, 2r, 4r, ...; at each rung
/// a job survives only if its current performance is in the top `1/eta`
/// fraction of performances recorded at that rung so far.
class SuccessiveHalvingPolicy final : public core::DefaultPolicy {
 public:
  SuccessiveHalvingPolicy(std::size_t base_rung, double eta)
      : base_rung_(base_rung), eta_(eta) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "successive_halving";
  }

  core::JobDecision on_iteration_finish(core::SchedulerOps& ops,
                                        const core::JobEvent& event) override {
    // Is this epoch a rung (r, r*eta, r*eta^2, ...)?
    std::size_t rung = base_rung_;
    while (rung < event.epoch) {
      rung = static_cast<std::size_t>(static_cast<double>(rung) * eta_);
    }
    if (rung != event.epoch) return core::JobDecision::Continue;

    auto& scores = rung_scores_[rung];
    scores.push_back(event.perf);
    // Keep the job iff it is in the top 1/eta of this rung's scores so far.
    std::size_t better = 0;
    for (const double s : scores) {
      if (s > event.perf) ++better;
    }
    const double rank = static_cast<double>(better) / static_cast<double>(scores.size());
    if (scores.size() >= 3 && rank > 1.0 / eta_) return core::JobDecision::Terminate;
    (void)ops;
    return core::JobDecision::Continue;
  }

 private:
  std::size_t base_rung_;
  double eta_;
  std::map<std::size_t, std::vector<double>> rung_scores_;
};

}  // namespace

int main() {
  workload::CifarWorkloadModel model;

  // An adaptive Hyperparameter Generator that exploits reported results.
  const auto generator =
      core::make_adaptive_generator(model.space(), /*seed=*/11, /*warmup=*/20,
                                    /*exploit_prob=*/0.6);
  const auto trace = core::trace_from_generator(model, *generator, 100,
                                                /*experiment_seed=*/2,
                                                /*report_feedback=*/true);

  SuccessiveHalvingPolicy halving(/*base_rung=*/5, /*eta=*/2.0);

  sim::ReplayOptions options;
  options.machines = 4;
  options.max_experiment_time = util::SimTime::hours(48);
  const auto result = sim::replay_experiment(trace, halving, options);

  std::printf("custom policy '%s' on %zu adaptive-HG configurations:\n",
              std::string(halving.name()).c_str(), trace.jobs.size());
  if (result.reached_target) {
    std::printf("  reached %.0f%% accuracy in %s\n", 100.0 * trace.target_performance,
                util::format_duration(result.time_to_target).c_str());
  } else {
    std::printf("  best accuracy %.3f (target %.2f not reached)\n", result.best_perf,
                trace.target_performance);
  }
  std::printf("  jobs terminated at rungs: %zu of %zu started\n", result.terminations,
              result.jobs_started);

  // Same trace under POP, for reference.
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Pop;
  spec.pop.predictor = core::make_default_predictor(2);
  spec.pop.tmax = util::SimTime::hours(48);
  core::RunnerOptions runner;
  runner.machines = 4;
  runner.max_experiment_time = util::SimTime::hours(48);
  const auto pop = core::run_experiment(trace, spec, runner);
  std::printf("  POP on the same trace: %s\n",
              pop.reached_target ? util::format_duration(pop.time_to_target).c_str()
                                 : "not reached");
  return 0;
}
