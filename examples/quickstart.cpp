// Quickstart: explore hyperparameters of a CIFAR-10-like workload with the
// POP scheduling policy on a simulated 4-machine cluster.
//
//   $ ./quickstart
//
// Walkthrough:
//   1. Pick a workload model (the synthetic stand-in for live training).
//   2. Draw candidate configurations with a Hyperparameter Generator.
//   3. Choose a scheduling policy (POP here) and an execution substrate.
//   4. Run and inspect the result.
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"

using namespace hyperdrive;

int main() {
  // 1. The workload: 14 hyperparameters, 120 one-minute epochs, accuracy
  //    target 77%, kill threshold 15% (domain knowledge).
  workload::CifarWorkloadModel model;

  // 2. 100 candidate configurations from random search (§4.2 ➁). The same
  //    generator seed always yields the same candidate set. Re-roll until the
  //    set both contains a target-reaching configuration and actually
  //    requires search (no winner in the very first scheduling wave).
  workload::Trace trace;
  for (std::uint64_t seed = 7;; ++seed) {
    const auto generator = core::make_random_generator(model.space(), seed);
    trace = core::trace_from_generator(model, *generator, /*num_configs=*/100,
                                       /*experiment_seed=*/1);
    if (!trace.target_reachable()) continue;
    std::size_t winner_index = 0;
    while (trace.jobs[winner_index].curve.first_epoch_reaching(
               trace.target_performance) == 0) {
      ++winner_index;
    }
    if (winner_index >= 8) break;
  }
  std::printf("drew %zu configurations; target accuracy %.0f%%\n", trace.jobs.size(),
              100.0 * trace.target_performance);

  // 3. POP with the fast learning-curve predictor, on the high-fidelity
  //    cluster substrate (suspend/resume + messaging overheads modelled).
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Pop;
  spec.pop.predictor = core::make_default_predictor(/*seed=*/1);
  spec.pop.tmax = util::SimTime::hours(24);  // the user's time budget

  core::RunnerOptions options;
  options.substrate = core::Substrate::Cluster;
  options.machines = 4;
  options.max_experiment_time = util::SimTime::hours(24);

  // 4. Run.
  const auto result = core::run_experiment(trace, spec, options);
  if (result.reached_target) {
    std::printf("reached %.1f%% accuracy after %s (configuration #%llu)\n",
                100.0 * result.best_perf,
                util::format_duration(result.time_to_target).c_str(),
                static_cast<unsigned long long>(result.winning_job));
  } else {
    std::printf("target not reached within budget; best accuracy %.1f%%\n",
                100.0 * result.best_perf);
  }
  std::printf("jobs started: %zu, terminated early: %zu, suspended: %zu times\n",
              result.jobs_started, result.terminations, result.suspends);
  std::printf("total machine time spent: %s\n",
              util::format_duration(result.total_machine_time).c_str());

  // For comparison: the same candidate set under naive full execution.
  core::PolicySpec naive;
  naive.kind = core::PolicyKind::Default;
  const auto baseline = core::run_experiment(trace, naive, options);
  if (result.reached_target && baseline.reached_target) {
    std::printf("speedup over run-everything-to-completion: %.1fx\n",
                baseline.time_to_target / result.time_to_target);
  }
  return 0;
}
