// Multi-metric exploration (§9 "Ongoing Work"): LSTM language models with
// group-Lasso structural sparsity. The primary metric is perplexity; the
// secondary metric is the fraction of zeroed LSTM groups. The model owner
// wants BOTH: perplexity <= 100 and sparsity >= 0.5, and expresses that as
//   * a global termination criterion (when to stop the whole experiment),
//   * an owner rule (kill configurations whose lambda cannot deliver).
#include <cmath>
#include <cstdio>

#include "core/experiment_runner.hpp"
#include "core/policies/pop_policy.hpp"
#include "sim/trace_replay.hpp"
#include "workload/ptb_lstm_model.hpp"

using namespace hyperdrive;

int main() {
  workload::PtbLstmWorkloadModel model;
  const double ppl_goal = model.normalize_ppl(100.0);
  constexpr double kSparsityGoal = 0.5;

  // A candidate set where the joint goal is achievable.
  workload::Trace trace;
  for (std::uint64_t seed = 61;; ++seed) {
    trace = workload::generate_trace(model, 100, seed);
    bool ok = false;
    for (const auto& job : trace.jobs) {
      for (std::size_t e = 0; e < job.curve.perf.size() && !ok; ++e) {
        ok = job.curve.perf[e] >= ppl_goal && job.curve.secondary[e] >= kSparsityGoal;
      }
    }
    if (ok) break;
  }

  std::printf("goal: perplexity <= 100 AND group sparsity >= %.0f%%\n\n",
              100.0 * kSparsityGoal);

  core::PopConfig config;
  config.tmax = util::SimTime::hours(96);
  config.target = ppl_goal;  // POP steers the primary metric
  config.predictor = core::make_default_predictor(2);
  // Owner rule: by epoch 10 the sparsity ramp has shown its hand; a lambda
  // far below the goal trajectory cannot recover — reclaim the machine.
  config.owner_rule = [&](const core::JobEvent& event)
      -> std::optional<core::JobDecision> {
    if (event.epoch >= 10 && !std::isnan(event.secondary) &&
        event.secondary < 0.4 * kSparsityGoal) {
      return core::JobDecision::Terminate;
    }
    return std::nullopt;
  };
  core::PopPolicy policy(config);

  sim::ReplayOptions options;
  options.machines = 8;
  options.max_experiment_time = util::SimTime::hours(96);
  options.stop_criterion = [&](const core::JobEvent& event) {
    return event.perf >= ppl_goal && !std::isnan(event.secondary) &&
           event.secondary >= kSparsityGoal;
  };
  const auto result = sim::replay_experiment(trace, policy, options);

  if (result.reached_target) {
    const auto& winner = trace.jobs[result.winning_job - 1];
    std::printf("joint goal met in %s by configuration #%llu:\n",
                util::format_duration(result.time_to_target).c_str(),
                static_cast<unsigned long long>(result.winning_job));
    std::printf("  lambda      = %.2e\n", winner.config.get_double("lambda"));
    std::printf("  perplexity  = %.1f (asymptotic)\n",
                model.denormalize_ppl(winner.curve.final_perf()));
    std::printf("  sparsity    = %.0f%% of LSTM groups zeroed\n",
                100.0 * winner.curve.secondary.back());
  } else {
    std::printf("joint goal not met; best perplexity score %.3f\n", result.best_perf);
  }
  std::printf("jobs killed by the sparsity owner-rule or POP: %zu of %zu started\n",
              result.terminations, result.jobs_started);
  return 0;
}
