// Trace tooling (paper §7.1 "Trace Generator"): freeze a workload into a
// replayable CSV trace, reload it, shuffle the configuration order, and
// replay it under a policy — the workflow behind the sensitivity studies.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment_runner.hpp"
#include "workload/cifar_model.hpp"

using namespace hyperdrive;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/hyperdrive_cifar_trace.csv");

  // 1. Generate and save.
  workload::CifarWorkloadModel model;
  const auto trace = workload::generate_trace(model, 30, /*seed=*/5);
  {
    std::ofstream out(path);
    trace.save_csv(out);
  }
  std::printf("wrote %zu jobs x %zu epochs to %s\n", trace.jobs.size(), trace.max_epochs,
              path.c_str());

  // 2. Reload (the scheduler only needs curves + metadata, not the configs).
  std::ifstream in(path);
  const auto loaded = workload::Trace::load_csv(in, "cifar10", model.target_performance(),
                                          model.kill_threshold(),
                                          model.evaluation_boundary());
  std::printf("reloaded %zu jobs; target reachable: %s\n", loaded.jobs.size(),
              loaded.target_reachable() ? "yes" : "no");

  // 3. Replay the original and a shuffled order under the Default policy.
  util::Rng rng(99);
  const workload::Trace shuffled = loaded.shuffled(rng);

  for (const workload::Trace* t : {&loaded, &shuffled}) {
    core::DefaultPolicy policy;
    sim::ReplayOptions options;
    options.machines = 4;
    const auto result = sim::replay_experiment(*t, policy, options);
    std::printf("replay (%s order): %s\n", t == &loaded ? "original" : "shuffled",
                result.reached_target
                    ? util::format_duration(result.time_to_target).c_str()
                    : "target not reached");
  }
  std::printf("(configuration order changes time-to-target for order-sensitive\n"
              " policies — the effect Figure 12c quantifies)\n");
  return 0;
}
